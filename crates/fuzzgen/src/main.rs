//! Fuzzing CLI.
//!
//! ```text
//! fuzzgen [--seeds A..B] [--artifact-dir DIR] [--corrupt FILE]
//! ```
//!
//! Runs the differential oracle stack over every seed in `A..B`
//! (default `0..500`). On the first failure the spec is shrunk while it
//! still trips the same oracle, the minimized builder snippet is
//! printed (and written under `--artifact-dir` if given), and the
//! process exits nonzero. `--corrupt FILE` runs the byte-corruption
//! sweep over a recording file instead (or before the seeds, when
//! `--seeds` is also given explicitly).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

use fuzzgen::corrupt::{corruption_sweep, mmap_sweep, panic_message};
use fuzzgen::oracle::{check_spec, CheckStats, Failure};
use fuzzgen::spec::{gen_spec, render, ProgramSpec};

struct Args {
    seed_lo: u64,
    seed_hi: u64,
    seeds_explicit: bool,
    artifact_dir: Option<String>,
    corrupt: Option<String>,
}

fn usage() -> ! {
    eprintln!("usage: fuzzgen [--seeds A..B] [--artifact-dir DIR] [--corrupt FILE]");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args {
        seed_lo: 0,
        seed_hi: 500,
        seeds_explicit: false,
        artifact_dir: None,
        corrupt: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => {
                let v = it.next().unwrap_or_else(|| usage());
                let Some((lo, hi)) = v.split_once("..") else {
                    usage()
                };
                out.seed_lo = lo.parse().unwrap_or_else(|_| usage());
                out.seed_hi = hi.parse().unwrap_or_else(|_| usage());
                out.seeds_explicit = true;
            }
            "--artifact-dir" => out.artifact_dir = Some(it.next().unwrap_or_else(|| usage())),
            "--corrupt" => out.corrupt = Some(it.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    out
}

/// Runs the oracle stack, converting a panic anywhere in the pipeline
/// into a reportable (and shrinkable) [`Failure`].
fn check_spec_caught(spec: &ProgramSpec) -> Result<CheckStats, Failure> {
    match catch_unwind(AssertUnwindSafe(|| check_spec(spec))) {
        Ok(r) => r,
        Err(payload) => Err(Failure {
            oracle: "panic",
            detail: panic_message(&*payload),
        }),
    }
}

fn report_failure(seed: u64, failure: &Failure, args: &Args) {
    eprintln!("seed {seed} FAILED: {failure}");
    eprintln!("shrinking (this re-runs the oracle stack many times)...");
    let spec = gen_spec(seed);
    let oracle = failure.oracle;
    // the harness's own panic reports would spam the terminal while the
    // shrinker intentionally re-triggers the failure
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let min = fuzzgen::shrink(
        &spec,
        |c| matches!(check_spec_caught(c), Err(f) if f.oracle == oracle),
    );
    std::panic::set_hook(prev_hook);
    let snippet = render(&min);
    eprintln!(
        "minimized from weight {} to {}; reproducing builder snippet:\n\n{snippet}",
        spec.weight(),
        min.weight()
    );
    eprintln!(
        "reproduce with: cargo run -p fuzzgen -- --seeds {seed}..{}",
        seed + 1
    );
    if let Some(dir) = &args.artifact_dir {
        let _ = std::fs::create_dir_all(dir);
        let path = format!("{dir}/seed-{seed}.txt");
        let body = format!("seed {seed} failed oracle [{oracle}]\n{failure}\n\n{snippet}");
        // the artifact path rides in the failure message itself so CI
        // log scrapers (and humans skimming the tail) see where the
        // shrunk spec landed without hunting for an earlier line
        match std::fs::write(&path, body) {
            Ok(()) => eprintln!("seed {seed} FAILED [{oracle}]: shrunk spec written to {path}"),
            Err(e) => {
                eprintln!("seed {seed} FAILED [{oracle}]: could not write artifact {path}: {e}");
            }
        }
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Some(path) = &args.corrupt {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        println!("corruption sweep over {path} ({} bytes)...", bytes.len());
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let sweep = corruption_sweep(&bytes, 0xC0FFEE, 2_000);
        let mapped = mmap_sweep(&bytes, 0xC0FFEE, 200);
        std::panic::set_hook(prev_hook);
        match sweep {
            Ok(s) => println!(
                "  in-memory: {} mutations: {} parsed, {} rejected, 0 panics",
                s.attempts, s.parsed, s.rejected
            ),
            Err(e) => {
                eprintln!("  {e}");
                return ExitCode::FAILURE;
            }
        }
        match mapped {
            Ok(s) => println!(
                "  mmap:      {} mutations: {} parsed, {} rejected, 0 panics, \
                 0 parser disagreements",
                s.attempts, s.parsed, s.rejected
            ),
            Err(e) => {
                eprintln!("  {e}");
                return ExitCode::FAILURE;
            }
        }
        if !args.seeds_explicit {
            return ExitCode::SUCCESS;
        }
    }
    let mut totals = CheckStats::default();
    let mut programs = 0u64;
    for seed in args.seed_lo..args.seed_hi {
        match check_spec_caught(&gen_spec(seed)) {
            Ok(s) => {
                programs += 1;
                totals.events += s.events;
                totals.candidates += s.candidates;
                totals.demoted += s.demoted;
                totals.tls_entries += s.tls_entries;
                totals.rescued += s.rescued;
                totals.slices += s.slices;
                totals.value_checks += s.value_checks;
            }
            Err(f) => {
                report_failure(seed, &f, &args);
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "{programs} programs green (seeds {}..{}): {} events, {} candidates \
         ({} demoted, {} rescued), {} TLS entries simulated, {} certified \
         slices ({} value/distance checks)",
        args.seed_lo,
        args.seed_hi,
        totals.events,
        totals.candidates,
        totals.demoted,
        totals.rescued,
        totals.tls_entries,
        totals.slices,
        totals.value_checks
    );
    ExitCode::SUCCESS
}
