//! Random program specifications.
//!
//! A [`ProgramSpec`] is a small structured AST drawn from a seeded
//! generator grammar. It is the unit the shrinker minimizes and the
//! renderer prints; [`emit`] lowers it through the ordinary
//! [`ProgramBuilder`] API, so every generated program goes through the
//! exact frontend the benchmark suite uses.
//!
//! Design constraints the generator enforces by construction:
//!
//! * **Termination.** Loops are `for_step` counters over constant
//!   bounds, and no statement inside a loop assigns an *active*
//!   inductor (the spec keeps at least 4 scratch locals and nests at
//!   most 3 deep, so a free local always exists).
//! * **No runtime faults.** Array indices are masked with `len - 1`
//!   (lengths are powers of two), divisors are forced odd with `| 1`,
//!   and every reference local is initialized in the prologue, so a
//!   well-formed spec can only fail through a genuine pipeline bug.
//! * **Nasty shapes on purpose.** Cross-iteration array stores,
//!   aliased array references, loop-carried scalar chains, reductions,
//!   calls into a helper with its own loop and global side effects, and
//!   rare early `return`s out of a loop nest.

use crate::rng::Rng;
use tvm::build::Operand;
use tvm::{Cond, ElemKind, FnBuilder, FuncId, GlobalId, Local, Program, ProgramBuilder, VmError};

/// Binary integer operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Wrapping add.
    Add,
    /// Wrapping subtract.
    Sub,
    /// Wrapping multiply.
    Mul,
    /// Division with an `| 1` guard on the divisor.
    Div,
    /// Remainder with an `| 1` guard on the divisor.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
}

/// Integer expression over the spec's locals, globals, fields, arrays
/// and optional helper function.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A constant.
    Const(i64),
    /// A scratch local (index modulo the local count).
    Local(u8),
    /// A global (`getstatic`).
    Global(u8),
    /// A field of the single shared object.
    Field(u8),
    /// `arrays[a][idx & (len - 1)]`.
    ArrRead(u8, Box<Expr>),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// `helper(arg)` when the spec has a helper; otherwise just `arg`.
    Call(Box<Expr>),
}

/// Statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `local = expr`.
    Assign(u8, Expr),
    /// `global = expr`.
    GlobalWrite(u8, Expr),
    /// `obj.field = expr`.
    FieldWrite(u8, Expr),
    /// `arrays[a][idx & (len - 1)] = expr`.
    ArrWrite(u8, Expr, Expr),
    /// Counted loop over `locals[var]`; `step != 0`.
    For {
        /// Inductor local.
        var: u8,
        /// Initial value.
        from: i64,
        /// Bound (exclusive under the step's direction).
        to: i64,
        /// `IInc` step.
        step: i32,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `if a cond b { then_s } else { else_s }`.
    If {
        /// Comparison condition.
        cond: Cond,
        /// Left operand.
        a: Expr,
        /// Right operand.
        b: Expr,
        /// Taken block.
        then_s: Vec<Stmt>,
        /// Not-taken block (may be empty).
        else_s: Vec<Stmt>,
    },
    /// `if a cond b { return locals[0] }` — an early exit.
    Early {
        /// Comparison condition.
        cond: Cond,
        /// Left operand.
        a: Expr,
        /// Right operand.
        b: Expr,
    },
}

/// One array declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ArraySpec {
    /// Element count; a power of two (ignored for aliases).
    pub len: u32,
    /// When set, this "array" is a second reference to an earlier one.
    pub alias_of: Option<u8>,
}

/// The optional helper function `helper(x) -> int`.
#[derive(Debug, Clone, PartialEq)]
pub struct HelperSpec {
    /// Iterations of the helper's own accumulation loop (0 = no loop).
    pub trip: u8,
    /// Mix `globals[0]` into the accumulator each iteration.
    pub reads_global: bool,
    /// Store the result to `globals[0]` before returning.
    pub writes_global: bool,
}

/// A complete random program: declarations plus the body of `main`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramSpec {
    /// The seed this spec was generated from (0 for hand-written).
    pub seed: u64,
    /// Scratch int locals; `locals[0]` is the returned accumulator.
    pub n_locals: u8,
    /// Int globals.
    pub n_globals: u8,
    /// Int fields of the single object class (0 = no object).
    pub n_fields: u8,
    /// Arrays (including aliases of earlier entries).
    pub arrays: Vec<ArraySpec>,
    /// Optional helper function.
    pub helper: Option<HelperSpec>,
    /// Body of `main`.
    pub body: Vec<Stmt>,
}

const CONDS: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge];

/// Generates the spec for `seed`. Pure: the same seed always yields
/// the same spec.
pub fn gen_spec(seed: u64) -> ProgramSpec {
    let mut r = Rng::new(seed);
    let n_locals = 4 + r.below(3) as u8; // 4..=6: 3 nest levels + a free target
    let n_globals = r.below(3) as u8;
    let n_fields = if r.chance(1, 2) {
        1 + r.below(3) as u8
    } else {
        0
    };
    let mut arrays = Vec::new();
    for _ in 0..r.below(3) {
        arrays.push(ArraySpec {
            len: 8u32 << r.below(3), // 8, 16 or 32 elements
            alias_of: None,
        });
    }
    if !arrays.is_empty() && r.chance(1, 2) {
        let src = r.below(arrays.len() as u64) as u8;
        arrays.push(ArraySpec {
            len: 0,
            alias_of: Some(src),
        });
    }
    let helper = if r.chance(1, 2) {
        Some(HelperSpec {
            trip: r.below(5) as u8,
            reads_global: n_globals > 0 && r.chance(1, 2),
            writes_global: n_globals > 0 && r.chance(1, 3),
        })
    } else {
        None
    };
    let mut g = GenCtx {
        n_locals,
        n_globals,
        n_fields,
        n_arrays: arrays.len() as u8,
        has_helper: helper.is_some(),
        budget: 12 + r.below(14) as u32,
        active: Vec::new(),
    };
    let body = g.block(&mut r, 0, 4);
    ProgramSpec {
        seed,
        n_locals,
        n_globals,
        n_fields,
        arrays,
        helper,
        body,
    }
}

struct GenCtx {
    n_locals: u8,
    n_globals: u8,
    n_fields: u8,
    n_arrays: u8,
    has_helper: bool,
    budget: u32,
    /// Inductors of the enclosing loops; never assigned or reused.
    active: Vec<u8>,
}

impl GenCtx {
    fn block(&mut self, r: &mut Rng, loop_depth: u32, max_stmts: u64) -> Vec<Stmt> {
        let n = 1 + r.below(max_stmts);
        let mut out = Vec::new();
        for _ in 0..n {
            if self.budget == 0 {
                break;
            }
            self.budget -= 1;
            out.push(self.stmt(r, loop_depth));
        }
        out
    }

    /// A local that is not an active inductor. Always exists:
    /// `n_locals >= 4` and nesting stops at 3.
    fn free_local(&self, r: &mut Rng) -> Option<u8> {
        let choices: Vec<u8> = (0..self.n_locals)
            .filter(|v| !self.active.contains(v))
            .collect();
        if choices.is_empty() {
            None
        } else {
            Some(*r.pick(&choices))
        }
    }

    fn stmt(&mut self, r: &mut Rng, loop_depth: u32) -> Stmt {
        let roll = r.below(100);
        if roll < 30 {
            return self.assign(r);
        }
        if roll < 52 && loop_depth < 3 {
            if let Some(var) = self.free_local(r) {
                let step = *r.pick(&[1i32, 1, 1, 2, 3, -1, -2]);
                let trip = r.below(9) as i64; // 0..=8 iterations, 0/1 included
                let base = r.below(4) as i64;
                let (from, to) = if step > 0 {
                    (base, base + trip * i64::from(step))
                } else {
                    (base + trip * i64::from(-step), base)
                };
                self.active.push(var);
                let body = self.block(r, loop_depth + 1, 4);
                self.active.pop();
                return Stmt::For {
                    var,
                    from,
                    to,
                    step,
                    body,
                };
            }
        }
        if roll < 64 && self.n_arrays > 0 {
            let a = r.below(u64::from(self.n_arrays)) as u8;
            let idx = self.expr(r, 2);
            let val = self.expr(r, 2);
            return Stmt::ArrWrite(a, idx, val);
        }
        if roll < 72 && self.n_globals > 0 {
            let g = r.below(u64::from(self.n_globals)) as u8;
            // inside loops, bias toward `g = g op e` with an
            // associative op — the exact recurrence the loop-rescue
            // delta rewrite targets, so the rescue oracle gets real
            // transforms to state-check instead of only no-ops
            if loop_depth > 0 && r.chance(1, 2) {
                let op = *r.pick(&[
                    BinOp::Add,
                    BinOp::Add,
                    BinOp::Xor,
                    BinOp::Or,
                    BinOp::And,
                    BinOp::Mul,
                ]);
                return Stmt::GlobalWrite(
                    g,
                    Expr::Bin(op, Box::new(Expr::Global(g)), Box::new(self.expr(r, 2))),
                );
            }
            return Stmt::GlobalWrite(g, self.expr(r, 2));
        }
        if roll < 80 && self.n_fields > 0 {
            let fi = r.below(u64::from(self.n_fields)) as u8;
            // same bias for field reductions (`obj.f = obj.f op e`)
            if loop_depth > 0 && r.chance(1, 3) {
                let op = *r.pick(&[BinOp::Add, BinOp::Xor, BinOp::Mul]);
                return Stmt::FieldWrite(
                    fi,
                    Expr::Bin(op, Box::new(Expr::Field(fi)), Box::new(self.expr(r, 2))),
                );
            }
            return Stmt::FieldWrite(fi, self.expr(r, 2));
        }
        if roll < 92 {
            let cond = *r.pick(&CONDS);
            let a = self.expr(r, 1);
            let b = self.expr(r, 1);
            let then_s = self.block(r, loop_depth, 3);
            let else_s = if r.chance(1, 2) {
                self.block(r, loop_depth, 2)
            } else {
                Vec::new()
            };
            return Stmt::If {
                cond,
                a,
                b,
                then_s,
                else_s,
            };
        }
        if roll < 96 && loop_depth > 0 {
            return Stmt::Early {
                cond: *r.pick(&CONDS),
                a: self.expr(r, 1),
                b: self.expr(r, 1),
            };
        }
        self.assign(r)
    }

    fn assign(&mut self, r: &mut Rng) -> Stmt {
        let tgt = self.free_local(r).unwrap_or(0);
        if r.chance(1, 2) {
            // reduction / loop-carried chain: v = v op e
            let op = *r.pick(&[BinOp::Add, BinOp::Add, BinOp::Xor, BinOp::Mul, BinOp::Sub]);
            Stmt::Assign(
                tgt,
                Expr::Bin(op, Box::new(Expr::Local(tgt)), Box::new(self.expr(r, 2))),
            )
        } else {
            Stmt::Assign(tgt, self.expr(r, 2))
        }
    }

    fn expr(&mut self, r: &mut Rng, depth: u32) -> Expr {
        if depth == 0 || r.chance(2, 5) {
            loop {
                match r.below(4) {
                    0 => return Expr::Const(r.range(-4, 12)),
                    1 => return Expr::Local(r.below(u64::from(self.n_locals)) as u8),
                    2 if self.n_globals > 0 => {
                        return Expr::Global(r.below(u64::from(self.n_globals)) as u8)
                    }
                    3 if self.n_fields > 0 => {
                        return Expr::Field(r.below(u64::from(self.n_fields)) as u8)
                    }
                    _ => {} // re-roll: the rolled leaf kind is absent
                }
            }
        }
        match r.below(10) {
            0 | 1 if self.n_arrays > 0 => {
                let a = r.below(u64::from(self.n_arrays)) as u8;
                Expr::ArrRead(a, Box::new(self.expr(r, depth - 1)))
            }
            2 if self.has_helper => Expr::Call(Box::new(self.expr(r, depth - 1))),
            _ => {
                let op = *r.pick(&[
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Div,
                    BinOp::Rem,
                    BinOp::And,
                    BinOp::Or,
                    BinOp::Xor,
                ]);
                let a = self.expr(r, depth - 1);
                let b = self.expr(r, depth - 1);
                Expr::Bin(op, Box::new(a), Box::new(b))
            }
        }
    }
}

impl ProgramSpec {
    /// Resolved element count of array `i` (following one alias hop).
    pub fn arr_len(&self, i: usize) -> u32 {
        match self.arrays[i].alias_of {
            Some(src) => self.arrays[src as usize % self.arrays.len()].len.max(8),
            None => self.arrays[i].len.max(8),
        }
    }

    /// Total AST node count; the shrinker's progress measure.
    pub fn weight(&self) -> usize {
        fn expr_w(e: &Expr) -> usize {
            1 + match e {
                Expr::ArrRead(_, i) => expr_w(i),
                Expr::Bin(_, a, b) => expr_w(a) + expr_w(b),
                Expr::Call(x) => expr_w(x),
                _ => 0,
            }
        }
        fn stmt_w(s: &Stmt) -> usize {
            1 + match s {
                Stmt::Assign(_, e) | Stmt::GlobalWrite(_, e) | Stmt::FieldWrite(_, e) => expr_w(e),
                Stmt::ArrWrite(_, i, v) => expr_w(i) + expr_w(v),
                Stmt::For { body, .. } => body.iter().map(stmt_w).sum(),
                Stmt::If {
                    a,
                    b,
                    then_s,
                    else_s,
                    ..
                } => {
                    expr_w(a)
                        + expr_w(b)
                        + then_s.iter().map(stmt_w).sum::<usize>()
                        + else_s.iter().map(stmt_w).sum::<usize>()
                }
                Stmt::Early { a, b, .. } => expr_w(a) + expr_w(b),
            }
        }
        self.arrays.len()
            + usize::from(self.n_globals)
            + usize::from(self.n_fields)
            + usize::from(self.helper.is_some())
            + self.body.iter().map(stmt_w).sum::<usize>()
    }
}

struct EmitCtx<'a> {
    locals: Vec<Local>,
    arr_locals: Vec<Local>,
    arr_lens: Vec<u32>,
    obj: Option<Local>,
    n_fields: u8,
    globals: &'a [GlobalId],
    helper: Option<FuncId>,
}

impl EmitCtx<'_> {
    fn local(&self, v: u8) -> Local {
        self.locals[v as usize % self.locals.len()]
    }

    fn field(&self, i: u8) -> u16 {
        u16::from(i % self.n_fields.max(1))
    }

    fn arr(&self, a: u8) -> (Local, u32) {
        let i = a as usize % self.arr_locals.len();
        (self.arr_locals[i], self.arr_lens[i])
    }
}

/// Lowers a spec to a verified [`Program`] through the builder API.
///
/// Index/field/global references are taken modulo the declared counts,
/// so shrinker-produced and hand-edited specs always stay emittable.
///
/// # Errors
///
/// Any [`VmError`] from the builder's verifier (which would itself be a
/// generator bug worth reporting).
pub fn emit(spec: &ProgramSpec) -> Result<Program, VmError> {
    let mut b = ProgramBuilder::new();
    let globals: Vec<GlobalId> = (0..spec.n_globals)
        .map(|_| b.global(ElemKind::Int))
        .collect();
    let class = if spec.n_fields > 0 {
        Some(b.class(&vec![ElemKind::Int; usize::from(spec.n_fields)]))
    } else {
        None
    };
    let helper_id = spec.helper.as_ref().map(|_| b.declare("helper", 1, true));
    if let (Some(h), Some(hid)) = (spec.helper.as_ref(), helper_id) {
        b.define(hid, |f| emit_helper(f, h, &globals));
    }
    let main = b.function("main", 0, true, |f| {
        let locals: Vec<Local> = (0..spec.n_locals).map(|_| f.local()).collect();
        for (i, &l) in locals.iter().enumerate() {
            f.ci(i as i64 % 3).st(l);
        }
        let mut arr_locals = Vec::new();
        for a in &spec.arrays {
            let l = f.local();
            match a.alias_of {
                Some(src) => {
                    let src = arr_locals[src as usize % arr_locals.len().max(1)];
                    f.ld(src).st(l);
                }
                None => {
                    f.ci(i64::from(a.len.max(8))).newarray(ElemKind::Int).st(l);
                }
            }
            arr_locals.push(l);
        }
        let obj = class.map(|c| {
            let l = f.local();
            f.newobject(c).st(l);
            l
        });
        let arr_lens = (0..spec.arrays.len()).map(|i| spec.arr_len(i)).collect();
        let ctx = EmitCtx {
            locals,
            arr_locals,
            arr_lens,
            obj,
            n_fields: spec.n_fields,
            globals: &globals,
            helper: helper_id,
        };
        for s in &spec.body {
            emit_stmt(f, &ctx, s);
        }
        f.ld(ctx.locals[0]).ret();
    });
    b.finish(main)
}

fn emit_helper(f: &mut FnBuilder, h: &HelperSpec, globals: &[GlobalId]) {
    let x = f.param(0);
    let s = f.local();
    let k = f.local();
    f.ld(x).st(s);
    if h.trip > 0 {
        f.for_in(
            k,
            Operand::ConstI(0),
            Operand::ConstI(i64::from(h.trip)),
            |f| {
                f.ld(s).ci(3).imul().ld(k).iadd();
                if h.reads_global && !globals.is_empty() {
                    f.getstatic(globals[0]).iadd();
                }
                f.st(s);
            },
        );
    }
    if h.writes_global && !globals.is_empty() {
        f.ld(s).putstatic(globals[0]);
    }
    f.ld(s).ret();
}

fn emit_expr(f: &mut FnBuilder, c: &EmitCtx, e: &Expr) {
    match e {
        Expr::Const(v) => {
            f.ci(*v);
        }
        Expr::Local(v) => {
            f.ld(c.local(*v));
        }
        Expr::Global(g) => {
            if c.globals.is_empty() {
                f.ci(0);
            } else {
                f.getstatic(c.globals[*g as usize % c.globals.len()]);
            }
        }
        Expr::Field(i) => match c.obj {
            Some(o) => {
                f.ld(o).getfield(c.field(*i));
            }
            None => {
                f.ci(0);
            }
        },
        Expr::ArrRead(a, idx) => {
            if c.arr_locals.is_empty() {
                emit_expr(f, c, idx);
                f.drop_top().ci(0);
            } else {
                let (al, len) = c.arr(*a);
                f.ld(al);
                emit_expr(f, c, idx);
                f.ci(i64::from(len) - 1).iand().aload();
            }
        }
        Expr::Bin(op, x, y) => {
            emit_expr(f, c, x);
            emit_expr(f, c, y);
            match op {
                BinOp::Add => f.iadd(),
                BinOp::Sub => f.isub(),
                BinOp::Mul => f.imul(),
                BinOp::Div => f.ci(1).ior().idiv(),
                BinOp::Rem => f.ci(1).ior().irem(),
                BinOp::And => f.iand(),
                BinOp::Or => f.ior(),
                BinOp::Xor => f.ixor(),
            };
        }
        Expr::Call(x) => {
            emit_expr(f, c, x);
            if let Some(h) = c.helper {
                f.call(h);
            }
        }
    }
}

fn emit_stmt(f: &mut FnBuilder, c: &EmitCtx, s: &Stmt) {
    match s {
        Stmt::Assign(v, e) => {
            emit_expr(f, c, e);
            f.st(c.local(*v));
        }
        Stmt::GlobalWrite(g, e) => {
            emit_expr(f, c, e);
            if c.globals.is_empty() {
                f.drop_top();
            } else {
                f.putstatic(c.globals[*g as usize % c.globals.len()]);
            }
        }
        Stmt::FieldWrite(i, e) => match c.obj {
            Some(o) => {
                f.ld(o);
                emit_expr(f, c, e);
                f.putfield(c.field(*i));
            }
            None => {
                emit_expr(f, c, e);
                f.drop_top();
            }
        },
        Stmt::ArrWrite(a, idx, val) => {
            if c.arr_locals.is_empty() {
                emit_expr(f, c, idx);
                f.drop_top();
                emit_expr(f, c, val);
                f.drop_top();
            } else {
                let (al, len) = c.arr(*a);
                f.ld(al);
                emit_expr(f, c, idx);
                f.ci(i64::from(len) - 1).iand();
                emit_expr(f, c, val);
                f.astore();
            }
        }
        Stmt::For {
            var,
            from,
            to,
            step,
            body,
        } => {
            let step = if *step == 0 { 1 } else { *step };
            f.for_step(
                c.local(*var),
                Operand::ConstI(*from),
                Operand::ConstI(*to),
                step,
                |f| {
                    for s in body {
                        emit_stmt(f, c, s);
                    }
                },
            );
        }
        Stmt::If {
            cond,
            a,
            b,
            then_s,
            else_s,
        } => {
            let operands = |f: &mut FnBuilder| {
                emit_expr(f, c, a);
                emit_expr(f, c, b);
            };
            if else_s.is_empty() {
                f.if_icmp(*cond, operands, |f| {
                    for s in then_s {
                        emit_stmt(f, c, s);
                    }
                });
            } else {
                f.if_else_icmp(
                    *cond,
                    operands,
                    |f| {
                        for s in then_s {
                            emit_stmt(f, c, s);
                        }
                    },
                    |f| {
                        for s in else_s {
                            emit_stmt(f, c, s);
                        }
                    },
                );
            }
        }
        Stmt::Early { cond, a, b } => {
            f.if_icmp(
                *cond,
                |f| {
                    emit_expr(f, c, a);
                    emit_expr(f, c, b);
                },
                |f| {
                    f.ld(c.locals[0]).ret();
                },
            );
        }
    }
}

/// Renders a spec as a reproducible `ProgramBuilder` snippet — the
/// exact call sequence [`emit`] performs, ready to paste into a
/// regression test.
pub fn render(spec: &ProgramSpec) -> String {
    let mut out = String::new();
    let w = &mut out;
    push(w, 0, &format!("// fuzzgen spec (seed {})", spec.seed));
    push(w, 0, "let mut b = ProgramBuilder::new();");
    for g in 0..spec.n_globals {
        push(w, 0, &format!("let g{g} = b.global(ElemKind::Int);"));
    }
    if spec.n_fields > 0 {
        push(
            w,
            0,
            &format!("let class = b.class(&[ElemKind::Int; {}]);", spec.n_fields),
        );
    }
    if let Some(h) = &spec.helper {
        push(w, 0, "let helper = b.declare(\"helper\", 1, true);");
        push(w, 0, "b.define(helper, |f| {");
        push(w, 1, "let x = f.param(0);");
        push(w, 1, "let (s, k) = (f.local(), f.local());");
        push(w, 1, "f.ld(x).st(s);");
        if h.trip > 0 {
            push(
                w,
                1,
                &format!(
                    "f.for_in(k, Operand::ConstI(0), Operand::ConstI({}), |f| {{",
                    h.trip
                ),
            );
            let mix = if h.reads_global && spec.n_globals > 0 {
                "f.ld(s).ci(3).imul().ld(k).iadd().getstatic(g0).iadd().st(s);"
            } else {
                "f.ld(s).ci(3).imul().ld(k).iadd().st(s);"
            };
            push(w, 2, mix);
            push(w, 1, "});");
        }
        if h.writes_global && spec.n_globals > 0 {
            push(w, 1, "f.ld(s).putstatic(g0);");
        }
        push(w, 1, "f.ld(s).ret();");
        push(w, 0, "});");
    }
    push(w, 0, "let main = b.function(\"main\", 0, true, |f| {");
    for v in 0..spec.n_locals {
        push(w, 1, &format!("let l{v} = f.local();"));
    }
    for v in 0..spec.n_locals {
        push(w, 1, &format!("f.ci({}).st(l{v});", i64::from(v) % 3));
    }
    for (i, a) in spec.arrays.iter().enumerate() {
        push(w, 1, &format!("let a{i} = f.local();"));
        match a.alias_of {
            Some(src) => push(
                w,
                1,
                &format!(
                    "f.ld(a{}).st(a{i}); // alias",
                    src as usize % spec.arrays.len()
                ),
            ),
            None => push(
                w,
                1,
                &format!("f.ci({}).newarray(ElemKind::Int).st(a{i});", a.len.max(8)),
            ),
        }
    }
    if spec.n_fields > 0 {
        push(w, 1, "let obj = f.local();");
        push(w, 1, "f.newobject(class).st(obj);");
    }
    for s in &spec.body {
        render_stmt(w, 1, spec, s);
    }
    push(w, 1, "f.ld(l0).ret();");
    push(w, 0, "});");
    push(w, 0, "let program = b.finish(main)?;");
    out
}

fn push(out: &mut String, indent: usize, line: &str) {
    for _ in 0..indent {
        out.push_str("    ");
    }
    out.push_str(line);
    out.push('\n');
}

fn render_expr(spec: &ProgramSpec, e: &Expr) -> String {
    match e {
        Expr::Const(v) => format!(".ci({v})"),
        Expr::Local(v) => format!(".ld(l{})", v % spec.n_locals.max(1)),
        Expr::Global(g) => {
            if spec.n_globals == 0 {
                ".ci(0)".into()
            } else {
                format!(".getstatic(g{})", g % spec.n_globals)
            }
        }
        Expr::Field(i) => {
            if spec.n_fields == 0 {
                ".ci(0)".into()
            } else {
                format!(".ld(obj).getfield({})", i % spec.n_fields)
            }
        }
        Expr::ArrRead(a, idx) => {
            if spec.arrays.is_empty() {
                format!("{}.drop_top().ci(0)", render_expr(spec, idx))
            } else {
                let ai = *a as usize % spec.arrays.len();
                format!(
                    ".ld(a{ai}){}.ci({}).iand().aload()",
                    render_expr(spec, idx),
                    spec.arr_len(ai) - 1
                )
            }
        }
        Expr::Bin(op, x, y) => {
            let tail = match op {
                BinOp::Add => ".iadd()",
                BinOp::Sub => ".isub()",
                BinOp::Mul => ".imul()",
                BinOp::Div => ".ci(1).ior().idiv()",
                BinOp::Rem => ".ci(1).ior().irem()",
                BinOp::And => ".iand()",
                BinOp::Or => ".ior()",
                BinOp::Xor => ".ixor()",
            };
            format!("{}{}{tail}", render_expr(spec, x), render_expr(spec, y))
        }
        Expr::Call(x) => {
            if spec.helper.is_some() {
                format!("{}.call(helper)", render_expr(spec, x))
            } else {
                render_expr(spec, x)
            }
        }
    }
}

fn render_stmt(out: &mut String, ind: usize, spec: &ProgramSpec, s: &Stmt) {
    match s {
        Stmt::Assign(v, e) => push(
            out,
            ind,
            &format!(
                "f{}.st(l{});",
                render_expr(spec, e),
                v % spec.n_locals.max(1)
            ),
        ),
        Stmt::GlobalWrite(g, e) => {
            let tail = if spec.n_globals == 0 {
                ".drop_top()".to_string()
            } else {
                format!(".putstatic(g{})", g % spec.n_globals)
            };
            push(out, ind, &format!("f{}{tail};", render_expr(spec, e)));
        }
        Stmt::FieldWrite(i, e) => {
            if spec.n_fields == 0 {
                push(out, ind, &format!("f{}.drop_top();", render_expr(spec, e)));
            } else {
                push(
                    out,
                    ind,
                    &format!(
                        "f.ld(obj){}.putfield({});",
                        render_expr(spec, e),
                        i % spec.n_fields
                    ),
                );
            }
        }
        Stmt::ArrWrite(a, idx, val) => {
            if spec.arrays.is_empty() {
                push(
                    out,
                    ind,
                    &format!(
                        "f{}.drop_top(){}.drop_top();",
                        render_expr(spec, idx),
                        render_expr(spec, val)
                    ),
                );
            } else {
                let ai = *a as usize % spec.arrays.len();
                push(
                    out,
                    ind,
                    &format!(
                        "f.ld(a{ai}){}.ci({}).iand(){}.astore();",
                        render_expr(spec, idx),
                        spec.arr_len(ai) - 1,
                        render_expr(spec, val)
                    ),
                );
            }
        }
        Stmt::For {
            var,
            from,
            to,
            step,
            body,
        } => {
            push(
                out,
                ind,
                &format!(
                    "f.for_step(l{}, Operand::ConstI({from}), Operand::ConstI({to}), {}, |f| {{",
                    var % spec.n_locals.max(1),
                    if *step == 0 { 1 } else { *step }
                ),
            );
            for s in body {
                render_stmt(out, ind + 1, spec, s);
            }
            push(out, ind, "});");
        }
        Stmt::If {
            cond,
            a,
            b,
            then_s,
            else_s,
        } => {
            let method = if else_s.is_empty() {
                "if_icmp"
            } else {
                "if_else_icmp"
            };
            push(
                out,
                ind,
                &format!(
                    "f.{method}(Cond::{cond:?}, |f| {{ f{}{}; }}, |f| {{",
                    render_expr(spec, a),
                    render_expr(spec, b)
                ),
            );
            for s in then_s {
                render_stmt(out, ind + 1, spec, s);
            }
            if else_s.is_empty() {
                push(out, ind, "});");
            } else {
                push(out, ind, "}, |f| {");
                for s in else_s {
                    render_stmt(out, ind + 1, spec, s);
                }
                push(out, ind, "});");
            }
        }
        Stmt::Early { cond, a, b } => push(
            out,
            ind,
            &format!(
                "f.if_icmp(Cond::{cond:?}, |f| {{ f{}{}; }}, |f| {{ f.ld(l0).ret(); }});",
                render_expr(spec, a),
                render_expr(spec, b)
            ),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..50 {
            assert_eq!(gen_spec(seed), gen_spec(seed), "seed {seed}");
        }
    }

    #[test]
    fn generated_programs_build_and_verify_kinds() {
        for seed in 0..200 {
            let spec = gen_spec(seed);
            let program = emit(&spec).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            tvm::verify::verify_kinds(&program).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn generated_programs_terminate_quickly() {
        for seed in 0..100 {
            let program = emit(&gen_spec(seed)).expect("emit");
            let r = tvm::Interp::run_with(
                &program,
                &mut tvm::NullSink,
                tvm::CostModel::default(),
                2_000_000,
            )
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(r.ret.is_some(), "seed {seed}: main must return a value");
        }
    }

    #[test]
    fn render_mentions_every_declaration() {
        let spec = gen_spec(3);
        let text = render(&spec);
        assert!(text.contains("ProgramBuilder::new"));
        assert!(text.contains("f.ld(l0).ret()"));
    }
}
