//! Greedy spec minimization.
//!
//! Given a failing [`ProgramSpec`] and a predicate that re-checks the
//! failure, [`shrink`] repeatedly applies the smallest-step structural
//! reductions — drop a statement, splice a loop or branch body inline,
//! halve a trip count, collapse a subexpression, drop a declaration —
//! and keeps any variant that still fails with a strictly smaller
//! [`ProgramSpec::weight`]. Progress is monotone in that weight, so the
//! loop terminates; a cap on rounds guards against a pathological
//! predicate anyway.

use crate::spec::{Expr, ProgramSpec, Stmt};

/// Maximum accept-a-smaller-variant rounds.
const MAX_ROUNDS: usize = 200;

/// Minimizes `spec` under `still_fails`.
///
/// `still_fails` must return `true` for the original spec's failure
/// mode; the result is the lightest variant found that still trips it.
pub fn shrink(
    spec: &ProgramSpec,
    mut still_fails: impl FnMut(&ProgramSpec) -> bool,
) -> ProgramSpec {
    let mut best = spec.clone();
    for _ in 0..MAX_ROUNDS {
        let w = best.weight();
        let better = reductions(&best)
            .into_iter()
            .find(|c| c.weight() < w && still_fails(c));
        match better {
            Some(c) => best = c,
            None => break,
        }
    }
    best
}

/// All one-step reductions of `spec`, cheapest-looking first.
fn reductions(spec: &ProgramSpec) -> Vec<ProgramSpec> {
    let mut out = Vec::new();
    for body in reduce_block(&spec.body) {
        out.push(ProgramSpec {
            body,
            ..spec.clone()
        });
    }
    if spec.helper.is_some() {
        out.push(ProgramSpec {
            helper: None,
            ..spec.clone()
        });
    }
    if !spec.arrays.is_empty() {
        let mut arrays = spec.arrays.clone();
        arrays.pop();
        out.push(ProgramSpec {
            arrays,
            ..spec.clone()
        });
    }
    if spec.n_fields > 0 {
        out.push(ProgramSpec {
            n_fields: spec.n_fields - 1,
            ..spec.clone()
        });
    }
    if spec.n_globals > 0 {
        out.push(ProgramSpec {
            n_globals: spec.n_globals - 1,
            ..spec.clone()
        });
    }
    out
}

/// All one-step reductions of a statement list: drop one statement, or
/// replace one statement by one of its own reductions (which may be a
/// spliced-in sequence).
fn reduce_block(body: &[Stmt]) -> Vec<Vec<Stmt>> {
    let mut out = Vec::new();
    for i in 0..body.len() {
        let mut v = body.to_vec();
        v.remove(i);
        out.push(v);
    }
    for (i, s) in body.iter().enumerate() {
        for repl in reduce_stmt(s) {
            let mut v = body.to_vec();
            v.splice(i..=i, repl);
            out.push(v);
        }
    }
    out
}

/// One-step reductions of a single statement, each given as the
/// sequence that replaces it.
fn reduce_stmt(s: &Stmt) -> Vec<Vec<Stmt>> {
    let mut out = Vec::new();
    match s {
        Stmt::Assign(v, e) => {
            for e in reduce_expr(e) {
                out.push(vec![Stmt::Assign(*v, e)]);
            }
        }
        Stmt::GlobalWrite(g, e) => {
            for e in reduce_expr(e) {
                out.push(vec![Stmt::GlobalWrite(*g, e)]);
            }
        }
        Stmt::FieldWrite(fi, e) => {
            for e in reduce_expr(e) {
                out.push(vec![Stmt::FieldWrite(*fi, e)]);
            }
        }
        Stmt::ArrWrite(a, idx, val) => {
            for idx in reduce_expr(idx) {
                out.push(vec![Stmt::ArrWrite(*a, idx, val.clone())]);
            }
            for val in reduce_expr(val) {
                out.push(vec![Stmt::ArrWrite(*a, idx.clone(), val)]);
            }
        }
        Stmt::For {
            var,
            from,
            to,
            step,
            body,
        } => {
            // splice the body in place of the loop
            out.push(body.clone());
            // halve the trip count
            let half = from + (to - from) / 2;
            if half != *to {
                out.push(vec![Stmt::For {
                    var: *var,
                    from: *from,
                    to: half,
                    step: *step,
                    body: body.clone(),
                }]);
            }
            for body in reduce_block(body) {
                out.push(vec![Stmt::For {
                    var: *var,
                    from: *from,
                    to: *to,
                    step: *step,
                    body,
                }]);
            }
        }
        Stmt::If {
            cond,
            a,
            b,
            then_s,
            else_s,
        } => {
            out.push(then_s.clone());
            if !else_s.is_empty() {
                out.push(else_s.clone());
            }
            for a in reduce_expr(a) {
                out.push(vec![Stmt::If {
                    cond: *cond,
                    a,
                    b: b.clone(),
                    then_s: then_s.clone(),
                    else_s: else_s.clone(),
                }]);
            }
            for b in reduce_expr(b) {
                out.push(vec![Stmt::If {
                    cond: *cond,
                    a: a.clone(),
                    b,
                    then_s: then_s.clone(),
                    else_s: else_s.clone(),
                }]);
            }
            for then_s in reduce_block(then_s) {
                out.push(vec![Stmt::If {
                    cond: *cond,
                    a: a.clone(),
                    b: b.clone(),
                    then_s,
                    else_s: else_s.clone(),
                }]);
            }
            for else_s in reduce_block(else_s) {
                out.push(vec![Stmt::If {
                    cond: *cond,
                    a: a.clone(),
                    b: b.clone(),
                    then_s: then_s.clone(),
                    else_s,
                }]);
            }
        }
        Stmt::Early { cond, a, b } => {
            for a in reduce_expr(a) {
                out.push(vec![Stmt::Early {
                    cond: *cond,
                    a,
                    b: b.clone(),
                }]);
            }
            for b in reduce_expr(b) {
                out.push(vec![Stmt::Early {
                    cond: *cond,
                    a: a.clone(),
                    b,
                }]);
            }
        }
    }
    out
}

/// One-step reductions of an expression: hoist a child, collapse to a
/// unit constant, or reduce a child in place.
fn reduce_expr(e: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    match e {
        Expr::Const(_) | Expr::Local(_) | Expr::Global(_) | Expr::Field(_) => {}
        Expr::ArrRead(a, idx) => {
            out.push((**idx).clone());
            for idx in reduce_expr(idx) {
                out.push(Expr::ArrRead(*a, Box::new(idx)));
            }
        }
        Expr::Bin(op, x, y) => {
            out.push((**x).clone());
            out.push((**y).clone());
            for x in reduce_expr(x) {
                out.push(Expr::Bin(*op, Box::new(x), y.clone()));
            }
            for y in reduce_expr(y) {
                out.push(Expr::Bin(*op, x.clone(), Box::new(y)));
            }
        }
        Expr::Call(x) => {
            out.push((**x).clone());
            for x in reduce_expr(x) {
                out.push(Expr::Call(Box::new(x)));
            }
        }
    }
    if !matches!(e, Expr::Const(_)) {
        out.push(Expr::Const(1));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::gen_spec;

    #[test]
    fn shrink_is_monotone_and_terminates() {
        let spec = gen_spec(11);
        // a predicate that accepts everything shrinks to (near) nothing
        let min = shrink(&spec, |_| true);
        assert!(min.weight() < spec.weight());
        assert!(min.body.is_empty());
    }

    #[test]
    fn shrink_respects_the_predicate() {
        let spec = gen_spec(12);
        // refuse everything: the original must come back unchanged
        let same = shrink(&spec, |_| false);
        assert_eq!(same, spec);
    }

    #[test]
    fn shrunk_specs_still_emit() {
        let spec = gen_spec(13);
        let min = shrink(&spec, |c| crate::spec::emit(c).is_ok());
        crate::spec::emit(&min).expect("shrunk spec must stay emittable");
    }
}
