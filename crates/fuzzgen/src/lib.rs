//! Differential fuzzing harness for the STL extraction pipeline.
//!
//! The pipeline is full of deliberate redundancy: four transports for
//! the same event stream, a static pre-screen whose verdicts the
//! dynamic stream must witness, a tracer whose statistics must be
//! invariant to never-exercised capacities, and a simulator with
//! algebraic sanity bounds. Redundancy is only worth its keep if
//! something *checks* it — this crate does, on randomly generated
//! programs rather than the handful of committed benchmarks.
//!
//! * [`spec`] — a seeded generator of structured program ASTs, the
//!   emitter that lowers them through [`tvm::build::ProgramBuilder`],
//!   and a renderer that prints any spec as a paste-able builder
//!   snippet for regression tests.
//! * [`oracle`] — the differential checks; [`oracle::check_seed`] runs
//!   the whole stack for one seed.
//! * [`shrink()`](shrink::shrink) — greedy structural minimization of failing specs.
//! * [`corrupt`] — byte-level corruption sweeps against
//!   [`tvm::record::Recording::from_bytes`].
//! * [`rng`] — the dependency-free SplitMix64 stream everything is
//!   seeded from.
//!
//! Reproduce any CI failure locally with
//! `cargo run -p fuzzgen -- --seeds N..N+1`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corrupt;
pub mod oracle;
pub mod rng;
pub mod shrink;
pub mod spec;

pub use corrupt::{corruption_sweep, CorruptStats};
pub use oracle::{check_program, check_seed, check_spec, CheckStats, Failure};
pub use rng::Rng;
pub use shrink::shrink;
pub use spec::{emit, gen_spec, render, ProgramSpec};
