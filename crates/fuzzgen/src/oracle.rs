//! The differential oracle stack.
//!
//! Every generated program is pushed through each redundant path the
//! pipeline has, and every pair of paths that must agree is checked:
//!
//! 1. **transport identity** — direct interpretation, serial bus
//!    replay, threaded replay and live threaded fan-out must produce
//!    the same [`RunResult`], the same event stream and the same
//!    tracer [`Profile`];
//! 2. **serialization identity** — `Recording::to_bytes` /
//!    `from_bytes` round-trips exactly;
//! 3. **derived baseline** — profiling cycles minus the measured
//!    annotation overhead equals a real un-annotated run;
//! 4. **config stability** — tracer capacities that are large enough
//!    to never be exercised must not change the per-loop statistics;
//! 5. **static/dynamic agreement** — a loop `cfgir::memdep` proves
//!    serial must actually exhibit a cross-iteration RAW in the
//!    recorded event stream once it runs more iterations than the
//!    proven dependence distance;
//! 6. **points-to soundness** — any access pair the alias-sharpened
//!    pre-screen classifies as disjoint must touch disjoint dynamic
//!    address sets in the plain run's event stream; one shared
//!    address is an unsoundness in `cfgir::pointsto`;
//! 7. **rescue equivalence** — when the loop-rescue pass transforms
//!    the program, the original and rescued variants must finish in
//!    bit-identical final state (return value and whole memory
//!    image), and a single-step rescue's legality proof must re-pass
//!    the independent checker `cfgir::rescue::verify::check`;
//! 8. **tier equivalence** — the online tiered runtime, with
//!    promotion thresholds fuzzed from the program shape so loops
//!    promote in varying orders, must reach all-terminal tiers, leave
//!    the program's observable final state (return value and memory
//!    image) identical to a plain run, and agree with the offline
//!    batch on every selection verdict;
//! 9. **Hydra sanity** — simulated TLS time is bounded below by the
//!    longest thread plus fixed overheads, thread counts match the
//!    trace, and zero violations means the restart penalty is inert;
//! 10. **pipeline closure** — `run_pipeline` in serial-bus and
//!     threaded-bus modes agrees end to end;
//! 11. **server closure** — the same program submitted to the `serve`
//!     worker pool answers with a report identical to the batch
//!     pipeline: the server is a transport, never a re-modelling;
//! 12. **value agreement** — every certified pre-computation slice's
//!     predicted per-iteration value (and every claimed dependence
//!     distance) must match the recorded stream of a full replay: a
//!     single refuted prediction is an unsoundness in `cfgir::scev`
//!     or `cfgir::slice`.
//!
//! Checks are ordered cheap-first so the shrinker converges fast.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use crate::spec::{emit, gen_spec, ProgramSpec};
use cfgir::{analyze_loop, classify_loop_pairs, Dominators, PairVerdict, ProgramCandidates};
use hydra_sim::{simulate_entry, TlsConfig, TlsTraceCollector};
use jrpm::annotate::{annotate, AnnotateOptions};
use jrpm::tier::{run_tiered, TierConfig};
use jrpm::{run_pipeline, BusConfig, PipelineConfig};
use serve::{ProfileRequest, Server, ServerConfig};
use test_tracer::{Profile, TestTracer, TracerConfig};
use tvm::record::{Event, Recording, RecordingSink};
use tvm::{record_batches, Addr, CostModel, Interp, LoopId, Program, RunResult, TraceBus, VmError};

/// Instruction budget per interpreter run. Generated programs retire a
/// few thousand instructions; anything near this limit is a
/// non-termination bug worth reporting.
pub const FUZZ_FUEL: u64 = 20_000_000;

/// A divergence between two paths that must agree.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Which oracle tripped.
    pub oracle: &'static str,
    /// Human-readable description of the disagreement.
    pub detail: String,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

fn fail(oracle: &'static str, detail: impl Into<String>) -> Failure {
    Failure {
        oracle,
        detail: detail.into(),
    }
}

/// Per-sink bus counters rendered for a failure report. When a
/// threaded transport diverges, back-pressure (lagged or dropped
/// batches) is the first hypothesis to confirm or rule out, so the
/// report carries it inline.
fn sink_diag(label: &str, report: &tvm::bus::BusReport) -> String {
    let sinks = report
        .sinks
        .iter()
        .map(|s| {
            format!(
                "{}: events={} batches={} lagged={} dropped={}",
                s.label, s.events, s.batches, s.lagged_batches, s.dropped_batches
            )
        })
        .collect::<Vec<_>>()
        .join("; ");
    format!(" [{label} sinks: {sinks}]")
}

/// Appends per-sink diagnostics to a transport failure.
fn with_sinks(mut f: Failure, report: &tvm::bus::BusReport) -> Failure {
    f.detail.push_str(&sink_diag("bus", report));
    f
}

/// Coverage counters for a passing check (CLI statistics).
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckStats {
    /// Events in the profiling recording.
    pub events: usize,
    /// Candidate STLs extracted.
    pub candidates: usize,
    /// Candidates the static pre-screen demoted.
    pub demoted: usize,
    /// Loop entries collected for the Hydra simulation.
    pub tls_entries: usize,
    /// Loops the rescue pass transformed (state-checked).
    pub rescued: usize,
    /// Certified pre-computation slices extracted and verified.
    pub slices: usize,
    /// Per-iteration slice predictions and distance claims checked
    /// against the recorded stream.
    pub value_checks: u64,
}

/// Generates the program for `seed` and runs the full oracle stack.
///
/// # Errors
///
/// The first [`Failure`] any oracle reports.
pub fn check_seed(seed: u64) -> Result<CheckStats, Failure> {
    check_spec(&gen_spec(seed))
}

/// Runs the full oracle stack on one spec.
///
/// # Errors
///
/// The first [`Failure`] any oracle reports.
pub fn check_spec(spec: &ProgramSpec) -> Result<CheckStats, Failure> {
    let program = emit(spec).map_err(|e| fail("emit", e.to_string()))?;
    check_program(&program)
}

/// Runs the full oracle stack on an already-built program.
///
/// # Errors
///
/// The first [`Failure`] any oracle reports.
pub fn check_program(program: &Program) -> Result<CheckStats, Failure> {
    tvm::verify::verify_kinds(program).map_err(|e| fail("verify-kinds", e.to_string()))?;

    let cands = cfgir::extract_candidates(program);
    let masks = cands.tracked_masks();
    let ann = annotate(program, &cands, &AnnotateOptions::profiling())
        .map_err(|e| fail("annotate", e.to_string()))?;

    // -- transport 1: direct interpretation, capturing the stream -----
    let mut sink = RecordingSink::default();
    let run_d = run_bounded(&ann, &mut sink).map_err(|e| fail("run-annotated", e.to_string()))?;
    let rec = sink.into_recording();

    // -- derived sequential baseline == a real plain run --------------
    // (recorded: the plain stream's pcs address the original program
    // directly, which the points-to soundness oracle below relies on)
    let mut sink_plain = RecordingSink::default();
    let run_p =
        run_bounded(program, &mut sink_plain).map_err(|e| fail("run-plain", e.to_string()))?;
    let rec_plain = sink_plain.into_recording();
    let derived = run_d
        .cycles
        .checked_sub(run_d.annotation_cycles.total())
        .ok_or_else(|| {
            fail(
                "derived-baseline",
                format!(
                    "annotation overhead {} exceeds total cycles {}",
                    run_d.annotation_cycles.total(),
                    run_d.cycles
                ),
            )
        })?;
    if run_p.cycles != derived {
        return Err(fail(
            "derived-baseline",
            format!(
                "plain run took {} cycles but annotated-minus-overhead gives {}",
                run_p.cycles, derived
            ),
        ));
    }
    if format!("{:?}", run_p.ret) != format!("{:?}", run_d.ret) {
        return Err(fail(
            "derived-baseline",
            format!(
                "plain run returned {:?} but annotated run returned {:?}",
                run_p.ret, run_d.ret
            ),
        ));
    }

    // -- transport 2: serial bus (record batches, flatten) ------------
    let (run_b, batches) =
        record_batches(&ann, 64).map_err(|e| fail("serial-batches", e.to_string()))?;
    same_run("serial-batches", &run_d, &run_b)?;
    let flat: Vec<Event> = batches.iter().flat_map(|b| b.events()).collect();
    if flat != rec.events {
        return Err(fail(
            "serial-batches",
            format!(
                "flattened batch stream has {} events, direct capture has {}",
                flat.len(),
                rec.events.len()
            ),
        ));
    }

    // -- transport 3: serial bus replay into sinks --------------------
    let mut rec_serial = RecordingSink::default();
    let mut tr_serial = TestTracer::with_masks(TracerConfig::default(), masks.iter().copied());
    TraceBus::new()
        .sink("recording", &mut rec_serial)
        .sink("tracer", &mut tr_serial)
        .replay(&batches);
    same_events("serial-replay", &rec, &rec_serial.into_recording())?;
    let profile = tr_serial.into_profile();

    // -- transport 4: threaded replay ---------------------------------
    let mut rec_thr = RecordingSink::default();
    let mut tr_thr = TestTracer::with_masks(TracerConfig::default(), masks.iter().copied());
    let thr_report = TraceBus::new()
        .channel_depth(2)
        .sink("recording", &mut rec_thr)
        .sink("tracer", &mut tr_thr)
        .replay_threaded(&batches);
    same_events("threaded-replay", &rec, &rec_thr.into_recording())
        .map_err(|f| with_sinks(f, &thr_report))?;
    same_profile("threaded-replay", &profile, &tr_thr.into_profile())
        .map_err(|f| with_sinks(f, &thr_report))?;

    // -- transport 5: live threaded fan-out ---------------------------
    let mut rec_live = RecordingSink::default();
    let mut tr_live = TestTracer::with_masks(TracerConfig::default(), masks.iter().copied());
    let (run_t, live_report) = TraceBus::new()
        .channel_depth(2)
        .sink("recording", &mut rec_live)
        .sink("tracer", &mut tr_live)
        .run_threaded(&ann, 64)
        .map_err(|e| fail("live-threaded", e.to_string()))?;
    same_run("live-threaded", &run_d, &run_t).map_err(|f| with_sinks(f, &live_report))?;
    same_events("live-threaded", &rec, &rec_live.into_recording())
        .map_err(|f| with_sinks(f, &live_report))?;
    same_profile("live-threaded", &profile, &tr_live.into_profile())
        .map_err(|f| with_sinks(f, &live_report))?;

    // -- transport 6: byte round-trip ---------------------------------
    let bytes = rec.to_bytes();
    let rt = Recording::from_bytes(&bytes).map_err(|e| fail("roundtrip-bytes", e.to_string()))?;
    same_events("roundtrip-bytes", &rec, &rt)?;

    // -- direct replay into a tracer equals the bus-fed tracers -------
    let mut tr_direct = TestTracer::with_masks(TracerConfig::default(), masks.iter().copied());
    rec.replay(&mut tr_direct);
    same_profile("tracer-direct", &profile, &tr_direct.into_profile())?;

    // -- config stability: never-exercised capacities are inert -------
    check_config_stability(&rec, &masks)?;

    // -- static pre-screen vs the recorded stream ---------------------
    let deps = guaranteed_deps(program, &cands)?;
    let demoted_count = check_memdep(program, &cands, &deps)?;

    // -- points-to disjointness vs the plain run's addresses ----------
    check_pointsto(program, &cands, &rec_plain)?;

    // -- loop rescue preserves the final state ------------------------
    let rescued = check_rescue(program)?;

    // -- online tier controller == offline batch ----------------------
    check_tiers(program)?;

    // -- Hydra simulator sanity invariants ----------------------------
    let tls_entries = check_hydra(program, &cands, &masks)?;

    // -- whole-pipeline closure: serial vs threaded bus ---------------
    check_pipeline(program)?;

    // -- slice predictions and distance claims vs the replay ----------
    let (slices, value_checks) = check_value_agreement(program)?;

    Ok(CheckStats {
        events: rec.len(),
        candidates: cands.candidates.len(),
        demoted: demoted_count,
        tls_entries,
        rescued,
        slices,
        value_checks,
    })
}

/// Value-agreement oracle: replays the program (through
/// `jrpm::agreement::agreement_report`, which also re-runs the rescue
/// and points-to soundness checks dynamically) and demands that every
/// certified slice's predicted per-iteration value and every claimed
/// dependence distance matches the recorded stream exactly. One
/// refuted prediction means `cfgir::scev` derived a wrong evolution or
/// `cfgir::slice::verify` accepted a bad certificate.
fn check_value_agreement(program: &Program) -> Result<(usize, u64), Failure> {
    let report = jrpm::agreement::agreement_report(program)
        .map_err(|e| fail("value-agreement", e.to_string()))?;
    if let Some(v) = report.slice_violations.first() {
        return Err(fail(
            "value-agreement",
            format!(
                "slice prediction refuted: loop {:?} scalar {:?} at iteration {} \
                 predicted {} but the stream held {} ({} violation(s) total)",
                v.loop_id,
                v.scalar,
                v.iter,
                v.predicted,
                v.observed,
                report.slice_violations.len()
            ),
        ));
    }
    if let Some(v) = report.distance_violations.first() {
        return Err(fail(
            "value-agreement",
            format!(
                "distance claim refuted: loop {:?} load@{} store@{} shared {:?} at \
                 iterations (load {}, store {}) against claimed distance {} \
                 ({} violation(s) total)",
                v.loop_id,
                v.load_at,
                v.store_at,
                v.addr,
                v.load_iter,
                v.store_iter,
                v.claimed,
                report.distance_violations.len()
            ),
        ));
    }
    if !report.sound() {
        return Err(fail(
            "value-agreement",
            format!(
                "agreement report unsound: {} disjointness violation(s), rescue_state_ok={}",
                report.violations.len(),
                report.rescue_state_ok
            ),
        ));
    }
    Ok((report.slices, report.slice_checks + report.distance_checks))
}

/// Loop-rescue equivalence oracle: a transformed program must be
/// indistinguishable from the original at the final state — same
/// return value, same whole memory image. A single-step rescue's
/// legality proof is additionally re-run through the independent
/// checker against the exact (original, rescued) pair; multi-step
/// rescues are covered by the state comparison alone, since the
/// intermediate programs are not retained.
fn check_rescue(program: &Program) -> Result<usize, Failure> {
    let out = cfgir::rescue_program(program);
    if out.rescued.is_empty() {
        return Ok(0);
    }
    let mut sink = tvm::NullSink;
    let a = Interp::run_to_state(program, &mut sink, CostModel::default(), FUZZ_FUEL)
        .map_err(|e| fail("rescue-state", format!("original run failed: {e}")))?;
    let b = Interp::run_to_state(&out.program, &mut sink, CostModel::default(), FUZZ_FUEL)
        .map_err(|e| fail("rescue-state", format!("rescued run failed: {e}")))?;
    if a.result.ret != b.result.ret {
        return Err(fail(
            "rescue-state",
            format!(
                "rescue changed the return value: {:?} vs {:?} ({} transform(s): {})",
                a.result.ret,
                b.result.ret,
                out.rescued.len(),
                out.rescued
                    .iter()
                    .map(|r| r.proof.transform.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        ));
    }
    if a.memory.words() != b.memory.words() {
        return Err(fail(
            "rescue-state",
            format!(
                "rescue changed the final memory image ({} transform(s): {})",
                out.rescued.len(),
                out.rescued
                    .iter()
                    .map(|r| r.proof.transform.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        ));
    }
    if let [r] = &out.rescued[..] {
        cfgir::rescue::verify::check(program, &out.program, &r.proof)
            .map_err(|e| fail("rescue-verify", e))?;
    }
    Ok(out.rescued.len())
}

/// Tier-controller oracle: drive the online tiered runtime to
/// all-terminal and require (a) the final epoch's program state —
/// return value and whole memory image — to equal a plain
/// un-annotated run (counting probes and incremental patches must be
/// invisible to the program), and (b) every selection verdict to match
/// the offline batch exactly. Promotion thresholds are derived from a
/// hash of the program shape, so different seeds promote loops in
/// different orders and generations.
fn check_tiers(program: &Program) -> Result<(), Failure> {
    // FNV-style fold over the code shape: deterministic per program,
    // varying across seeds
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for f in &program.functions {
        h = (h ^ f.code.len() as u64).wrapping_mul(0x0000_0100_0000_01b3);
        h = (h ^ u64::from(f.n_locals)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    let tcfg = TierConfig {
        hot_threshold: 1 + h % 512,
        counting_epoch_budget: 1 + (h >> 9) as u32 % 3,
        hysteresis: 1 + (h >> 11) as u32 % 3,
        window: 1 + (h >> 13) as usize % 4,
        ..TierConfig::default()
    };
    let online = run_tiered(program, &PipelineConfig::default(), &tcfg)
        .map_err(|e| fail("tier", format!("online tiered run failed: {e}")))?;
    if !online.tiers.all_terminal() {
        return Err(fail(
            "tier",
            format!(
                "controller stopped with non-terminal tiers: {:?} ({tcfg:?})",
                online
                    .tiers
                    .loops
                    .iter()
                    .filter(|l| !l.tier.is_terminal())
                    .map(|l| (l.loop_id, l.tier.name()))
                    .collect::<Vec<_>>()
            ),
        ));
    }

    // (a) observable program state is untouched by probes and patches
    let mut sink = tvm::NullSink;
    let plain = Interp::run_to_state(program, &mut sink, CostModel::default(), FUZZ_FUEL)
        .map_err(|e| fail("tier-state", format!("plain run failed: {e}")))?;
    let fin = online
        .final_state
        .as_ref()
        .ok_or_else(|| fail("tier-state", "online run produced no final state"))?;
    if format!("{:?}", fin.result.ret) != format!("{:?}", plain.result.ret) {
        return Err(fail(
            "tier-state",
            format!(
                "final online epoch returned {:?} but the plain program returns {:?}",
                fin.result.ret, plain.result.ret
            ),
        ));
    }
    if fin.memory.words() != plain.memory.words() {
        return Err(fail(
            "tier-state",
            "final online epoch left a different memory image than the plain program",
        ));
    }

    // (b) selection verdicts equal the offline batch, bit for bit
    let offline = run_pipeline(program, &PipelineConfig::default())
        .map_err(|e| fail("tier", format!("offline pipeline failed: {e}")))?;
    let rep = &online.report;
    if rep.seq_cycles != offline.seq_cycles
        || rep.profile_cycles != offline.profile_cycles
        || rep.profile != offline.profile
    {
        return Err(fail(
            "tier",
            format!(
                "final-epoch measurements diverged from offline: seq {} vs {}, profiling {} vs {} \
                 ({tcfg:?})",
                rep.seq_cycles, offline.seq_cycles, rep.profile_cycles, offline.profile_cycles
            ),
        ));
    }
    if format!("{:?}", rep.selection.chosen) != format!("{:?}", offline.selection.chosen)
        || rep.candidates.demoted_ids() != offline.candidates.demoted_ids()
    {
        return Err(fail(
            "tier",
            format!(
                "selection verdicts diverged: online chose {:?} (demoted {:?}), offline chose \
                 {:?} (demoted {:?}) ({tcfg:?})",
                rep.selection
                    .chosen
                    .iter()
                    .map(|c| c.loop_id)
                    .collect::<Vec<_>>(),
                rep.candidates.demoted_ids(),
                offline
                    .selection
                    .chosen
                    .iter()
                    .map(|c| c.loop_id)
                    .collect::<Vec<_>>(),
                offline.candidates.demoted_ids(),
            ),
        ));
    }
    let selected = online.tiers.selected_ids();
    let chosen: BTreeSet<LoopId> = rep.selection.chosen.iter().map(|c| c.loop_id).collect();
    if selected != chosen {
        return Err(fail(
            "tier",
            format!("terminal Selected tiers {selected:?} disagree with the selection {chosen:?}"),
        ));
    }
    Ok(())
}

fn run_bounded<S: tvm::TraceSink>(program: &Program, sink: &mut S) -> Result<RunResult, VmError> {
    Interp::run_with(program, sink, CostModel::default(), FUZZ_FUEL)
}

fn same_run(oracle: &'static str, a: &RunResult, b: &RunResult) -> Result<(), Failure> {
    let (da, db) = (format!("{a:?}"), format!("{b:?}"));
    if da != db {
        return Err(fail(oracle, format!("RunResult diverged: {da} vs {db}")));
    }
    Ok(())
}

fn same_events(oracle: &'static str, a: &Recording, b: &Recording) -> Result<(), Failure> {
    if a != b {
        let first = a
            .events
            .iter()
            .zip(&b.events)
            .position(|(x, y)| x != y)
            .map_or_else(
                || format!("lengths {} vs {}", a.len(), b.len()),
                |i| {
                    format!(
                        "first divergence at event {i}: {:?} vs {:?}",
                        a.events[i], b.events[i]
                    )
                },
            );
        return Err(fail(oracle, format!("event streams diverged: {first}")));
    }
    Ok(())
}

fn same_profile(oracle: &'static str, a: &Profile, b: &Profile) -> Result<(), Failure> {
    if a != b {
        return Err(fail(
            oracle,
            format!("profiles diverged:\n{a:#?}\nvs\n{b:#?}"),
        ));
    }
    Ok(())
}

fn profile_with(rec: &Recording, cfg: TracerConfig, masks: &[(LoopId, u64)]) -> Profile {
    let mut t = TestTracer::with_masks(cfg, masks.iter().copied());
    rec.replay(&mut t);
    t.into_profile()
}

/// Two tracer configurations that only differ in capacities the run
/// never exhausts must agree on every per-loop statistic.
fn check_config_stability(rec: &Recording, masks: &[(LoopId, u64)]) -> Result<(), Failure> {
    let unb = TracerConfig::unbounded();
    let base = profile_with(rec, unb, masks);
    let variants: Vec<(&'static str, TracerConfig)> = vec![
        (
            "halved (still huge) store-timestamp FIFO",
            TracerConfig {
                store_ts_lines: unb.store_ts_lines / 2,
                ..unb
            },
        ),
        (
            "halved (still collision-free) line-timestamp tables",
            TracerConfig {
                ld_table_entries: unb.ld_table_entries / 2,
                st_table_entries: unb.st_table_entries / 2,
                ..unb
            },
        ),
        (
            "different pc-bin capacity",
            TracerConfig {
                pc_bin_capacity: 8,
                ..unb
            },
        ),
    ];
    for (what, cfg) in variants {
        let p = profile_with(rec, cfg, masks);
        if p.stl != base.stl || p.forest_edges != base.forest_edges {
            return Err(fail(
                "config-stability",
                format!("{what} changed the per-loop statistics"),
            ));
        }
    }
    if base.max_dynamic_depth <= 32 {
        let p = profile_with(rec, TracerConfig { n_banks: 32, ..unb }, masks);
        if p.stl != base.stl || p.forest_edges != base.forest_edges {
            return Err(fail(
                "config-stability",
                "32 banks suffice for this depth but changed the statistics",
            ));
        }
    }
    Ok(())
}

/// Re-derives the guaranteed-dependence set per candidate (minimum
/// distance per demoted loop).
fn guaranteed_deps(
    program: &Program,
    cands: &ProgramCandidates,
) -> Result<HashMap<LoopId, u32>, Failure> {
    let mut out = HashMap::new();
    let pt = cfgir::PointsTo::analyze(program);
    for c in &cands.candidates {
        let fa = &cands.functions[c.func.0 as usize];
        let f = &program.functions[c.func.0 as usize];
        let dom = Dominators::compute(&fa.cfg);
        let view = pt.view(c.func);
        let ds = analyze_loop(
            program,
            f,
            &fa.cfg,
            &dom,
            &fa.forest.loops[c.loop_idx],
            Some(&view),
        );
        if let Some(min) = ds.iter().map(|d| d.distance).min() {
            out.insert(c.id, min.max(1));
        }
    }
    Ok(out)
}

/// Checks that demotion verdicts match a fresh `analyze_loop` pass and
/// that every demoted loop's proven dependence is visible in the event
/// stream of a run with *all* candidates force-annotated.
fn check_memdep(
    program: &Program,
    cands: &ProgramCandidates,
    deps: &HashMap<LoopId, u32>,
) -> Result<usize, Failure> {
    for c in &cands.candidates {
        if deps.contains_key(&c.id) != c.is_demoted() {
            return Err(fail(
                "memdep-verdict",
                format!(
                    "candidate {:?}: extraction says demoted={}, fresh analyze_loop says {}",
                    c.id,
                    c.is_demoted(),
                    deps.contains_key(&c.id)
                ),
            ));
        }
    }
    if deps.is_empty() {
        return Ok(0);
    }
    let all_ids: Vec<LoopId> = cands.candidates.iter().map(|c| c.id).collect();
    let ann_all = annotate(program, cands, &AnnotateOptions::only(all_ids))
        .map_err(|e| fail("memdep-stream", format!("annotate-all failed: {e}")))?;
    let mut sink = RecordingSink::default();
    run_bounded(&ann_all, &mut sink)
        .map_err(|e| fail("memdep-stream", format!("annotated-all run failed: {e}")))?;
    check_memdep_stream(&sink.into_recording(), deps)?;
    Ok(deps.len())
}

/// Soundness oracle for the alias-sharpened pre-screen: every access
/// pair `classify_loop_pairs` marks `Disjoint` must touch disjoint
/// dynamic address sets in the plain run. Opaque-store pairs are
/// skipped — call instructions emit no heap events of their own, so
/// their footprint is not observable at the call pc.
fn check_pointsto(
    program: &Program,
    cands: &ProgramCandidates,
    rec: &Recording,
) -> Result<(), Failure> {
    let mut addrs: HashMap<(u16, u32), BTreeSet<Addr>> = HashMap::new();
    for e in &rec.events {
        if let Event::HeapLoad(a, _, pc) | Event::HeapStore(a, _, pc) = *e {
            addrs.entry((pc.func.0, pc.idx)).or_default().insert(a);
        }
    }
    let pt = cfgir::PointsTo::analyze(program);
    let empty = BTreeSet::new();
    for c in &cands.candidates {
        let fa = &cands.functions[c.func.0 as usize];
        let f = &program.functions[c.func.0 as usize];
        let dom = Dominators::compute(&fa.cfg);
        let lp = &fa.forest.loops[c.loop_idx];
        let view = pt.view(c.func);
        for p in classify_loop_pairs(program, f, &fa.cfg, &dom, lp, Some(&view)) {
            if p.verdict != PairVerdict::Disjoint || p.opaque_store {
                continue;
            }
            let la = addrs.get(&(c.func.0, p.load_at)).unwrap_or(&empty);
            let sa = addrs.get(&(c.func.0, p.store_at)).unwrap_or(&empty);
            if let Some(shared) = la.intersection(sa).next() {
                return Err(fail(
                    "pointsto-soundness",
                    format!(
                        "candidate {:?} in fn {}: load at pc {} and store at pc {} were \
                         proven disjoint (via_pointsto={}) but both touched address {} \
                         dynamically",
                        c.id, c.func.0, p.load_at, p.store_at, p.via_pointsto, shared
                    ),
                ));
            }
        }
    }
    Ok(())
}

struct EntryWalk {
    loop_id: LoopId,
    iter: u32,
    /// addr -> iteration of the last store within this entry
    last_store: HashMap<u32, u32>,
    found_cross_raw: bool,
}

/// Walks the exact event stream and requires each demoted entry that
/// completed more iterations than its proven distance to contain at
/// least one load observing an earlier iteration's store.
fn check_memdep_stream(rec: &Recording, deps: &HashMap<LoopId, u32>) -> Result<(), Failure> {
    let mut stack: Vec<EntryWalk> = Vec::new();
    for e in &rec.events {
        match *e {
            Event::LoopEnter(l, _, _, _) => stack.push(EntryWalk {
                loop_id: l,
                iter: 0,
                last_store: HashMap::new(),
                found_cross_raw: false,
            }),
            Event::LoopIter(l, _) => {
                if let Some(st) = stack.iter_mut().rev().find(|s| s.loop_id == l) {
                    st.iter += 1;
                }
            }
            Event::LoopExit(l, _) => {
                // inner entries abandoned by an early function return
                // unwind together with the exiting loop
                while let Some(st) = stack.pop() {
                    let done = st.loop_id == l;
                    finish_entry(&st, deps)?;
                    if done {
                        break;
                    }
                }
            }
            Event::HeapLoad(a, _, _) => {
                for st in &mut stack {
                    if !st.found_cross_raw {
                        if let Some(&it) = st.last_store.get(&a) {
                            if it < st.iter {
                                st.found_cross_raw = true;
                            }
                        }
                    }
                }
            }
            Event::HeapStore(a, _, _) => {
                for st in &mut stack {
                    st.last_store.insert(a, st.iter);
                }
            }
            _ => {}
        }
    }
    while let Some(st) = stack.pop() {
        finish_entry(&st, deps)?;
    }
    Ok(())
}

fn finish_entry(st: &EntryWalk, deps: &HashMap<LoopId, u32>) -> Result<(), Failure> {
    if let Some(&d) = deps.get(&st.loop_id) {
        if st.iter > d && !st.found_cross_raw {
            return Err(fail(
                "memdep-stream",
                format!(
                    "loop {:?} is statically proven serial at distance {d}, but an entry \
                     with {} completed iterations shows no cross-iteration RAW in its \
                     heap event stream",
                    st.loop_id, st.iter
                ),
            ));
        }
    }
    Ok(())
}

/// Collects per-entry TLS traces for every candidate and checks the
/// Hydra simulator's sanity invariants on each.
fn check_hydra(
    program: &Program,
    cands: &ProgramCandidates,
    masks: &[(LoopId, u64)],
) -> Result<usize, Failure> {
    if cands.candidates.is_empty() {
        return Ok(0);
    }
    let all_ids: Vec<LoopId> = cands.candidates.iter().map(|c| c.id).collect();
    let ann = annotate(
        program,
        cands,
        &AnnotateOptions::only(all_ids.iter().copied()),
    )
    .map_err(|e| fail("hydra", format!("annotate for collection failed: {e}")))?;
    let mut coll = TlsTraceCollector::with_masks(all_ids, masks.iter().copied());
    run_bounded(&ann, &mut coll)
        .map_err(|e| fail("hydra", format!("collection run failed: {e}")))?;
    let cfg = TlsConfig::default();
    for (i, entry) in coll.entries.iter().enumerate() {
        let r = simulate_entry(entry, &cfg);
        if r.threads != entry.iters.len() as u64 {
            return Err(fail(
                "hydra",
                format!(
                    "entry {i} of {:?}: trace has {} iterations but the simulator ran {} threads",
                    entry.loop_id,
                    entry.iters.len(),
                    r.threads
                ),
            ));
        }
        let longest = entry.iters.iter().map(|it| u64::from(it.cycles)).max();
        if let Some(longest) = longest {
            let floor =
                cfg.startup + longest + cfg.eoi + cfg.shutdown + u64::from(entry.tail_cycles);
            if r.tls_cycles < floor {
                return Err(fail(
                    "hydra",
                    format!(
                        "entry {i} of {:?}: tls_cycles {} below the longest-thread floor {floor}",
                        entry.loop_id, r.tls_cycles
                    ),
                ));
            }
        }
        if r.violations == 0 {
            let huge = TlsConfig {
                violation_restart: 1_000_000,
                ..cfg
            };
            let r2 = simulate_entry(entry, &huge);
            if r2 != r {
                return Err(fail(
                    "hydra",
                    format!(
                        "entry {i} of {:?}: zero violations, yet the restart penalty changed \
                         the result ({r:?} vs {r2:?})",
                        entry.loop_id
                    ),
                ));
            }
        }
    }
    Ok(coll.entries.len())
}

/// `run_pipeline` must agree with itself across bus modes.
fn check_pipeline(program: &Program) -> Result<(), Failure> {
    let serial = run_pipeline(program, &PipelineConfig::default())
        .map_err(|e| fail("pipeline", format!("serial pipeline failed: {e}")))?;
    let threaded_cfg = PipelineConfig {
        bus: BusConfig {
            threaded: true,
            ..BusConfig::default()
        },
        ..PipelineConfig::default()
    };
    let threaded = run_pipeline(program, &threaded_cfg)
        .map_err(|e| fail("pipeline", format!("threaded pipeline failed: {e}")))?;
    if serial.seq_cycles != threaded.seq_cycles
        || serial.profile_cycles != threaded.profile_cycles
        || serial.profile != threaded.profile
        || format!("{:?}", serial.selection) != format!("{:?}", threaded.selection)
        || format!("{:?}", serial.actual) != format!("{:?}", threaded.actual)
    {
        return Err(fail(
            "pipeline",
            format!(
                "serial-bus and threaded-bus pipeline reports diverged{}{}",
                sink_diag("serial", &serial.obs.bus),
                sink_diag("threaded", &threaded.obs.bus)
            ),
        ));
    }

    // the profiling server must answer with the batch pipeline's exact
    // report — served through a worker pool, but never re-modelled
    let server = Server::start(ServerConfig {
        workers: 2,
        queue_depth: 2,
        ..ServerConfig::default()
    });
    let resp = server
        .profile(ProfileRequest::Pipeline {
            program: program.clone(),
            cfg: PipelineConfig::default(),
        })
        .map_err(|e| fail("serve", format!("server request failed: {e}")))?;
    let served = resp
        .report()
        .ok_or_else(|| fail("serve", "pipeline request answered without a report"))?;
    if serial.seq_cycles != served.seq_cycles
        || serial.profile_cycles != served.profile_cycles
        || serial.profile != served.profile
        || format!("{:?}", serial.selection) != format!("{:?}", served.selection)
        || format!("{:?}", serial.actual) != format!("{:?}", served.actual)
    {
        return Err(fail(
            "serve",
            format!(
                "server-answered pipeline report diverged from the batch run{}{}",
                sink_diag("batch", &serial.obs.bus),
                sink_diag("served", &served.obs.bus)
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_quick_seed_range_is_green() {
        for seed in 0..25 {
            if let Err(f) = check_seed(seed) {
                panic!("seed {seed}: {f}");
            }
        }
    }
}
