//! A tiny, dependency-free, seeded PRNG (SplitMix64).
//!
//! The whole harness must be deterministic from a single `u64` seed so
//! a CI failure reproduces with `cargo run -p fuzzgen -- --seeds N..N+1`.
//! SplitMix64 is the standard seeding generator from Steele et al.'s
//! "Fast splittable pseudorandom number generators" and passes BigCrush
//! for this use.

/// Deterministic SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator whose stream is a pure function of `seed`.
    pub fn new(seed: u64) -> Rng {
        Rng {
            // decorrelate small consecutive seeds before the first output
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform value in `lo..=hi`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A uniformly chosen element of `xs`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn nearby_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn range_is_inclusive() {
        let mut r = Rng::new(9);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let v = r.range(-2, 2);
            assert!((-2..=2).contains(&v));
            saw_lo |= v == -2;
            saw_hi |= v == 2;
        }
        assert!(saw_lo && saw_hi);
    }
}
