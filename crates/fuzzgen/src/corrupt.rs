//! Byte-level corruption sweep for the recording wire format.
//!
//! [`Recording::from_bytes`] is a parser for untrusted input: whatever
//! the bytes are, it must return `Ok` or a typed
//! [`tvm::record::RecordingError`] — never panic, never allocate
//! proportionally to a length field it has not validated. This module
//! drives that contract with exhaustive truncations, exhaustive
//! single-byte bit flips, and seeded random multi-byte mutations.
//! [`mmap_sweep`] replays a focused subset through the file-backed
//! zero-copy path ([`MappedRecording`]) and additionally requires the
//! two parsers to agree on every input.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::Rng;
use tvm::record::{MappedRecording, Recording};

/// Outcome counters of a [`corruption_sweep`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CorruptStats {
    /// Mutations attempted.
    pub attempts: u64,
    /// Mutations that still parsed successfully.
    pub parsed: u64,
    /// Mutations rejected with a typed error.
    pub rejected: u64,
}

/// XOR patterns for the single-byte flip pass: all bits, the sign/high
/// bit (varint continuation), and the low bit (zigzag sign).
const FLIPS: [u8; 3] = [0xFF, 0x80, 0x01];

/// Runs the full corruption sweep over `bytes`.
///
/// Passes, in order: every truncation length `0..len`; every
/// single-byte XOR with each of three flip patterns; `random_rounds`
/// seeded mutations that flip up to 8 random bytes and then truncate or
/// duplicate-splice a random range.
///
/// # Errors
///
/// A description of the first mutation whose parse *panicked* (the one
/// outcome the contract forbids).
pub fn corruption_sweep(
    bytes: &[u8],
    seed: u64,
    random_rounds: u64,
) -> Result<CorruptStats, String> {
    let mut stats = CorruptStats::default();
    for cut in 0..bytes.len() {
        try_parse(
            &bytes[..cut],
            &format!("truncate to {cut} bytes"),
            &mut stats,
        )?;
    }
    for i in 0..bytes.len() {
        for flip in FLIPS {
            let mut m = bytes.to_vec();
            m[i] ^= flip;
            try_parse(&m, &format!("byte {i} ^= {flip:#04x}"), &mut stats)?;
        }
    }
    let mut r = Rng::new(seed);
    for round in 0..random_rounds {
        let mut m = bytes.to_vec();
        for _ in 0..=r.below(8) {
            if m.is_empty() {
                break;
            }
            let i = r.below(m.len() as u64) as usize;
            m[i] ^= r.next_u64() as u8;
        }
        if !m.is_empty() && r.chance(1, 2) {
            let a = r.below(m.len() as u64) as usize;
            let b = r.below(m.len() as u64) as usize;
            let (lo, hi) = (a.min(b), a.max(b));
            if r.chance(1, 2) {
                m.truncate(hi);
            } else {
                let splice: Vec<u8> = m[lo..hi].to_vec();
                m.extend_from_slice(&splice);
            }
        }
        try_parse(
            &m,
            &format!("random mutation round {round} (seed {seed})"),
            &mut stats,
        )?;
    }
    Ok(stats)
}

/// File-backed corruption sweep for the zero-copy load path.
///
/// [`MappedRecording::open`] + [`tvm::record::RecordingView`] parse the same wire
/// format as [`Recording::from_bytes`], but from an mmapped file the
/// kernel can hand over in any length — so header trust bugs surface
/// here first. Each mutation is written to a scratch file, mapped, and
/// fully decoded; the mapped outcome must agree with the in-memory
/// parser byte for byte: both reject, or both parse the same events.
///
/// The mutation set is deliberately smaller than [`corruption_sweep`]'s
/// (every round costs a file write + mmap): every header-boundary
/// truncation (magic, version, and the count varint live in the first
/// 16 bytes), every tail truncation over the last 8 bytes, all three
/// flip patterns over the header region, and `random_rounds` seeded
/// whole-stream mutations.
///
/// # Errors
///
/// A description of the first mutation whose mapped parse panicked or
/// disagreed with `Recording::from_bytes`.
pub fn mmap_sweep(bytes: &[u8], seed: u64, random_rounds: u64) -> Result<CorruptStats, String> {
    let path = std::env::temp_dir().join(format!(
        "fuzzgen-mmap-sweep-{}-{seed:x}.tvmr",
        std::process::id()
    ));
    let mut stats = CorruptStats::default();
    let run = |m: &[u8], what: &str, stats: &mut CorruptStats| -> Result<(), String> {
        let r = try_mapped(&path, m, what, stats);
        let _ = std::fs::remove_file(&path);
        r
    };
    let header = bytes.len().min(16);
    for cut in 0..=header {
        run(
            &bytes[..cut],
            &format!("header truncate to {cut} bytes"),
            &mut stats,
        )?;
    }
    for cut in bytes.len().saturating_sub(8)..bytes.len() {
        run(
            &bytes[..cut],
            &format!("tail truncate to {cut} bytes"),
            &mut stats,
        )?;
    }
    for i in 0..header {
        for flip in FLIPS {
            let mut m = bytes.to_vec();
            m[i] ^= flip;
            run(&m, &format!("header byte {i} ^= {flip:#04x}"), &mut stats)?;
        }
    }
    let mut r = Rng::new(seed);
    for round in 0..random_rounds {
        let mut m = bytes.to_vec();
        for _ in 0..=r.below(8) {
            if m.is_empty() {
                break;
            }
            let i = r.below(m.len() as u64) as usize;
            m[i] ^= r.next_u64() as u8;
        }
        run(
            &m,
            &format!("random mmap mutation round {round} (seed {seed})"),
            &mut stats,
        )?;
    }
    Ok(stats)
}

/// One mmap-path parse attempt, checked against the in-memory parser.
fn try_mapped(
    path: &std::path::Path,
    bytes: &[u8],
    what: &str,
    stats: &mut CorruptStats,
) -> Result<(), String> {
    stats.attempts += 1;
    std::fs::write(path, bytes).map_err(|e| format!("cannot write scratch file: {e}"))?;
    let mapped = catch_unwind(AssertUnwindSafe(|| {
        MappedRecording::open(path).and_then(|m| m.view().and_then(|v| v.to_recording()))
    }));
    let mapped = match mapped {
        Ok(r) => r,
        Err(payload) => {
            return Err(format!(
                "mmap load path PANICKED on corrupt input ({what}): {}",
                panic_message(&payload)
            ))
        }
    };
    match (Recording::from_bytes(bytes), mapped) {
        (Ok(a), Ok(b)) => {
            if a != b {
                return Err(format!(
                    "mmap path decoded different events than from_bytes ({what})"
                ));
            }
            stats.parsed += 1;
        }
        (Err(_), Err(_)) => stats.rejected += 1,
        (Ok(_), Err(e)) => {
            return Err(format!(
                "from_bytes accepts but the mmap path rejects ({what}): {e}"
            ))
        }
        (Err(e), Ok(_)) => {
            return Err(format!(
                "the mmap path accepts what from_bytes rejects ({what}): {e}"
            ))
        }
    }
    Ok(())
}

fn try_parse(bytes: &[u8], what: &str, stats: &mut CorruptStats) -> Result<(), String> {
    stats.attempts += 1;
    match catch_unwind(AssertUnwindSafe(|| Recording::from_bytes(bytes))) {
        Ok(Ok(_)) => {
            stats.parsed += 1;
            Ok(())
        }
        Ok(Err(_)) => {
            stats.rejected += 1;
            Ok(())
        }
        Err(payload) => Err(format!(
            "Recording::from_bytes PANICKED on corrupt input ({what}): {}",
            panic_message(&payload)
        )),
    }
}

/// Best-effort extraction of a panic payload's message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string panic payload>".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_over_a_tiny_recording_never_panics() {
        use tvm::record::RecordingSink;
        use tvm::{FuncId, Pc, TraceSink};
        let pc = |idx| Pc {
            func: FuncId(0),
            idx,
        };
        let mut sink = RecordingSink::default();
        sink.heap_load(64, 10, pc(0));
        sink.heap_store(96, 20, pc(1));
        sink.loop_enter(tvm::LoopId(0), 0, 2, 30);
        sink.loop_exit(tvm::LoopId(0), 40);
        let bytes = sink.into_recording().to_bytes();
        let stats = corruption_sweep(&bytes, 99, 200).expect("no panics");
        assert_eq!(
            stats.attempts,
            bytes.len() as u64 + bytes.len() as u64 * 3 + 200
        );
        assert!(stats.rejected > 0, "some mutations must be rejected");
    }

    #[test]
    fn mmap_sweep_over_a_tiny_recording_agrees_with_from_bytes() {
        use tvm::record::RecordingSink;
        use tvm::{FuncId, Pc, TraceSink};
        let pc = |idx| Pc {
            func: FuncId(0),
            idx,
        };
        let mut sink = RecordingSink::default();
        sink.heap_load(64, 10, pc(0));
        sink.heap_store(96, 20, pc(1));
        sink.loop_enter(tvm::LoopId(0), 0, 2, 30);
        sink.loop_exit(tvm::LoopId(0), 40);
        let bytes = sink.into_recording().to_bytes();
        let stats = mmap_sweep(&bytes, 7, 50).expect("no panics, parsers agree");
        assert!(stats.parsed > 0, "the pristine prefix set must parse");
        assert!(stats.rejected > 0, "header corruption must be rejected");
    }
}
