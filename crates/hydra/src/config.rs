//! Hydra TLS machine parameters (paper Tables 1 and 2).

/// Hydra's thread-level speculation configuration.
///
/// Defaults reproduce the paper exactly:
///
/// * Table 1 — per-thread load buffer 16 kB (512 × 32 B lines, 4-way)
///   and store buffer 2 kB (64 lines, fully associative);
/// * Table 2 — loop startup/shutdown 25 cycles, end-of-iteration 5,
///   violation restart 5, store→load communication 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlsConfig {
    /// CPUs on the die.
    pub processors: u32,
    /// Loop startup overhead (cycles, once per loop entry).
    pub startup: u64,
    /// Loop shutdown overhead (cycles, once per loop entry).
    pub shutdown: u64,
    /// End-of-iteration overhead (cycles, per thread).
    pub eoi: u64,
    /// Violation-and-restart penalty (cycles, per restart).
    pub violation_restart: u64,
    /// Store→load communication delay (cycles).
    pub comm_delay: u64,
    /// Speculative load state limit (L1 lines per thread).
    pub ld_line_limit: u32,
    /// Store buffer limit (lines per thread).
    pub st_line_limit: u32,
    /// Associativity of the speculative load state (Table 1: the L1
    /// tags are 4-way). The tracer's overflow analysis deliberately
    /// ignores associativity (§5.3), so conflict-heavy access patterns
    /// can overflow here without TEST predicting it.
    pub ld_associativity: u32,
    /// Insert synchronization for dependencies that have violated:
    /// after an address causes a restart, later threads *wait* for its
    /// producer instead of violating again. This models the
    /// violation-reducing synchronization the Jrpm compiler inserts
    /// (paper §3.2, §6.3, and its citations \[10\]\[22\]\[30\]). Disable for
    /// the ablation that shows raw violation cost.
    pub sync_after_violation: bool,
}

impl Default for TlsConfig {
    fn default() -> Self {
        TlsConfig {
            processors: 4,
            startup: 25,
            shutdown: 25,
            eoi: 5,
            violation_restart: 5,
            comm_delay: 10,
            ld_line_limit: 512,
            st_line_limit: 64,
            ld_associativity: 4,
            sync_after_violation: true,
        }
    }
}

impl TlsConfig {
    /// The estimator parameters (Equation 1) consistent with this
    /// machine. TEST's prediction and the simulator's "actual" must
    /// agree on these constants for Figure 11 to be meaningful.
    pub fn estimator_params(&self) -> test_tracer::EstimatorParams {
        test_tracer::EstimatorParams {
            processors: self.processors,
            startup_overhead: self.startup,
            shutdown_overhead: self.shutdown,
            eoi_overhead: self.eoi,
            comm_delay: self.comm_delay,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_tables_1_and_2() {
        let c = TlsConfig::default();
        assert_eq!(c.processors, 4);
        assert_eq!(c.startup, 25);
        assert_eq!(c.shutdown, 25);
        assert_eq!(c.eoi, 5);
        assert_eq!(c.violation_restart, 5);
        assert_eq!(c.comm_delay, 10);
        assert_eq!(u64::from(c.ld_line_limit) * 32, 16 * 1024);
        assert_eq!(u64::from(c.st_line_limit) * 32, 2 * 1024);
    }

    #[test]
    fn estimator_params_are_consistent() {
        let c = TlsConfig::default();
        let e = c.estimator_params();
        assert_eq!(e.processors, c.processors);
        assert_eq!(e.startup_overhead, c.startup);
        assert_eq!(e.eoi_overhead, c.eoi);
        assert_eq!(e.comm_delay, c.comm_delay);
    }
}
