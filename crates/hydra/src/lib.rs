//! # hydra-sim — trace-driven thread-level speculation simulator
//!
//! Models speculative execution of selected speculative thread loops
//! (STLs) on the Hydra chip-multiprocessor of *TEST: A Tracer for
//! Extracting Speculative Threads* (CGO 2003, §3.1): four single-issue
//! CPUs, per-thread speculative load state in the L1 (512 lines) and
//! store buffers (64 lines, Table 1), and the speculative-thread
//! overheads of Table 2.
//!
//! The simulator is trace-driven: [`collect::TlsTraceCollector`]
//! records, per iteration of a selected loop, the cycle size and the
//! word-granular memory accesses (including *globalized* local
//! variables the speculative compiler must communicate through
//! memory). [`sim::simulate_entry`] then solves the speculative
//! schedule:
//!
//! * threads dispatch in order onto the 4 CPUs;
//! * a RAW violation occurs when a producing store becomes visible
//!   (store time + forwarding delay) *after* a later thread already
//!   performed the load — the violated thread restarts from scratch,
//!   5 cycles after the violating store arrives;
//! * a thread whose speculative state exceeds the Table 1 buffers
//!   stalls at the overflow point until it becomes the head thread;
//! * commits are in order; startup/shutdown/end-of-iteration overheads
//!   are charged as in Table 2.
//!
//! This is the "actual" speculative execution of the paper's Figure 11
//! against which TEST's predictions are compared.

pub mod collect;
pub mod config;
pub mod sim;

pub use collect::{Access, AccessKind, EntryTrace, IterTrace, TlsTraceCollector};
pub use config::TlsConfig;
pub use sim::{simulate_all, simulate_entry, TlsSimResult};
