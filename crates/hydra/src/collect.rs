//! Collection of per-iteration execution traces for selected STLs.
//!
//! After TEST selects decompositions, Jrpm recompiles them into
//! speculative threads. Our equivalent runs the program once more with
//! instrumentation on *only the selected loops* (the boundary markers
//! and communicated-local annotations the real speculative code
//! contains anyway) and records, per loop entry, each iteration's cycle
//! size and memory accesses. [`crate::sim`] replays those traces under
//! the TLS execution model.
//!
//! Local variables the speculative compiler *globalizes* (the
//! `lwl`/`swl`-annotated ones) are recorded as accesses to synthetic
//! per-variable addresses — in real Hydra they really do become memory
//! traffic through the speculative buffers.

use std::collections::{BTreeMap, BTreeSet};
use tvm::isa::{LoopId, Pc};
use tvm::trace::{Addr, Cycles, TraceSink};
use tvm::LINE_BYTES;

/// Kind of a recorded access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Load,
    /// A store.
    Store,
}

/// One recorded memory access within an iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Cycles since the iteration started.
    pub rel: u32,
    /// Byte address (synthetic for globalized locals).
    pub addr: Addr,
    /// Load or store.
    pub kind: AccessKind,
}

/// One speculative thread (= one loop iteration).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IterTrace {
    /// Sequential execution cycles of this iteration.
    pub cycles: u32,
    /// Accesses in execution order.
    pub accesses: Vec<Access>,
}

/// One dynamic entry of a selected loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryTrace {
    /// Which loop.
    pub loop_id: LoopId,
    /// Cycle at which the loop was entered.
    pub start: Cycles,
    /// The iterations, in order.
    pub iters: Vec<IterTrace>,
    /// Cycles spent after the last complete iteration (the exit
    /// fragment); executed serially at loop shutdown.
    pub tail_cycles: u32,
    /// Total sequential cycles of the entry (exit − enter).
    pub seq_cycles: u64,
}

/// Base of the synthetic address range used for globalized locals.
/// Each variable gets its own cache line, far above any heap address a
/// benchmark reaches.
pub const GLOBALIZED_LOCAL_BASE: Addr = 0xF800_0000;

/// Synthetic address of globalized local `var`.
pub fn globalized_local_addr(var: u16) -> Addr {
    GLOBALIZED_LOCAL_BASE + u32::from(var) * LINE_BYTES
}

struct ActiveEntry {
    loop_id: LoopId,
    entry_start: Cycles,
    iter_start: Cycles,
    iters: Vec<IterTrace>,
    current: IterTrace,
    /// nesting depth of non-target loops inside the target
    depth: u32,
}

/// A [`TraceSink`] that records [`EntryTrace`]s for a set of target
/// loops. Targets must be non-nested (which Equation 2 selection
/// guarantees); a nested target entry while another target is active
/// is treated as ordinary nested work.
#[derive(Default)]
pub struct TlsTraceCollector {
    targets: BTreeSet<LoopId>,
    /// Per-loop tracked-variable slot masks: the speculative compiler
    /// only globalizes a loop's own tracked locals (inductors and
    /// reductions of the loop are privatized/transformed instead).
    local_masks: BTreeMap<LoopId, u64>,
    active: Option<ActiveEntry>,
    /// Completed entries, in observation order.
    pub entries: Vec<EntryTrace>,
}

impl std::fmt::Debug for TlsTraceCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TlsTraceCollector")
            .field("targets", &self.targets)
            .field("entries", &self.entries.len())
            .field("active", &self.active.is_some())
            .finish()
    }
}

impl TlsTraceCollector {
    /// Creates a collector for the given selected loops.
    pub fn new(targets: impl IntoIterator<Item = LoopId>) -> Self {
        TlsTraceCollector {
            targets: targets.into_iter().collect(),
            local_masks: BTreeMap::new(),
            active: None,
            entries: Vec::new(),
        }
    }

    /// Installs per-loop tracked-variable slot masks. A local access
    /// is recorded as globalized memory traffic only when its slot is
    /// in the active loop's mask.
    pub fn set_local_masks(&mut self, masks: impl IntoIterator<Item = (LoopId, u64)>) {
        self.local_masks.extend(masks);
    }

    /// Creates a collector with slot masks already installed.
    pub fn with_masks(
        targets: impl IntoIterator<Item = LoopId>,
        masks: impl IntoIterator<Item = (LoopId, u64)>,
    ) -> Self {
        let mut c = TlsTraceCollector::new(targets);
        c.set_local_masks(masks);
        c
    }

    fn local_in_mask(&self, var: u16) -> bool {
        let Some(a) = self.active.as_ref() else {
            return false;
        };
        let mask = self
            .local_masks
            .get(&a.loop_id)
            .copied()
            .unwrap_or(u64::MAX);
        var < 64 && mask & (1u64 << var) != 0
    }

    fn record(&mut self, addr: Addr, kind: AccessKind, now: Cycles) {
        if let Some(a) = self.active.as_mut() {
            a.current.accesses.push(Access {
                rel: now.saturating_sub(a.iter_start) as u32,
                addr,
                kind,
            });
        }
    }
}

impl TraceSink for TlsTraceCollector {
    fn heap_load(&mut self, addr: Addr, now: Cycles, _pc: Pc) {
        self.record(addr, AccessKind::Load, now);
    }

    fn heap_store(&mut self, addr: Addr, now: Cycles, _pc: Pc) {
        self.record(addr, AccessKind::Store, now);
    }

    fn local_load(&mut self, var: u16, _activation: u32, now: Cycles, _pc: Pc) {
        if self.local_in_mask(var) {
            self.record(globalized_local_addr(var), AccessKind::Load, now);
        }
    }

    fn local_store(&mut self, var: u16, _activation: u32, now: Cycles, _pc: Pc) {
        if self.local_in_mask(var) {
            self.record(globalized_local_addr(var), AccessKind::Store, now);
        }
    }

    fn loop_enter(&mut self, loop_id: LoopId, _n_locals: u16, _activation: u32, now: Cycles) {
        match self.active.as_mut() {
            Some(a) => a.depth += 1,
            None if self.targets.contains(&loop_id) => {
                self.active = Some(ActiveEntry {
                    loop_id,
                    entry_start: now,
                    iter_start: now,
                    iters: Vec::new(),
                    current: IterTrace::default(),
                    depth: 0,
                });
            }
            None => {}
        }
    }

    fn loop_iter(&mut self, loop_id: LoopId, now: Cycles) {
        if let Some(a) = self.active.as_mut() {
            if a.depth == 0 && a.loop_id == loop_id {
                let mut iter = std::mem::take(&mut a.current);
                iter.cycles = now.saturating_sub(a.iter_start) as u32;
                a.iters.push(iter);
                a.iter_start = now;
            }
        }
    }

    fn loop_exit(&mut self, loop_id: LoopId, now: Cycles) {
        let Some(a) = self.active.as_mut() else {
            return;
        };
        if a.depth > 0 {
            a.depth -= 1;
            return;
        }
        if a.loop_id != loop_id {
            return;
        }
        let a = self.active.take().expect("checked above");
        self.entries.push(EntryTrace {
            loop_id: a.loop_id,
            start: a.entry_start,
            iters: a.iters,
            tail_cycles: now.saturating_sub(a.iter_start) as u32,
            seq_cycles: now.saturating_sub(a.entry_start),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::isa::FuncId;

    const L0: LoopId = LoopId(0);
    const L1: LoopId = LoopId(1);

    fn pc() -> Pc {
        Pc {
            func: FuncId(0),
            idx: 0,
        }
    }

    #[test]
    fn collects_iterations_with_relative_times() {
        let mut c = TlsTraceCollector::new([L0]);
        c.loop_enter(L0, 0, 0, 100);
        c.heap_load(0x40, 110, pc());
        c.loop_iter(L0, 120);
        c.heap_store(0x40, 135, pc());
        c.loop_iter(L0, 140);
        c.loop_exit(L0, 145);
        assert_eq!(c.entries.len(), 1);
        let e = &c.entries[0];
        assert_eq!(e.loop_id, L0);
        assert_eq!(e.iters.len(), 2);
        assert_eq!(e.iters[0].cycles, 20);
        assert_eq!(e.iters[0].accesses[0].rel, 10);
        assert_eq!(e.iters[1].accesses[0].kind, AccessKind::Store);
        assert_eq!(e.iters[1].accesses[0].rel, 15);
        assert_eq!(e.tail_cycles, 5);
        assert_eq!(e.seq_cycles, 45);
    }

    #[test]
    fn nested_non_target_loops_fold_into_the_iteration() {
        let mut c = TlsTraceCollector::new([L0]);
        c.loop_enter(L0, 0, 0, 0);
        c.loop_enter(L1, 0, 0, 5); // inner, not a target
        c.heap_load(0x40, 8, pc());
        c.loop_iter(L1, 10); // inner eoi: ignored
        c.loop_exit(L1, 12);
        c.loop_iter(L0, 20);
        c.loop_exit(L0, 22);
        let e = &c.entries[0];
        assert_eq!(e.iters.len(), 1);
        assert_eq!(e.iters[0].accesses.len(), 1);
    }

    #[test]
    fn non_target_loops_alone_record_nothing() {
        let mut c = TlsTraceCollector::new([L0]);
        c.loop_enter(L1, 0, 0, 0);
        c.heap_load(0x40, 5, pc());
        c.loop_iter(L1, 10);
        c.loop_exit(L1, 12);
        assert!(c.entries.is_empty());
    }

    #[test]
    fn globalized_locals_get_distinct_lines() {
        let a = globalized_local_addr(0);
        let b = globalized_local_addr(1);
        assert_ne!(a / LINE_BYTES, b / LINE_BYTES);
        let mut c = TlsTraceCollector::new([L0]);
        c.loop_enter(L0, 2, 0, 0);
        c.local_store(1, 0, 5, pc());
        c.loop_iter(L0, 10);
        c.loop_exit(L0, 12);
        assert_eq!(c.entries[0].iters[0].accesses[0].addr, b);
    }

    #[test]
    fn multiple_entries_are_separate() {
        let mut c = TlsTraceCollector::new([L0]);
        for base in [0u64, 100] {
            c.loop_enter(L0, 0, 0, base);
            c.loop_iter(L0, base + 10);
            c.loop_exit(L0, base + 12);
        }
        assert_eq!(c.entries.len(), 2);
        assert_eq!(c.entries[1].start, 100);
    }

    #[test]
    fn replayed_streams_collect_identical_traces() {
        use tvm::record::{Event, Recording};

        let recording = Recording {
            events: vec![
                Event::LoopEnter(L0, 2, 0, 100),
                Event::HeapLoad(0x40, 110, pc()),
                Event::LocalStore(1, 0, 112, pc()),
                Event::LoopIter(L0, 120),
                Event::LoopEnter(L1, 0, 1, 122),
                Event::HeapStore(0x60, 130, pc()),
                Event::LoopIter(L1, 132),
                Event::LoopExit(L1, 134),
                Event::LoopIter(L0, 140),
                Event::LoopExit(L0, 145),
            ],
        };

        let mut direct = TlsTraceCollector::with_masks([L0], [(L0, 0b10)]);
        recording.replay(&mut direct);

        // batched replay through the bus representation must agree
        for cap in [1usize, 3, 64] {
            let mut batched = TlsTraceCollector::with_masks([L0], [(L0, 0b10)]);
            for b in recording.to_batches(cap) {
                b.replay_into(&mut batched);
            }
            assert_eq!(batched.entries, direct.entries, "capacity {cap}");
        }
        assert_eq!(direct.entries.len(), 1);
        assert_eq!(direct.entries[0].iters.len(), 2);
    }
}
