//! The speculative schedule solver.
//!
//! Given an [`EntryTrace`], computes how long the entry takes when its
//! iterations run as speculative threads on Hydra. The solver assigns
//! threads to CPUs in order and, for each thread, finds the smallest
//! start time consistent with the violation rule: any load whose
//! producing store (from an earlier uncommitted thread) becomes visible
//! *after* the load executed forces a restart at the store's arrival
//! plus the restart penalty. Because restarts only push start times
//! later and producers are already settled when a thread is processed,
//! a simple per-thread fixpoint converges.

use crate::collect::{Access, AccessKind, EntryTrace};
use crate::config::TlsConfig;
use std::collections::{HashMap, HashSet};

use tvm::line_of;
use tvm::trace::Addr;

/// The outcome of speculatively executing one loop entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlsSimResult {
    /// Total cycles for the entry (startup to shutdown, including the
    /// serial tail fragment).
    pub tls_cycles: u64,
    /// Threads executed.
    pub threads: u64,
    /// Violation restarts that occurred.
    pub violations: u64,
    /// Threads that overflowed speculative buffers and stalled.
    pub overflows: u64,
}

/// All stores to one address, in sequential program order
/// (thread-major). `(thread, rel)` pairs; the vector is naturally
/// sorted because threads are scanned in order.
type StoreIndex = HashMap<Addr, Vec<(u32, u32)>>;

fn build_store_index(entry: &EntryTrace) -> StoreIndex {
    let mut idx: StoreIndex = HashMap::new();
    for (t, iter) in entry.iters.iter().enumerate() {
        for a in &iter.accesses {
            if a.kind == AccessKind::Store {
                idx.entry(a.addr).or_default().push((t as u32, a.rel));
            }
        }
    }
    idx
}

/// The producing store for a load at `(thread, rel)`: the last store
/// to `addr` that precedes it in sequential order. Returns `None` when
/// there is no producer in this entry or the producer is the thread's
/// own earlier store (which the load reads from its own buffer).
fn producer(idx: &StoreIndex, addr: Addr, thread: u32, rel: u32) -> Option<(u32, u32)> {
    let stores = idx.get(&addr)?;
    // last store with (t, r) sequentially before (thread, rel)
    let pos = stores.partition_point(|&(t, r)| t < thread || (t == thread && r <= rel));
    if pos == 0 {
        return None;
    }
    let (t, r) = stores[pos - 1];
    if t == thread {
        None // own store: forwarded from the local store buffer
    } else {
        Some((t, r))
    }
}

/// Relative cycle at which this thread's speculative state first
/// exceeds the buffer limits, if it ever does.
///
/// The load state lives in the set-associative L1 tags (Table 1:
/// 4-way), so a single set can overflow with far fewer than 512
/// distinct lines; the store buffer is fully associative.
fn overflow_point(accesses: &[Access], cfg: &TlsConfig) -> Option<u32> {
    let n_sets = (cfg.ld_line_limit / cfg.ld_associativity.max(1)).max(1);
    let mut ld_sets: HashMap<u32, HashSet<u32>> = HashMap::new();
    let mut st: HashSet<u32> = HashSet::new();
    for a in accesses {
        let line = line_of(a.addr);
        match a.kind {
            AccessKind::Load => {
                let set = ld_sets.entry(line % n_sets).or_default();
                set.insert(line);
                if set.len() > cfg.ld_associativity as usize {
                    return Some(a.rel);
                }
            }
            AccessKind::Store => {
                st.insert(line);
                if st.len() > cfg.st_line_limit as usize {
                    return Some(a.rel);
                }
            }
        }
    }
    None
}

/// Simulates one loop entry under TLS.
///
/// ```
/// use hydra_sim::{simulate_entry, EntryTrace, IterTrace, TlsConfig};
/// use tvm::isa::LoopId;
///
/// // four independent 1000-cycle iterations fill the four CPUs
/// let entry = EntryTrace {
///     loop_id: LoopId(0),
///     start: 0,
///     iters: (0..4).map(|_| IterTrace { cycles: 1000, accesses: vec![] }).collect(),
///     tail_cycles: 0,
///     seq_cycles: 4000,
/// };
/// let r = simulate_entry(&entry, &TlsConfig::default());
/// assert_eq!(r.tls_cycles, 25 + 1000 + 5 + 25); // startup+thread+eoi+shutdown
/// ```
pub fn simulate_entry(entry: &EntryTrace, cfg: &TlsConfig) -> TlsSimResult {
    let n = entry.iters.len();
    if n == 0 {
        return TlsSimResult {
            tls_cycles: cfg.startup + cfg.shutdown + u64::from(entry.tail_cycles),
            threads: 0,
            violations: 0,
            overflows: 0,
        };
    }

    let idx = build_store_index(entry);
    let p = cfg.processors as usize;
    let mut cpu_free = vec![cfg.startup; p];
    let mut starts: Vec<u64> = Vec::with_capacity(n);
    let mut commit_prev: u64 = cfg.startup;
    let mut violations = 0u64;
    let mut overflows = 0u64;
    // addresses whose dependencies have been synchronized after a
    // violation: later consumers wait instead of restarting
    let mut synced: HashSet<Addr> = HashSet::new();

    for (t, iter) in entry.iters.iter().enumerate() {
        let cpu = t % p;
        let mut start = cpu_free[cpu];

        // violation fixpoint: synced addresses delay the start (the
        // inserted lock stalls the consumer); unsynced ones restart
        // the thread and become synced
        loop {
            let mut restart_at: Option<u64> = None;
            let mut wait_until: u64 = start;
            for a in &iter.accesses {
                if a.kind != AccessKind::Load {
                    continue;
                }
                if let Some((pt, pr)) = producer(&idx, a.addr, t as u32, a.rel) {
                    let visible = starts[pt as usize] + u64::from(pr) + cfg.comm_delay;
                    let load_time = start + u64::from(a.rel);
                    if visible > load_time {
                        if cfg.sync_after_violation && synced.contains(&a.addr) {
                            // wait so the load lands after the producer
                            wait_until = wait_until.max(visible.saturating_sub(u64::from(a.rel)));
                        } else {
                            restart_at = Some(restart_at.map_or(visible, |w: u64| w.max(visible)));
                            if cfg.sync_after_violation {
                                synced.insert(a.addr);
                            }
                        }
                    }
                }
            }
            if let Some(v) = restart_at {
                violations += 1;
                start = v + cfg.violation_restart;
            } else if wait_until > start {
                start = wait_until;
            } else {
                break;
            }
        }
        starts.push(start);

        let mut finish = start + u64::from(iter.cycles) + cfg.eoi;
        if let Some(r_ovf) = overflow_point(&iter.accesses, cfg) {
            overflows += 1;
            // stall at the overflow point until this thread is the
            // head (all predecessors committed), then run the rest
            let stalled_resume = commit_prev.max(start + u64::from(r_ovf));
            finish = finish.max(stalled_resume + u64::from(iter.cycles - r_ovf) + cfg.eoi);
        }

        // in-order commit
        let commit = finish.max(commit_prev);
        commit_prev = commit;
        cpu_free[cpu] = commit;
    }

    TlsSimResult {
        tls_cycles: commit_prev + cfg.shutdown + u64::from(entry.tail_cycles),
        threads: n as u64,
        violations,
        overflows,
    }
}

/// Simulates every entry and sums the results.
pub fn simulate_all(entries: &[EntryTrace], cfg: &TlsConfig) -> TlsSimResult {
    let mut total = TlsSimResult::default();
    for e in entries {
        let r = simulate_entry(e, cfg);
        total.tls_cycles += r.tls_cycles;
        total.threads += r.threads;
        total.violations += r.violations;
        total.overflows += r.overflows;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::IterTrace;
    use tvm::isa::LoopId;

    fn entry(iters: Vec<IterTrace>) -> EntryTrace {
        let seq: u64 = iters.iter().map(|i| u64::from(i.cycles)).sum();
        EntryTrace {
            loop_id: LoopId(0),
            start: 0,
            iters,
            tail_cycles: 0,
            seq_cycles: seq,
        }
    }

    fn iter(cycles: u32, accesses: Vec<Access>) -> IterTrace {
        IterTrace { cycles, accesses }
    }

    fn ld(rel: u32, addr: Addr) -> Access {
        Access {
            rel,
            addr,
            kind: AccessKind::Load,
        }
    }

    fn st(rel: u32, addr: Addr) -> Access {
        Access {
            rel,
            addr,
            kind: AccessKind::Store,
        }
    }

    #[test]
    fn independent_threads_approach_4x() {
        let cfg = TlsConfig::default();
        let iters: Vec<_> = (0..400).map(|_| iter(1000, vec![])).collect();
        let e = entry(iters);
        let r = simulate_entry(&e, &cfg);
        let seq = e.seq_cycles as f64;
        let speedup = seq / r.tls_cycles as f64;
        assert_eq!(r.violations, 0);
        assert!(speedup > 3.5, "got {speedup}");
        assert!(speedup <= 4.0);
    }

    #[test]
    fn tight_raw_chain_serializes() {
        // each thread stores at the end and the next loads at the start
        let cfg = TlsConfig::default();
        let iters: Vec<_> = (0..100)
            .map(|_| iter(1000, vec![ld(5, 0x40), st(995, 0x40)]))
            .collect();
        let e = entry(iters);
        let r = simulate_entry(&e, &cfg);
        let speedup = e.seq_cycles as f64 / r.tls_cycles as f64;
        assert!(r.violations > 0);
        assert!(speedup < 1.2, "got {speedup}");
    }

    #[test]
    fn long_arcs_preserve_parallelism() {
        // store early, load late: dependency arc nearly a full thread
        let cfg = TlsConfig::default();
        let iters: Vec<_> = (0..100)
            .map(|_| iter(1000, vec![st(5, 0x40), ld(995, 0x40)]))
            .collect();
        let e = entry(iters);
        let r = simulate_entry(&e, &cfg);
        let speedup = e.seq_cycles as f64 / r.tls_cycles as f64;
        assert!(speedup > 3.0, "got {speedup}");
    }

    #[test]
    fn own_store_forwards_without_violation() {
        let cfg = TlsConfig::default();
        let iters: Vec<_> = (0..10)
            .map(|_| iter(100, vec![st(10, 0x40), ld(20, 0x40)]))
            .collect();
        let e = entry(iters);
        let r = simulate_entry(&e, &cfg);
        // each load reads its own thread's store: a per-thread
        // temporary, no cross-thread dependency at all
        assert_eq!(r.violations, 0);
    }

    #[test]
    fn buffer_overflow_forces_serialization() {
        let cfg = TlsConfig::default();
        // each thread stores 65 distinct lines: exceeds the 64-line
        // store buffer
        let iters: Vec<_> = (0..20)
            .map(|_| {
                let accesses = (0..65).map(|k| st(10 + k, k * 32)).collect();
                iter(1000, accesses)
            })
            .collect();
        let e = entry(iters);
        let r = simulate_entry(&e, &cfg);
        assert_eq!(r.overflows, 20);
        let speedup = e.seq_cycles as f64 / r.tls_cycles as f64;
        assert!(speedup < 1.6, "got {speedup}");
    }

    #[test]
    fn empty_entry_costs_only_overheads() {
        let cfg = TlsConfig::default();
        let mut e = entry(vec![]);
        e.tail_cycles = 7;
        let r = simulate_entry(&e, &cfg);
        assert_eq!(r.tls_cycles, 25 + 25 + 7);
        assert_eq!(r.threads, 0);
    }

    #[test]
    fn few_large_threads_use_few_cpus() {
        let cfg = TlsConfig::default();
        let e = entry(vec![iter(1000, vec![]), iter(1000, vec![])]);
        let r = simulate_entry(&e, &cfg);
        // two threads in parallel: ~half the sequential time
        assert!(r.tls_cycles < 1200);
        assert!(r.tls_cycles >= 1000);
    }

    #[test]
    fn simulate_all_sums() {
        let cfg = TlsConfig::default();
        let e1 = entry(vec![iter(100, vec![])]);
        let e2 = entry(vec![iter(100, vec![]), iter(100, vec![])]);
        let both = simulate_all(&[e1.clone(), e2.clone()], &cfg);
        let r1 = simulate_entry(&e1, &cfg);
        let r2 = simulate_entry(&e2, &cfg);
        assert_eq!(both.tls_cycles, r1.tls_cycles + r2.tls_cycles);
        assert_eq!(both.threads, 3);
    }

    #[test]
    fn producer_tie_at_thread_boundary_picks_earlier_thread() {
        // store in thread 0 and load in thread 1 at the same relative
        // cycle: the earlier thread is sequentially before the load,
        // so it IS the producer
        let e = entry(vec![
            iter(100, vec![st(5, 0x40)]),
            iter(100, vec![ld(5, 0x40)]),
        ]);
        let idx = build_store_index(&e);
        assert_eq!(producer(&idx, 0x40, 1, 5), Some((0, 5)));
    }

    #[test]
    fn producer_same_thread_same_rel_is_own_store() {
        // a store and a load at the identical (thread, rel): the store
        // is "not after" the load, so it forwards from the local buffer
        let e = entry(vec![iter(100, vec![st(5, 0x40), ld(5, 0x40)])]);
        let idx = build_store_index(&e);
        assert_eq!(producer(&idx, 0x40, 0, 5), None);
    }

    #[test]
    fn producer_skips_own_store_but_not_earlier_threads() {
        // thread 1 stores before its own load, but thread 0 also
        // stored: the own store is the *last* sequential store and
        // shadows the cross-thread one (no violation possible)
        let e = entry(vec![
            iter(100, vec![st(50, 0x40)]),
            iter(100, vec![st(10, 0x40), ld(20, 0x40)]),
        ]);
        let idx = build_store_index(&e);
        assert_eq!(producer(&idx, 0x40, 1, 20), None);
        // a load before the own store sees thread 0's store instead
        assert_eq!(producer(&idx, 0x40, 1, 5), Some((0, 50)));
    }

    #[test]
    fn producer_with_no_preceding_store_is_none() {
        let e = entry(vec![
            iter(100, vec![ld(5, 0x40)]),
            iter(100, vec![st(50, 0x40)]),
        ]);
        let idx = build_store_index(&e);
        // thread 0's load precedes every store (pos == 0)
        assert_eq!(producer(&idx, 0x40, 0, 5), None);
        // and an address nobody stores has no index entry at all
        assert_eq!(producer(&idx, 0x80, 1, 99), None);
    }

    #[test]
    fn overflow_point_direct_mapped_conflicts() {
        // associativity 1: two distinct lines landing in the same set
        // overflow immediately even though the total line count is
        // far below the limit
        let cfg = TlsConfig {
            ld_line_limit: 4,
            ld_associativity: 1,
            ..TlsConfig::default()
        };
        // lines 0 and 4 both map to set 0 of the 4 sets
        let accesses = vec![ld(10, 0), ld(20, 4 * 32)];
        assert_eq!(overflow_point(&accesses, &cfg), Some(20));
        // the same two lines in different sets never overflow
        let accesses = vec![ld(10, 0), ld(20, 32)];
        assert_eq!(overflow_point(&accesses, &cfg), None);
    }

    #[test]
    fn overflow_point_limit_below_associativity_is_one_full_set() {
        // a line limit smaller than the associativity degenerates to a
        // single set holding `associativity` lines, not zero capacity
        let cfg = TlsConfig {
            ld_line_limit: 2,
            ld_associativity: 4,
            ..TlsConfig::default()
        };
        let fits: Vec<Access> = (0..4).map(|k| ld(10 + k, k * 32)).collect();
        assert_eq!(overflow_point(&fits, &cfg), None);
        let spills: Vec<Access> = (0..5).map(|k| ld(10 + k, k * 32)).collect();
        assert_eq!(overflow_point(&spills, &cfg), Some(14));
    }

    #[test]
    fn overflow_point_stores_are_fully_associative() {
        // the same conflict pattern that overflows the 4-way load
        // state is fine for stores, which only count distinct lines
        let cfg = TlsConfig::default(); // 128 sets of 4
        let conflicting: Vec<u32> = (0..5).map(|k| k * 128 * 32).collect();
        let loads: Vec<Access> = conflicting
            .iter()
            .enumerate()
            .map(|(i, &a)| ld(i as u32, a))
            .collect();
        assert_eq!(overflow_point(&loads, &cfg), Some(4));
        let stores: Vec<Access> = conflicting
            .iter()
            .enumerate()
            .map(|(i, &a)| st(i as u32, a))
            .collect();
        assert_eq!(overflow_point(&stores, &cfg), None);
        // repeated stores to one line never count twice
        let same_line: Vec<Access> = (0..200).map(|k| st(k, 0x40)).collect();
        assert_eq!(overflow_point(&same_line, &cfg), None);
    }

    #[test]
    fn violation_restart_rereads_correct_data() {
        // thread 1 stores late; thread 2 loads early -> one restart,
        // after which the producer is visible and no further violation
        let cfg = TlsConfig::default();
        let e = entry(vec![
            iter(100, vec![st(90, 0x40)]),
            iter(100, vec![ld(5, 0x40)]),
        ]);
        let r = simulate_entry(&e, &cfg);
        assert_eq!(r.violations, 1);
        // thread 2 restarts at 25(startup)+90+10(comm)+5(restart) = 130
        // finishes at 230 + eoi
        assert!(r.tls_cycles >= 230);
    }
}
