//! Program-level candidate STL extraction (paper §4.1).

use crate::cfg::Cfg;
use crate::dom::Dominators;
use crate::loops::LoopForest;
use crate::memdep::{analyze_loop, classify_loop_pairs_evo};
use crate::pointsto::{PointsTo, SolverStats};
use crate::scalar::{classify, LocalClasses};
use crate::scev;
use std::collections::{BTreeMap, BTreeSet};
use tvm::isa::LoopId;
use tvm::program::{FuncId, Local, Program};

/// The complete static analysis of one function.
#[derive(Debug, Clone)]
pub struct FunctionAnalysis {
    /// The analyzed function.
    pub func: FuncId,
    /// Its control-flow graph.
    pub cfg: Cfg,
    /// Its natural loops.
    pub forest: LoopForest,
    /// Scalar classification of each loop in `forest` (same order).
    pub classes: Vec<LocalClasses>,
    /// Method-level numbering of annotatable locals: `lwl`/`swl`
    /// operands index into this list. Shared across all loops of the
    /// method so that nested reservations alias the same hardware
    /// slots.
    pub tracked_order: Vec<Local>,
}

impl FunctionAnalysis {
    /// The `lwl`/`swl` slot index for `v`, if it is tracked in this
    /// method.
    pub fn tracked_slot(&self, v: Local) -> Option<u16> {
        self.tracked_order
            .iter()
            .position(|&w| w == v)
            .map(|i| i as u16)
    }
}

/// Verdict of the static memory-dependence pre-screen on a candidate.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum StaticVerdict {
    /// No guaranteed cross-iteration RAW found: trace it.
    #[default]
    Clean,
    /// A guaranteed cross-iteration RAW was proven: the loop keeps its
    /// id (annotation filters may still select it explicitly) but the
    /// pipeline skips tracing it by default.
    Demoted {
        /// Why tracing this loop would be wasted effort.
        reason: String,
    },
}

/// One candidate speculative thread loop.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Dense program-wide id, embedded in annotation instructions.
    pub id: LoopId,
    /// Containing function.
    pub func: FuncId,
    /// Index of the loop in that function's [`LoopForest`].
    pub loop_idx: usize,
    /// Static nesting depth (1 = outermost in its method).
    pub depth: u32,
    /// Static height above the innermost loop (innermost = 1).
    pub height: u32,
    /// Nearest enclosing candidate in the same method, if any.
    pub parent: Option<LoopId>,
    /// Result of the static memory-dependence pre-screen.
    pub static_verdict: StaticVerdict,
}

impl Candidate {
    /// True when the pre-screen proved a guaranteed serial dependence.
    pub fn is_demoted(&self) -> bool {
        matches!(self.static_verdict, StaticVerdict::Demoted { .. })
    }
}

/// A loop that was found but rejected as an STL candidate.
#[derive(Debug, Clone)]
pub struct RejectedLoop {
    /// Containing function.
    pub func: FuncId,
    /// Index in the function's loop forest.
    pub loop_idx: usize,
    /// Why it was rejected.
    pub reason: String,
}

/// The result of candidate extraction over a whole program.
#[derive(Debug, Clone, Default)]
pub struct ProgramCandidates {
    /// Per-function analyses, indexed by function id.
    pub functions: Vec<FunctionAnalysis>,
    /// Qualified candidates. `candidates[i].id == LoopId(i)`.
    pub candidates: Vec<Candidate>,
    /// Loops rejected by the scalar screen.
    pub rejected: Vec<RejectedLoop>,
    /// Statistics of the whole-program points-to solve that sharpened
    /// the memory-dependence pre-screen.
    pub pointsto: SolverStats,
}

impl ProgramCandidates {
    /// The candidate with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this extraction.
    pub fn candidate(&self, id: LoopId) -> &Candidate {
        &self.candidates[id.0 as usize]
    }

    /// The candidate with the given id, or `None` for a foreign id —
    /// the non-panicking accessor report code uses on ids that arrive
    /// from a request rather than from this extraction.
    pub fn try_candidate(&self, id: LoopId) -> Option<&Candidate> {
        self.candidates.get(id.0 as usize)
    }

    /// Total number of natural loops discovered (Table 6's "Loop
    /// count" column counts static loops, qualified or not).
    pub fn total_loops(&self) -> usize {
        self.functions.iter().map(|f| f.forest.len()).sum()
    }

    /// Maximum static loop-nest depth across the program.
    pub fn max_static_depth(&self) -> u32 {
        self.functions
            .iter()
            .map(|f| f.forest.max_depth())
            .max()
            .unwrap_or(0)
    }

    /// The per-loop `lwl`/`swl` slot mask: bit `i` is set when method
    /// slot `i` belongs to this loop's own tracked set. The runtime
    /// installs these masks into the tracer's comparator banks so a
    /// bank ignores variables that are privatizable inductors or
    /// reductions *of its own loop* even though an enclosing loop
    /// needs them annotated.
    pub fn tracked_mask(&self, id: LoopId) -> u64 {
        self.tracked_vars(id)
            .into_iter()
            .filter(|(slot, _)| *slot < 64)
            .fold(0u64, |m, (slot, _)| m | (1u64 << slot))
    }

    /// All per-loop slot masks (see [`ProgramCandidates::tracked_mask`]).
    pub fn tracked_masks(&self) -> Vec<(LoopId, u64)> {
        self.candidates
            .iter()
            .map(|c| (c.id, self.tracked_mask(c.id)))
            .collect()
    }

    /// Ids of candidates the static pre-screen demoted.
    pub fn demoted_ids(&self) -> BTreeSet<LoopId> {
        self.candidates
            .iter()
            .filter(|c| c.is_demoted())
            .map(|c| c.id)
            .collect()
    }

    /// Number of demoted candidates.
    pub fn demoted_count(&self) -> usize {
        self.candidates.iter().filter(|c| c.is_demoted()).count()
    }

    /// The tracked locals of candidate `id` (the variables its
    /// annotations cover), in method slot order.
    pub fn tracked_vars(&self, id: LoopId) -> Vec<(u16, Local)> {
        let cand = self.candidate(id);
        let fa = &self.functions[cand.func.0 as usize];
        let tracked = fa.classes[cand.loop_idx].tracked();
        fa.tracked_order
            .iter()
            .enumerate()
            .filter(|(_, v)| tracked.contains(v))
            .map(|(i, &v)| (i as u16, v))
            .collect()
    }
}

/// When the static memory-dependence pre-screen runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Prescreen {
    /// Screen every candidate during extraction — the offline batch
    /// behaviour, where the whole program is analyzed up front.
    #[default]
    Eager,
    /// Skip the per-loop memory-dependence analysis during extraction;
    /// every candidate starts [`StaticVerdict::Clean`] and the caller
    /// screens individual loops on demand with [`prescreen_candidate`]
    /// once they prove hot. The scalar screen (rejection) and nesting
    /// structure are unaffected, so candidate ids are identical in
    /// both modes.
    Deferred,
}

/// Extracts candidate STLs from every function of `program`.
///
/// All natural loops are discovered; loops with an obvious serializing
/// scalar dependency are rejected (with a reason), everything else is
/// optimistically kept for the tracer to judge.
pub fn extract_candidates(program: &Program) -> ProgramCandidates {
    extract_candidates_with(program, Prescreen::Eager)
}

/// Re-runs the static memory-dependence pre-screen for one candidate.
///
/// This is the deferred form of the verdict computed inline by
/// [`extract_candidates`]: the online tier controller calls it when a
/// loop's hot-location counter trips, so cold loops never pay for
/// dependence analysis. The result is identical to the eager verdict —
/// same analysis, same alias view — which is what keeps online and
/// offline demotion sets equal once every hot loop has been screened.
pub fn prescreen_candidate(
    program: &Program,
    fa: &FunctionAnalysis,
    loop_idx: usize,
    view: Option<&crate::pointsto::FnView<'_>>,
) -> StaticVerdict {
    let f = &program.functions[fa.func.0 as usize];
    let dom = Dominators::compute(&fa.cfg);
    let deps = analyze_loop(program, f, &fa.cfg, &dom, &fa.forest.loops[loop_idx], view);
    match deps.first() {
        None => StaticVerdict::Clean,
        Some(d) => StaticVerdict::Demoted { reason: d.reason() },
    }
}

/// The dependence-distance floor scalar evolution proves for one
/// candidate loop, if any.
///
/// Runs the scev analysis over the loop and classifies its access
/// pairs with distance sharpening
/// ([`classify_loop_pairs_evo`]). Every pair whose *signed* distance
/// is positive is a cross-iteration RAW chain: iteration `a` reads
/// what iteration `a - q` wrote, so at most `q` iterations can overlap
/// speculatively. The tightest such chain — the minimum positive `q`
/// over all pairs — bounds the loop's achievable overlap, and
/// selection floors its estimated TLS cycles at `serial / q`.
/// Negative distances (anti-dependences) impose no floor: TLS
/// versioning absorbs a store that lands *after* the load it would
/// disturb. Returns `None` when no positive-distance pair exists.
pub fn distance_floor(
    program: &Program,
    fa: &FunctionAnalysis,
    loop_idx: usize,
    view: Option<&crate::pointsto::FnView<'_>>,
) -> Option<u32> {
    let f = &program.functions[fa.func.0 as usize];
    let dom = Dominators::compute(&fa.cfg);
    let lp = &fa.forest.loops[loop_idx];
    let evo = scev::analyze_loop(program, f, &fa.cfg, lp);
    classify_loop_pairs_evo(program, f, &fa.cfg, &dom, lp, view, &evo)
        .iter()
        .filter_map(|p| p.scev_distance)
        .filter(|&q| q > 0)
        .min()
        .map(|q| u32::try_from(q).unwrap_or(u32::MAX))
}

/// [`distance_floor`] over every non-demoted candidate of the program.
///
/// This is what the offline batch feeds selection
/// (`select_with_distances`); the online tier instead accumulates the
/// same map incrementally via
/// [`prescreen_candidate_with_distance`] and completes it at
/// finalization, so both paths select over identical floors.
pub fn distance_floors(program: &Program, pc: &ProgramCandidates) -> BTreeMap<LoopId, u32> {
    let pt = PointsTo::analyze(program);
    let mut floors = BTreeMap::new();
    for c in &pc.candidates {
        if c.is_demoted() {
            continue;
        }
        let fa = &pc.functions[c.func.0 as usize];
        let view = pt.view(c.func);
        if let Some(d) = distance_floor(program, fa, c.loop_idx, Some(&view)) {
            floors.insert(c.id, d);
        }
    }
    floors
}

/// [`prescreen_candidate`] plus the loop's [`distance_floor`], in one
/// call — the deferred pre-screen the online tier runs when a loop
/// turns hot. A demoted loop never enters selection, so its floor is
/// not computed (`None`).
pub fn prescreen_candidate_with_distance(
    program: &Program,
    fa: &FunctionAnalysis,
    loop_idx: usize,
    view: Option<&crate::pointsto::FnView<'_>>,
) -> (StaticVerdict, Option<u32>) {
    let verdict = prescreen_candidate(program, fa, loop_idx, view);
    let floor = match verdict {
        StaticVerdict::Clean => distance_floor(program, fa, loop_idx, view),
        StaticVerdict::Demoted { .. } => None,
    };
    (verdict, floor)
}

/// [`extract_candidates`] with an explicit pre-screen policy.
pub fn extract_candidates_with(program: &Program, prescreen: Prescreen) -> ProgramCandidates {
    let mut functions = Vec::with_capacity(program.functions.len());
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut rejected = Vec::new();
    let pt = PointsTo::analyze(program);

    for (fi, f) in program.functions.iter().enumerate() {
        let func = FuncId(fi as u16);
        let view = pt.view(func);
        let cfg = Cfg::build(f);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::build(&cfg, &dom);
        let classes: Vec<LocalClasses> = (0..forest.len())
            .map(|li| classify(program, f, &cfg, &dom, &forest, li))
            .collect();

        // method-level tracked numbering: union over all loops
        let mut tracked_set: BTreeSet<Local> = BTreeSet::new();
        for c in &classes {
            tracked_set.extend(c.tracked());
        }
        let tracked_order: Vec<Local> = tracked_set.into_iter().collect();

        // qualify loops, outermost first (forest order)
        let mut loop_to_candidate: Vec<Option<LoopId>> = vec![None; forest.len()];
        for (li, l) in forest.loops.iter().enumerate() {
            let c = &classes[li];
            if c.has_serializing_dependency() {
                let vars: Vec<String> = c.serializing.iter().map(|v| format!("l{}", v.0)).collect();
                rejected.push(RejectedLoop {
                    func,
                    loop_idx: li,
                    reason: format!("serializing scalar dependency on {}", vars.join(", ")),
                });
                continue;
            }
            // nearest enclosing *candidate*
            let mut parent = None;
            let mut up = l.parent;
            while let Some(pi) = up {
                if let Some(pid) = loop_to_candidate[pi] {
                    parent = Some(pid);
                    break;
                }
                up = forest.loops[pi].parent;
            }
            // static memory-dependence pre-screen: a proven
            // cross-iteration RAW means tracing cannot find
            // parallelism, so demote (but keep the id dense)
            let static_verdict = match prescreen {
                Prescreen::Eager => {
                    let deps = analyze_loop(program, f, &cfg, &dom, l, Some(&view));
                    match deps.first() {
                        None => StaticVerdict::Clean,
                        Some(d) => StaticVerdict::Demoted { reason: d.reason() },
                    }
                }
                Prescreen::Deferred => StaticVerdict::Clean,
            };
            let id = LoopId(candidates.len() as u32);
            loop_to_candidate[li] = Some(id);
            candidates.push(Candidate {
                id,
                func,
                loop_idx: li,
                depth: l.depth,
                height: l.height,
                parent,
                static_verdict,
            });
        }

        functions.push(FunctionAnalysis {
            func,
            cfg,
            forest,
            classes,
            tracked_order,
        });
    }

    ProgramCandidates {
        functions,
        candidates,
        rejected,
        pointsto: pt.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::isa::Cond;
    use tvm::ProgramBuilder;

    fn candidates_of(body: impl FnOnce(&mut tvm::FnBuilder)) -> ProgramCandidates {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            body(f);
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        extract_candidates(&p)
    }

    #[test]
    fn simple_loop_is_a_candidate() {
        let c = candidates_of(|f| {
            let (a, i) = (f.local(), f.local());
            f.ci(32).newarray(tvm::ElemKind::Int).st(a);
            f.for_in(i, 0.into(), 32.into(), |f| {
                f.arr_set(
                    a,
                    |f| {
                        f.ld(i);
                    },
                    |f| {
                        f.ld(i);
                    },
                );
            });
        });
        assert_eq!(c.candidates.len(), 1);
        assert_eq!(c.total_loops(), 1);
        assert!(c.rejected.is_empty());
        assert_eq!(c.candidates[0].id, LoopId(0));
        assert_eq!(c.candidates[0].depth, 1);
    }

    #[test]
    fn serializing_loop_is_rejected() {
        let c = candidates_of(|f| {
            let x = f.local();
            f.ci(1 << 20).st(x);
            f.while_icmp(
                Cond::Gt,
                |f| {
                    f.ld(x).ci(0);
                },
                |f| {
                    f.ld(x).ci(2).idiv().st(x);
                },
            );
        });
        assert_eq!(c.candidates.len(), 0);
        assert_eq!(c.rejected.len(), 1);
        assert_eq!(c.total_loops(), 1);
        assert!(c.rejected[0].reason.contains("serializing"));
    }

    #[test]
    fn nested_candidates_link_parents() {
        let c = candidates_of(|f| {
            let (i, j, a) = (f.local(), f.local(), f.local());
            f.ci(64).newarray(tvm::ElemKind::Int).st(a);
            f.for_in(i, 0.into(), 8.into(), |f| {
                f.for_in(j, 0.into(), 8.into(), |f| {
                    f.arr_set(
                        a,
                        |f| {
                            f.ld(j);
                        },
                        |f| {
                            f.ld(i);
                        },
                    );
                });
            });
        });
        assert_eq!(c.candidates.len(), 2);
        let outer = &c.candidates[0];
        let inner = &c.candidates[1];
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.height, 2);
        assert_eq!(inner.height, 1);
        assert_eq!(c.max_static_depth(), 2);
    }

    #[test]
    fn statically_serial_loop_is_demoted_but_keeps_dense_id() {
        let mut b = ProgramBuilder::new();
        let g = b.global(tvm::ElemKind::Int);
        let main = b.function("main", 0, false, |f| {
            let (i, j, a) = (f.local(), f.local(), f.local());
            f.ci(32).newarray(tvm::ElemKind::Int).st(a);
            // loop 0: parallel
            f.for_in(i, 0.into(), 32.into(), |f| {
                f.arr_set(
                    a,
                    |f| {
                        f.ld(i);
                    },
                    |f| {
                        f.ld(i);
                    },
                );
            });
            // loop 1: guaranteed static recurrence
            f.for_in(j, 0.into(), 32.into(), |f| {
                f.getstatic(g).ci(3).imul().ci(1).iadd().putstatic(g);
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let c = extract_candidates(&p);
        assert_eq!(c.candidates.len(), 2);
        for (i, cand) in c.candidates.iter().enumerate() {
            assert_eq!(cand.id, LoopId(i as u32));
        }
        assert_eq!(c.demoted_count(), 1);
        let demoted = c.demoted_ids();
        assert_eq!(demoted.len(), 1);
        let d = c.candidate(*demoted.iter().next().unwrap());
        assert!(matches!(
            &d.static_verdict,
            StaticVerdict::Demoted { reason } if reason.contains("static")
        ));
    }

    /// `a[i] = a[i + load_off]`, the whole body guarded by `i < 32`.
    /// The guard keeps the structural pre-screen from proving a
    /// *guaranteed* RAW (rule 3 needs both sites on every iteration),
    /// so only scalar evolution sees the distance.
    fn guarded_stencil(load_off: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            let (a, i) = (f.local(), f.local());
            f.ci(64).newarray(tvm::ElemKind::Int).st(a);
            f.for_in(i, 2.into(), 62.into(), |f| {
                f.if_icmp(
                    Cond::Lt,
                    |f| {
                        f.ld(i).ci(32);
                    },
                    |f| {
                        f.ld(a).ld(i);
                        f.ld(a).ld(i).ci(load_off).iadd().aload();
                        f.astore();
                    },
                );
            });
            f.ret_void();
        });
        b.finish(main).unwrap()
    }

    #[test]
    fn distance_floor_applies_only_to_raw_chains() {
        // a[i] = a[i-1]: the load reads last iteration's store — a
        // distance-1 RAW chain, so selection must floor overlap at 1.
        let raw = guarded_stencil(-1);
        let rc = extract_candidates(&raw);
        assert!(!rc.candidates[0].is_demoted(), "guard defeats rule 3");
        assert_eq!(distance_floors(&raw, &rc), BTreeMap::from([(LoopId(0), 1)]));

        // a[i] = a[i+1]: the store lands one iteration *after* the
        // load it could disturb — an anti-dependence TLS versioning
        // absorbs, so no floor even though the pair has a distance.
        let anti = guarded_stencil(1);
        let ac = extract_candidates(&anti);
        assert!(distance_floors(&anti, &ac).is_empty());
    }

    #[test]
    fn deferred_distance_prescreen_matches_eager() {
        let p = guarded_stencil(-1);
        let pc = extract_candidates(&p);
        let fa = &pc.functions[0];
        let c = &pc.candidates[0];
        let pt = PointsTo::analyze(&p);
        let view = pt.view(c.func);
        let (verdict, floor) = prescreen_candidate_with_distance(&p, fa, c.loop_idx, Some(&view));
        assert_eq!(verdict, c.static_verdict);
        assert_eq!(floor, Some(1));
    }

    #[test]
    fn tracked_slots_are_method_level() {
        let c = candidates_of(|f| {
            let (i, prev, a) = (f.local(), f.local(), f.local());
            f.ci(64).newarray(tvm::ElemKind::Int).st(a);
            f.ci(0).st(prev);
            f.for_in(i, 0.into(), 10.into(), |f| {
                f.arr_set(
                    a,
                    |f| {
                        f.ld(i);
                    },
                    |f| {
                        f.ld(prev);
                    },
                );
                f.arr_get(a, |f| {
                    f.ld(i);
                })
                .st(prev);
            });
        });
        let fa = &c.functions[0];
        assert_eq!(fa.tracked_order, vec![Local(1)]); // prev
        assert_eq!(fa.tracked_slot(Local(1)), Some(0));
        assert_eq!(fa.tracked_slot(Local(0)), None);
        assert_eq!(c.tracked_vars(LoopId(0)), vec![(0, Local(1))]);
    }
}
