//! Generic dataflow analysis over a [`Cfg`].
//!
//! A small worklist solver parameterized by an [`Analysis`]: the
//! client supplies a join-semilattice fact type, a transfer function
//! per basic block, and a direction; [`solve`] iterates to the least
//! fixpoint and returns the fact at every block entry and exit.
//!
//! Three clients live in this workspace:
//!
//! * [`ReachingDefs`] — which definitions of each local reach each
//!   program point (forward, may-analysis);
//! * [`Liveness`] — which locals are live at each block boundary
//!   (backward, may-analysis);
//! * [`upward_exposed_in_loop`] — a loop-scoped liveness variant with
//!   back edges cut, answering "can a read of `v` in one iteration see
//!   a value from before the iteration started?". The scalar
//!   classification uses it to prove iteration-privacy along *all*
//!   paths, not just the dominating-store special case.
//!
//! Analyses can restrict the solved region with
//! [`Analysis::edge_enabled`]: returning `false` removes a CFG edge
//! from the view, which is how the loop-scoped variant cuts back
//! edges without copying the graph.

use crate::cfg::{BlockId, Cfg};
use crate::loops::NaturalLoop;
use tvm::isa::{Instr, Local};
use tvm::program::Function;

/// Direction a dataflow analysis propagates facts in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow along CFG edges (entry fact = join of predecessor
    /// exit facts).
    Forward,
    /// Facts flow against CFG edges (exit fact = join of successor
    /// entry facts).
    Backward,
}

/// A dataflow problem over a [`Cfg`].
///
/// `Fact` must form a join-semilattice with [`Analysis::bottom`] as
/// least element; [`Analysis::transfer`] must be monotone for the
/// solver to terminate on the least fixpoint.
pub trait Analysis {
    /// The lattice element attached to each block boundary.
    type Fact: Clone + PartialEq;

    /// Whether facts flow with or against CFG edges.
    fn direction(&self) -> Direction;

    /// The fact holding at the boundary of the region: the entry block
    /// (forward) or every exit block (backward).
    fn boundary(&self) -> Self::Fact;

    /// The least lattice element, used to initialize interior blocks.
    fn bottom(&self) -> Self::Fact;

    /// Joins `from` into `into` (least upper bound, in place).
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact);

    /// Applies block `b`'s effect to `input`, producing the fact at
    /// the opposite boundary of the block.
    fn transfer(&self, b: BlockId, input: &Self::Fact) -> Self::Fact;

    /// Whether the CFG edge `from -> to` participates in the analysis.
    /// Returning `false` cuts the edge, restricting the solved region;
    /// the default keeps every edge.
    fn edge_enabled(&self, _from: BlockId, _to: BlockId) -> bool {
        true
    }
}

/// The fixpoint of an [`Analysis`]: one fact per block boundary, in
/// block order.
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// Fact holding at each block's entry (before its first
    /// instruction), regardless of analysis direction.
    pub entry: Vec<F>,
    /// Fact holding at each block's exit (after its terminator).
    pub exit: Vec<F>,
}

impl<F> Solution<F> {
    /// Fact at the entry of block `b`.
    pub fn entry_of(&self, b: BlockId) -> &F {
        &self.entry[b.0 as usize]
    }

    /// Fact at the exit of block `b`.
    pub fn exit_of(&self, b: BlockId) -> &F {
        &self.exit[b.0 as usize]
    }
}

/// Runs `a` to its least fixpoint over `cfg`.
///
/// The worklist is seeded in reverse post-order (forward) or
/// post-order (backward) so typical reducible graphs converge in a
/// couple of sweeps.
pub fn solve<A: Analysis>(cfg: &Cfg, a: &A) -> Solution<A::Fact> {
    let n = cfg.len();
    let mut entry: Vec<A::Fact> = vec![a.bottom(); n];
    let mut exit: Vec<A::Fact> = vec![a.bottom(); n];
    if n == 0 {
        return Solution { entry, exit };
    }

    let mut order = cfg.reverse_postorder();
    if a.direction() == Direction::Backward {
        order.reverse();
    }
    let mut queued = vec![false; n];
    let mut work: std::collections::VecDeque<BlockId> = order.iter().copied().collect();
    for b in &work {
        queued[b.0 as usize] = true;
    }

    while let Some(b) = work.pop_front() {
        let bi = b.0 as usize;
        queued[bi] = false;
        match a.direction() {
            Direction::Forward => {
                let mut input = if b == BlockId(0) {
                    a.boundary()
                } else {
                    a.bottom()
                };
                for &p in &cfg.blocks[bi].preds {
                    if a.edge_enabled(p, b) {
                        a.join(&mut input, &exit[p.0 as usize]);
                    }
                }
                let output = a.transfer(b, &input);
                entry[bi] = input;
                if output != exit[bi] {
                    exit[bi] = output;
                    for &s in &cfg.blocks[bi].succs {
                        if a.edge_enabled(b, s) && !queued[s.0 as usize] {
                            queued[s.0 as usize] = true;
                            work.push_back(s);
                        }
                    }
                }
            }
            Direction::Backward => {
                let mut any_succ = false;
                let mut output = a.bottom();
                for &s in &cfg.blocks[bi].succs {
                    if a.edge_enabled(b, s) {
                        any_succ = true;
                        a.join(&mut output, &entry[s.0 as usize]);
                    }
                }
                if !any_succ {
                    output = a.boundary();
                }
                let input = a.transfer(b, &output);
                exit[bi] = output;
                if input != entry[bi] {
                    entry[bi] = input;
                    for &p in &cfg.blocks[bi].preds {
                        if a.edge_enabled(p, b) && !queued[p.0 as usize] {
                            queued[p.0 as usize] = true;
                            work.push_back(p);
                        }
                    }
                }
            }
        }
    }

    Solution { entry, exit }
}

// ---------------------------------------------------------------------
// Bit-set facts
// ---------------------------------------------------------------------

/// A fixed-capacity bit set used as the fact type of the gen/kill
/// analyses.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitSet {
    words: Vec<u64>,
    nbits: usize,
}

impl BitSet {
    /// An empty set with capacity for `nbits` members.
    pub fn new(nbits: usize) -> BitSet {
        BitSet {
            words: vec![0; nbits.div_ceil(64)],
            nbits,
        }
    }

    /// Adds `i`; returns true if it was absent.
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.nbits);
        let (w, m) = (i / 64, 1u64 << (i % 64));
        let was = self.words[w] & m != 0;
        self.words[w] |= m;
        !was
    }

    /// Removes `i`; returns true if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.nbits);
        let (w, m) = (i / 64, 1u64 << (i % 64));
        let was = self.words[w] & m != 0;
        self.words[w] &= !m;
        was
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        i < self.nbits && self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// `self |= other`; returns true on change.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// `self -= other`.
    pub fn subtract(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.nbits).filter(|&i| self.contains(i))
    }
}

// ---------------------------------------------------------------------
// Reaching definitions
// ---------------------------------------------------------------------

/// One definition of a local: an instruction that writes it, or the
/// implicit definition at function entry (the incoming parameter value
/// or the default `Int(0)` a fresh frame provides).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefSite {
    /// The local being defined.
    pub local: Local,
    /// Instruction index of the write, or `None` for the entry
    /// definition.
    pub site: Option<u32>,
}

struct ReachingAnalysis {
    n_defs: usize,
    entry_set: BitSet,
    gen: Vec<BitSet>,
    kill: Vec<BitSet>,
}

impl Analysis for ReachingAnalysis {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> BitSet {
        self.entry_set.clone()
    }

    fn bottom(&self) -> BitSet {
        BitSet::new(self.n_defs)
    }

    fn join(&self, into: &mut BitSet, from: &BitSet) {
        into.union_with(from);
    }

    fn transfer(&self, b: BlockId, input: &BitSet) -> BitSet {
        let mut out = input.clone();
        out.subtract(&self.kill[b.0 as usize]);
        out.union_with(&self.gen[b.0 as usize]);
        out
    }
}

/// Reaching definitions of locals over one function.
///
/// Definition ids: `0..n_locals` are the entry definitions (id `l` for
/// local `l`), followed by instruction definitions in instruction
/// order. Query with [`ReachingDefs::reaching_before`] and map ids
/// back through [`ReachingDefs::def`].
pub struct ReachingDefs {
    defs: Vec<DefSite>,
    /// def ids per local (entry def first).
    of_local: Vec<Vec<usize>>,
    /// def id of each defining instruction, dense by instruction index.
    def_at_instr: Vec<Option<usize>>,
    sol: Solution<BitSet>,
}

/// The local an instruction writes, if any.
fn written_local(instr: &Instr) -> Option<Local> {
    match instr {
        Instr::Store(l) | Instr::IInc(l, _) => Some(*l),
        _ => None,
    }
}

impl ReachingDefs {
    /// Solves reaching definitions for `f` over `cfg`.
    pub fn compute(f: &Function, cfg: &Cfg) -> ReachingDefs {
        let n_locals = usize::from(f.n_locals);
        let mut defs: Vec<DefSite> = (0..n_locals)
            .map(|l| DefSite {
                local: Local(l as u16),
                site: None,
            })
            .collect();
        let mut of_local: Vec<Vec<usize>> = (0..n_locals).map(|l| vec![l]).collect();
        let mut def_at_instr: Vec<Option<usize>> = vec![None; f.code.len()];
        for (i, instr) in f.code.iter().enumerate() {
            if let Some(l) = written_local(instr) {
                let id = defs.len();
                defs.push(DefSite {
                    local: l,
                    site: Some(i as u32),
                });
                of_local[usize::from(l.0)].push(id);
                def_at_instr[i] = Some(id);
            }
        }

        let n_defs = defs.len();
        let mut entry_set = BitSet::new(n_defs);
        for l in 0..n_locals {
            entry_set.insert(l);
        }

        // block gen (downward-exposed defs) and kill (all other defs of
        // locals the block writes)
        let mut gen = vec![BitSet::new(n_defs); cfg.len()];
        let mut kill = vec![BitSet::new(n_defs); cfg.len()];
        for (bi, _) in cfg.blocks.iter().enumerate() {
            let b = BlockId(bi as u32);
            let mut last: Vec<Option<usize>> = vec![None; n_locals];
            for i in cfg.instrs_of(b) {
                if let Some(id) = def_at_instr[i as usize] {
                    last[usize::from(defs[id].local.0)] = Some(id);
                }
            }
            for (l, slot) in last.iter().enumerate() {
                if let Some(id) = slot {
                    gen[bi].insert(*id);
                    for &other in &of_local[l] {
                        if other != *id {
                            kill[bi].insert(other);
                        }
                    }
                }
            }
        }

        let analysis = ReachingAnalysis {
            n_defs,
            entry_set,
            gen,
            kill,
        };
        let sol = solve(cfg, &analysis);
        ReachingDefs {
            defs,
            of_local,
            def_at_instr,
            sol,
        }
    }

    /// The definition behind id `id`.
    pub fn def(&self, id: usize) -> DefSite {
        self.defs[id]
    }

    /// Definitions reaching the entry of block `b`.
    pub fn reaching_in(&self, b: BlockId) -> &BitSet {
        self.sol.entry_of(b)
    }

    /// Definitions reaching the program point just before instruction
    /// `instr` of block `b` (walks the block prefix).
    pub fn reaching_before(&self, cfg: &Cfg, b: BlockId, instr: u32) -> BitSet {
        let mut cur = self.sol.entry_of(b).clone();
        for i in cfg.instrs_of(b) {
            if i >= instr {
                break;
            }
            if let Some(id) = self.def_at_instr[i as usize] {
                for &other in &self.of_local[usize::from(self.defs[id].local.0)] {
                    cur.remove(other);
                }
                cur.insert(id);
            }
        }
        cur
    }

    /// Definitions of `local` reaching just before instruction `instr`
    /// of block `b`.
    pub fn reaching_defs_of(
        &self,
        cfg: &Cfg,
        b: BlockId,
        instr: u32,
        local: Local,
    ) -> Vec<DefSite> {
        let at = self.reaching_before(cfg, b, instr);
        self.of_local[usize::from(local.0)]
            .iter()
            .filter(|&&id| at.contains(id))
            .map(|&id| self.defs[id])
            .collect()
    }
}

// ---------------------------------------------------------------------
// Liveness
// ---------------------------------------------------------------------

/// Per-block gen (upward-exposed reads) and kill (writes) sets over
/// locals, shared by whole-function and loop-scoped liveness.
fn local_gen_kill(f: &Function, cfg: &Cfg) -> (Vec<BitSet>, Vec<BitSet>) {
    let n_locals = usize::from(f.n_locals);
    let mut gen = vec![BitSet::new(n_locals); cfg.len()];
    let mut kill = vec![BitSet::new(n_locals); cfg.len()];
    for bi in 0..cfg.len() {
        let b = BlockId(bi as u32);
        for i in cfg.instrs_of(b) {
            match &f.code[i as usize] {
                Instr::Load(l) if !kill[bi].contains(usize::from(l.0)) => {
                    gen[bi].insert(usize::from(l.0));
                }
                Instr::IInc(l, _) => {
                    // reads the old value, then writes
                    if !kill[bi].contains(usize::from(l.0)) {
                        gen[bi].insert(usize::from(l.0));
                    }
                    kill[bi].insert(usize::from(l.0));
                }
                Instr::Store(l) => {
                    kill[bi].insert(usize::from(l.0));
                }
                _ => {}
            }
        }
    }
    (gen, kill)
}

struct LivenessAnalysis {
    n_locals: usize,
    gen: Vec<BitSet>,
    kill: Vec<BitSet>,
}

impl Analysis for LivenessAnalysis {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self) -> BitSet {
        BitSet::new(self.n_locals)
    }

    fn bottom(&self) -> BitSet {
        BitSet::new(self.n_locals)
    }

    fn join(&self, into: &mut BitSet, from: &BitSet) {
        into.union_with(from);
    }

    fn transfer(&self, b: BlockId, out: &BitSet) -> BitSet {
        let mut live = out.clone();
        live.subtract(&self.kill[b.0 as usize]);
        live.union_with(&self.gen[b.0 as usize]);
        live
    }
}

/// Live locals at every block boundary of one function.
pub struct Liveness {
    sol: Solution<BitSet>,
}

impl Liveness {
    /// Solves liveness for `f` over `cfg`.
    pub fn compute(f: &Function, cfg: &Cfg) -> Liveness {
        let (gen, kill) = local_gen_kill(f, cfg);
        let analysis = LivenessAnalysis {
            n_locals: usize::from(f.n_locals),
            gen,
            kill,
        };
        Liveness {
            sol: solve(cfg, &analysis),
        }
    }

    /// Locals live at the entry of block `b`.
    pub fn live_in(&self, b: BlockId) -> &BitSet {
        self.sol.entry_of(b)
    }

    /// Locals live at the exit of block `b`.
    pub fn live_out(&self, b: BlockId) -> &BitSet {
        self.sol.exit_of(b)
    }
}

// ---------------------------------------------------------------------
// Loop-scoped upward exposure
// ---------------------------------------------------------------------

struct LoopExposure<'a> {
    n_locals: usize,
    lp: &'a NaturalLoop,
    gen: Vec<BitSet>,
    kill: Vec<BitSet>,
}

impl Analysis for LoopExposure<'_> {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self) -> BitSet {
        BitSet::new(self.n_locals)
    }

    fn bottom(&self) -> BitSet {
        BitSet::new(self.n_locals)
    }

    fn join(&self, into: &mut BitSet, from: &BitSet) {
        into.union_with(from);
    }

    fn transfer(&self, b: BlockId, out: &BitSet) -> BitSet {
        if !self.lp.blocks.contains(&b) {
            return out.clone();
        }
        let mut live = out.clone();
        live.subtract(&self.kill[b.0 as usize]);
        live.union_with(&self.gen[b.0 as usize]);
        live
    }

    fn edge_enabled(&self, from: BlockId, to: BlockId) -> bool {
        // keep only intra-loop edges, and cut every in-loop edge back
        // to the header: the header dominates the body, so any such
        // edge is a back edge, and cutting it limits exposure to a
        // single iteration.
        self.lp.blocks.contains(&from) && self.lp.blocks.contains(&to) && to != self.lp.header
    }
}

/// Locals whose reads inside `lp` can observe a value produced before
/// the current iteration began.
///
/// Solves liveness restricted to the loop body with back edges cut;
/// the fact at the header's entry is exactly the set of locals with an
/// upward-exposed read along some intra-iteration path. A local
/// outside this set is written before every read on every path — safe
/// to privatize per speculative thread.
pub fn upward_exposed_in_loop(f: &Function, cfg: &Cfg, lp: &NaturalLoop) -> BitSet {
    let (gen, kill) = local_gen_kill(f, cfg);
    let analysis = LoopExposure {
        n_locals: usize::from(f.n_locals),
        lp,
        gen,
        kill,
    };
    let sol = solve(cfg, &analysis);
    sol.entry_of(lp.header).clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Dominators;
    use crate::loops::LoopForest;
    use tvm::isa::Cond;
    use tvm::ProgramBuilder;

    fn build_main(body: impl FnOnce(&mut tvm::FnBuilder)) -> tvm::Program {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            body(f);
            f.ret_void();
        });
        b.finish(main).unwrap()
    }

    #[test]
    fn bitset_ops() {
        let mut a = BitSet::new(130);
        assert!(a.insert(0));
        assert!(a.insert(129));
        assert!(!a.insert(129));
        assert!(a.contains(129));
        assert_eq!(a.count(), 2);
        let mut b = BitSet::new(130);
        b.insert(64);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
        a.subtract(&b);
        assert!(!a.contains(64));
        assert!(a.remove(0));
        assert!(!a.remove(0));
    }

    #[test]
    fn reaching_defs_merge_at_join() {
        // if (..) x = 1 else x = 2; read x  -> both stores reach the read
        let p = build_main(|f| {
            let x = f.local();
            f.if_else_icmp(
                Cond::Gt,
                |f| {
                    f.ci(1).ci(0);
                },
                |f| {
                    f.ci(1).st(x);
                },
                |f| {
                    f.ci(2).st(x);
                },
            );
            f.ld(x).drop_top();
        });
        let func = &p.functions[0];
        let cfg = Cfg::build(func);
        let rd = ReachingDefs::compute(func, &cfg);

        let load_idx = func
            .code
            .iter()
            .position(|i| matches!(i, Instr::Load(_)))
            .unwrap() as u32;
        let b = cfg.block_of(load_idx).unwrap();
        let local = match func.code[load_idx as usize] {
            Instr::Load(l) => l,
            _ => unreachable!(),
        };
        let defs = rd.reaching_defs_of(&cfg, b, load_idx, local);
        // both branch stores reach; the entry def is killed on every path
        assert_eq!(defs.len(), 2);
        assert!(defs.iter().all(|d| d.site.is_some()));
    }

    #[test]
    fn reaching_defs_within_block_shadow_entry() {
        let p = build_main(|f| {
            let x = f.local();
            f.ci(7).st(x);
            f.ld(x).drop_top();
        });
        let func = &p.functions[0];
        let cfg = Cfg::build(func);
        let rd = ReachingDefs::compute(func, &cfg);
        let load_idx = func
            .code
            .iter()
            .position(|i| matches!(i, Instr::Load(_)))
            .unwrap() as u32;
        let b = cfg.block_of(load_idx).unwrap();
        let defs = rd.reaching_defs_of(&cfg, b, load_idx, Local(0));
        assert_eq!(defs.len(), 1);
        assert!(defs[0].site.is_some());
    }

    #[test]
    fn liveness_sees_use_after_branch() {
        let p = build_main(|f| {
            let x = f.local();
            let y = f.local();
            f.ci(1).st(x);
            f.ci(2).st(y);
            f.if_else_icmp(
                Cond::Gt,
                |f| {
                    f.ld(x).ci(0);
                },
                |f| {
                    f.ld(y).drop_top();
                },
                |_f| {},
            );
        });
        let func = &p.functions[0];
        let cfg = Cfg::build(func);
        let live = Liveness::compute(func, &cfg);
        // x and y are dead at entry (defined before use in block 0)
        assert!(!live.live_in(BlockId(0)).contains(0));
        assert!(!live.live_in(BlockId(0)).contains(1));
        // y is live leaving the entry block (used in the then-branch)
        assert!(live.live_out(BlockId(0)).contains(1));
    }

    #[test]
    fn loop_exposure_distinguishes_private_from_carried() {
        // t is written before every read inside the body; s is read
        // (accumulated) before being written -> only s is exposed.
        let p = build_main(|f| {
            let i = f.local();
            let t = f.local();
            let s = f.local();
            f.ci(0).st(s);
            f.for_in(i, 0.into(), 10.into(), |f| {
                f.ld(i).ci(3).imul().st(t);
                f.ld(s).ld(t).iadd().st(s);
            });
            f.ld(s).drop_top();
        });
        let func = &p.functions[0];
        let cfg = Cfg::build(func);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::build(&cfg, &dom);
        assert_eq!(forest.len(), 1);
        let exposed = upward_exposed_in_loop(func, &cfg, &forest.loops[0]);
        assert!(!exposed.contains(1), "t must not be upward-exposed");
        assert!(exposed.contains(2), "s must be upward-exposed");
        // the inductor is read by the loop test before its increment
        assert!(exposed.contains(0));
    }
}
