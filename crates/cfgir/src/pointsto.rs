//! Whole-program, field-sensitive, flow-insensitive Andersen-style
//! points-to and escape analysis over TraceVM bytecode.
//!
//! The heap is modeled with *allocation-site abstraction*: every
//! `NewArray`/`NewObject` instruction ([`tvm::alloc::AllocSites`]) is
//! one abstract object. Set variables are attached to every function's
//! local slots and return value, every static, and every reference
//! field (or array element slot) of every abstract object. Bytecode is
//! walked once per basic block with an abstract operand stack to
//! generate inclusion constraints:
//!
//! * **copy** — `pts(a) ⊆ pts(b)` for local/static/parameter/return
//!   moves;
//! * **load** — for `x = base.f`: for every site `s ∈ pts(base)`,
//!   `pts(field(s, f)) ⊆ pts(x)`;
//! * **store** — for `base.f = x`: for every site `s ∈ pts(base)`,
//!   `pts(x) ⊆ pts(field(s, f))`.
//!
//! A worklist solver (the points-to analogue of the
//! [`crate::dataflow`] round-robin solver, driven by set growth rather
//! than block order) instantiates the complex constraints as the base
//! sets grow, until fixpoint.
//!
//! **Soundness escape hatches.** Anything the walk cannot model stays
//! conservative: a stack value of unknown provenance (an operand left
//! on the stack across a block boundary, or produced by an unmodeled
//! instruction) points to *every* site plus a distinguished
//! unknown-object marker, and a store through an unknown base routes
//! its value through a smash variable that every load observes. A
//! variable whose set contains the unknown marker never participates
//! in a disjointness proof.
//!
//! **Escape analysis.** Statics are escape roots: every site reachable
//! from a static's points-to set (transitively through reference
//! fields) [`PointsTo::escapes_via_static`]. Sites that flow into
//! another function's parameters or out through a return escape their
//! allocating function ([`PointsTo::escapes_via_arg`]).
//!
//! The analysis is *sound but partial* — the agreement report and the
//! fuzzing oracle (PR 3's harness) dynamically check that every pair
//! of accesses this module helps prove disjoint really never touches a
//! common address.

use crate::cfg::Cfg;
use crate::dataflow::BitSet;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::time::Instant;
use tvm::alloc::{AllocSites, SiteId, SiteKind};
use tvm::isa::{ElemKind, FuncId, GlobalId, Instr, Local};
use tvm::program::Program;
use tvm::verify::stack_effect;

/// Field key used for the element slot of an array site (object fields
/// use their slot index).
pub const ELEM_KEY: u32 = u32::MAX;

/// Solver statistics, recorded in the `obs` registry by the pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Allocation sites (abstract objects), excluding the unknown
    /// marker.
    pub abstract_objects: usize,
    /// Set variables (locals, returns, statics, fields, temporaries).
    pub variables: usize,
    /// Copy edges materialized by the solver (complex constraints
    /// included, after instantiation).
    pub constraint_edges: usize,
    /// Variables processed by the worklist until fixpoint.
    pub iterations: u64,
    /// Wall-clock time of constraint generation + solving.
    pub wall_nanos: u64,
}

/// What a function may (transitively) store to — the sharpened form of
/// `Access::Opaque`.
#[derive(Debug, Clone, Default)]
struct StoreSummary {
    /// Statics written.
    statics: BTreeSet<u16>,
    /// Abstract objects whose fields may be written (unknown marker
    /// included as the last bit).
    field_sites: BitSet,
    /// Abstract objects whose elements may be written.
    elem_sites: BitSet,
}

/// An abstract value on the walk's operand stack.
#[derive(Debug, Clone, Copy)]
enum Sv {
    /// Tracked by a set variable.
    Var(u32),
    /// A freshly allocated abstract object.
    Site(SiteId),
    /// A non-reference value (or null — dereferencing it faults, so it
    /// aliases nothing).
    Prim,
    /// Unknown provenance: any object at all.
    Unknown,
}

/// Inclusion-constraint state: points-to sets, copy edges and complex
/// (field load/store) constraints per variable.
struct Solver {
    /// `n_sites` is also the bit index of the unknown marker.
    n_sites: usize,
    pts: Vec<BitSet>,
    edges: Vec<Vec<u32>>,
    edge_set: HashSet<(u32, u32)>,
    loads: Vec<Vec<(u32, u32)>>,
    stores: Vec<Vec<(u32, u32)>>,
    dirty: Vec<u32>,
    in_dirty: Vec<bool>,
    iterations: u64,
}

impl Solver {
    fn new(n_sites: usize) -> Solver {
        Solver {
            n_sites,
            pts: Vec::new(),
            edges: Vec::new(),
            edge_set: HashSet::new(),
            loads: Vec::new(),
            stores: Vec::new(),
            dirty: Vec::new(),
            in_dirty: Vec::new(),
            iterations: 0,
        }
    }

    fn fresh(&mut self) -> u32 {
        let v = self.pts.len() as u32;
        self.pts.push(BitSet::new(self.n_sites + 1));
        self.edges.push(Vec::new());
        self.loads.push(Vec::new());
        self.stores.push(Vec::new());
        self.in_dirty.push(false);
        v
    }

    fn mark(&mut self, v: u32) {
        if !self.in_dirty[v as usize] {
            self.in_dirty[v as usize] = true;
            self.dirty.push(v);
        }
    }

    fn seed_site(&mut self, v: u32, s: SiteId) {
        if self.pts[v as usize].insert(s.0 as usize) {
            self.mark(v);
        }
    }

    fn seed_all(&mut self, v: u32) {
        let mut changed = false;
        for i in 0..=self.n_sites {
            changed |= self.pts[v as usize].insert(i);
        }
        if changed {
            self.mark(v);
        }
    }

    fn add_edge(&mut self, from: u32, to: u32) {
        if from == to || !self.edge_set.insert((from, to)) {
            return;
        }
        self.edges[from as usize].push(to);
        let (a, b) = (from as usize, to as usize);
        let src = self.pts[a].clone();
        if self.pts[b].union_with(&src) {
            self.mark(to);
        }
    }

    /// Flows an abstract stack value into a set variable.
    fn flow_into(&mut self, sv: Sv, v: u32) {
        match sv {
            Sv::Var(w) => self.add_edge(w, v),
            Sv::Site(s) => self.seed_site(v, s),
            Sv::Unknown => self.seed_all(v),
            Sv::Prim => {}
        }
    }

    /// Materializes any stack value as a variable (needed as the source
    /// of a complex store constraint).
    fn as_var(&mut self, sv: Sv) -> Option<u32> {
        match sv {
            Sv::Var(v) => Some(v),
            Sv::Site(_) | Sv::Unknown => {
                let v = self.fresh();
                self.flow_into(sv, v);
                Some(v)
            }
            Sv::Prim => None,
        }
    }

    fn has_unknown(&self, v: u32) -> bool {
        self.pts[v as usize].contains(self.n_sites)
    }

    /// Runs the worklist to fixpoint, instantiating complex
    /// constraints against `field_var`.
    fn solve(&mut self, field_var: &HashMap<(u32, u32), u32>, smash: u32) {
        while let Some(v) = self.dirty.pop() {
            self.in_dirty[v as usize] = false;
            self.iterations += 1;
            let sites: Vec<usize> = self.pts[v as usize].iter().collect();
            let unknown = self.has_unknown(v);
            for (key, dst) in self.loads[v as usize].clone() {
                if unknown {
                    self.seed_all(dst);
                }
                for &s in &sites {
                    if let Some(&fv) = field_var.get(&(s as u32, key)) {
                        self.add_edge(fv, dst);
                    }
                }
            }
            for (key, src) in self.stores[v as usize].clone() {
                if unknown {
                    self.add_edge(src, smash);
                }
                for &s in &sites {
                    if let Some(&fv) = field_var.get(&(s as u32, key)) {
                        self.add_edge(src, fv);
                    }
                }
            }
            let out = self.edges[v as usize].clone();
            let src = self.pts[v as usize].clone();
            for w in out {
                if self.pts[w as usize].union_with(&src) {
                    self.mark(w);
                }
            }
        }
    }
}

/// A base reference a store goes through, recorded for the per-function
/// store summaries.
#[derive(Debug, Clone, Copy)]
enum BaseRef {
    Var(u32),
    Site(SiteId),
    Unknown,
}

/// The solved whole-program points-to and escape facts.
#[derive(Debug, Clone)]
pub struct PointsTo {
    n_sites: usize,
    sites: AllocSites,
    pts: Vec<BitSet>,
    /// First variable of each function's local slots.
    local_base: Vec<u32>,
    summaries: Vec<StoreSummary>,
    escapes_static: BitSet,
    escapes_arg: BitSet,
    stats: SolverStats,
}

impl PointsTo {
    /// Analyzes a whole program.
    pub fn analyze(program: &Program) -> PointsTo {
        let start = Instant::now();
        let sites = AllocSites::build(program);
        let n_sites = sites.len();
        let mut solver = Solver::new(n_sites);

        // -- variable layout -----------------------------------------
        let smash = solver.fresh();
        let local_base: Vec<u32> = program
            .functions
            .iter()
            .map(|f| {
                let base = solver.pts.len() as u32;
                for _ in 0..f.n_locals {
                    solver.fresh();
                }
                base
            })
            .collect();
        let ret_var: Vec<u32> = program.functions.iter().map(|_| solver.fresh()).collect();
        let global_var: Vec<u32> = program.globals.iter().map(|_| solver.fresh()).collect();
        let mut field_var: HashMap<(u32, u32), u32> = HashMap::new();
        for site in sites.iter() {
            match site.kind {
                SiteKind::Array(ElemKind::Ref) => {
                    let v = solver.fresh();
                    field_var.insert((site.id.0, ELEM_KEY), v);
                }
                SiteKind::Array(_) => {}
                SiteKind::Object(c) => {
                    if let Ok(class) = program.class(c) {
                        for (fi, kind) in class.fields.iter().enumerate() {
                            if *kind == ElemKind::Ref {
                                let v = solver.fresh();
                                field_var.insert((site.id.0, fi as u32), v);
                            }
                        }
                    }
                }
            }
        }
        let local_var = |fi: usize, l: Local| local_base[fi] + u32::from(l.0);

        // -- constraint generation (one abstract-stack walk per block)
        let mut direct_field_stores: Vec<Vec<BaseRef>> = vec![Vec::new(); program.functions.len()];
        let mut direct_elem_stores: Vec<Vec<BaseRef>> = vec![Vec::new(); program.functions.len()];
        let mut direct_statics: Vec<BTreeSet<u16>> = vec![BTreeSet::new(); program.functions.len()];
        let mut calls: Vec<Vec<usize>> = vec![Vec::new(); program.functions.len()];

        for (fi, f) in program.functions.iter().enumerate() {
            let cfg = Cfg::build(f);
            for bi in 0..cfg.len() {
                let b = crate::cfg::BlockId(bi as u32);
                let mut stack: Vec<Sv> = Vec::new();
                for i in cfg.instrs_of(b) {
                    let pc = tvm::isa::Pc {
                        func: FuncId(fi as u16),
                        idx: i,
                    };
                    let instr = &f.code[i as usize];
                    let pop = |stack: &mut Vec<Sv>| stack.pop().unwrap_or(Sv::Unknown);
                    match instr {
                        Instr::NullConst => stack.push(Sv::Prim),
                        Instr::Load(l) => stack.push(Sv::Var(local_var(fi, *l))),
                        Instr::Store(l) => {
                            let v = pop(&mut stack);
                            solver.flow_into(v, local_var(fi, *l));
                        }
                        Instr::Dup => {
                            let t = stack.last().copied().unwrap_or(Sv::Unknown);
                            stack.push(t);
                        }
                        Instr::Swap => {
                            let (y, x) = (pop(&mut stack), pop(&mut stack));
                            stack.push(y);
                            stack.push(x);
                        }
                        Instr::NewArray(_) | Instr::NewObject(_) => {
                            if matches!(instr, Instr::NewArray(_)) {
                                pop(&mut stack); // length
                            }
                            let s = sites.site_at(pc).expect("allocation site was tabled");
                            stack.push(Sv::Site(s));
                        }
                        Instr::GetStatic(g) => {
                            stack.push(Sv::Var(global_var[g.0 as usize]));
                        }
                        Instr::PutStatic(g) => {
                            let v = pop(&mut stack);
                            solver.flow_into(v, global_var[g.0 as usize]);
                            direct_statics[fi].insert(g.0);
                        }
                        Instr::GetField(fld) => {
                            let base = pop(&mut stack);
                            let dst = solver.fresh();
                            add_load(&mut solver, &field_var, smash, base, u32::from(*fld), dst);
                            stack.push(Sv::Var(dst));
                        }
                        Instr::PutField(fld) => {
                            let val = pop(&mut stack);
                            let base = pop(&mut stack);
                            add_store(&mut solver, &field_var, smash, base, u32::from(*fld), val);
                            record_base(&mut direct_field_stores[fi], base);
                        }
                        Instr::ALoad => {
                            pop(&mut stack); // index
                            let base = pop(&mut stack);
                            let dst = solver.fresh();
                            add_load(&mut solver, &field_var, smash, base, ELEM_KEY, dst);
                            stack.push(Sv::Var(dst));
                        }
                        Instr::AStore => {
                            let val = pop(&mut stack);
                            pop(&mut stack); // index
                            let base = pop(&mut stack);
                            add_store(&mut solver, &field_var, smash, base, ELEM_KEY, val);
                            record_base(&mut direct_elem_stores[fi], base);
                        }
                        Instr::Call(callee) => {
                            let ci = callee.0 as usize;
                            calls[fi].push(ci);
                            let n_params = program.functions[ci].n_params;
                            for p in (0..n_params).rev() {
                                let a = pop(&mut stack);
                                solver.flow_into(a, local_var(ci, Local(p)));
                            }
                            if program.functions[ci].returns {
                                stack.push(Sv::Var(ret_var[ci]));
                            }
                        }
                        Instr::Return => {
                            let v = pop(&mut stack);
                            solver.flow_into(v, ret_var[fi]);
                        }
                        Instr::ReturnVoid | Instr::Halt => {}
                        other => {
                            // generic fallback by stack arity; no
                            // unmodeled instruction produces a
                            // reference, so pushing primitives is sound
                            if let Ok((pops, pushes)) = stack_effect(program, other) {
                                for _ in 0..pops {
                                    pop(&mut stack);
                                }
                                for _ in 0..pushes {
                                    stack.push(Sv::Prim);
                                }
                            } else {
                                stack.clear();
                            }
                        }
                    }
                }
            }
        }

        // initial propagation round covers everything seeded so far
        for v in 0..solver.pts.len() as u32 {
            solver.mark(v);
        }
        solver.solve(&field_var, smash);

        // -- per-function store summaries, closed over the call graph
        let mut summaries: Vec<StoreSummary> = (0..program.functions.len())
            .map(|fi| {
                let mut s = StoreSummary {
                    statics: direct_statics[fi].clone(),
                    field_sites: BitSet::new(n_sites + 1),
                    elem_sites: BitSet::new(n_sites + 1),
                };
                let absorb = |set: &mut BitSet, bases: &[BaseRef]| {
                    for b in bases {
                        match b {
                            BaseRef::Var(v) => {
                                set.union_with(&solver.pts[*v as usize]);
                            }
                            BaseRef::Site(sid) => {
                                set.insert(sid.0 as usize);
                            }
                            BaseRef::Unknown => {
                                for i in 0..=n_sites {
                                    set.insert(i);
                                }
                            }
                        }
                    }
                };
                absorb(&mut s.field_sites, &direct_field_stores[fi]);
                absorb(&mut s.elem_sites, &direct_elem_stores[fi]);
                s
            })
            .collect();
        loop {
            let mut changed = false;
            for fi in 0..summaries.len() {
                for &callee in &calls[fi] {
                    if callee == fi {
                        continue;
                    }
                    let (statics, fields, elems) = {
                        let c = &summaries[callee];
                        (
                            c.statics.clone(),
                            c.field_sites.clone(),
                            c.elem_sites.clone(),
                        )
                    };
                    let s = &mut summaries[fi];
                    let before = s.statics.len();
                    s.statics.extend(statics);
                    changed |= s.statics.len() != before;
                    changed |= s.field_sites.union_with(&fields);
                    changed |= s.elem_sites.union_with(&elems);
                }
            }
            if !changed {
                break;
            }
        }

        // -- escape analysis -----------------------------------------
        let mut escapes_static = BitSet::new(n_sites + 1);
        for &gv in &global_var {
            escapes_static.union_with(&solver.pts[gv as usize]);
        }
        // close over reference fields: anything an escaping object can
        // reach escapes too (including smash contents, which may have
        // been stored into any object's fields)
        loop {
            let mut changed = false;
            if !escapes_static.is_empty() {
                changed |= escapes_static.union_with(&solver.pts[smash as usize]);
            }
            if escapes_static.contains(n_sites) {
                for i in 0..n_sites {
                    changed |= escapes_static.insert(i);
                }
            }
            let reached: Vec<usize> = escapes_static.iter().filter(|&s| s < n_sites).collect();
            for s in reached {
                for ((site, _key), fv) in &field_var {
                    if *site == s as u32 {
                        changed |= escapes_static.union_with(&solver.pts[*fv as usize]);
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let mut escapes_arg = BitSet::new(n_sites + 1);
        for (fi, f) in program.functions.iter().enumerate() {
            for p in 0..f.n_params {
                for s in solver.pts[local_var(fi, Local(p)) as usize].iter() {
                    if s < n_sites && sites.get(SiteId(s as u32)).pc.func.0 as usize != fi {
                        escapes_arg.insert(s);
                    }
                }
            }
            for s in solver.pts[ret_var[fi] as usize].iter() {
                if s < n_sites && sites.get(SiteId(s as u32)).pc.func.0 as usize == fi {
                    escapes_arg.insert(s);
                }
            }
        }

        let stats = SolverStats {
            abstract_objects: n_sites,
            variables: solver.pts.len(),
            constraint_edges: solver.edge_set.len(),
            iterations: solver.iterations,
            wall_nanos: start.elapsed().as_nanos() as u64,
        };
        PointsTo {
            n_sites,
            sites,
            pts: solver.pts,
            local_base,
            summaries,
            escapes_static,
            escapes_arg,
            stats,
        }
    }

    /// Solver statistics for the `obs` registry.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// The program's allocation sites.
    pub fn sites(&self) -> &AllocSites {
        &self.sites
    }

    /// True when the site may be reachable from a static variable.
    pub fn escapes_via_static(&self, s: SiteId) -> bool {
        self.escapes_static.contains(s.0 as usize)
    }

    /// True when the site flows into another function's parameters or
    /// out of its allocating function through a return.
    pub fn escapes_via_arg(&self, s: SiteId) -> bool {
        self.escapes_arg.contains(s.0 as usize)
    }

    /// Per-function query view.
    pub fn view(&self, func: FuncId) -> FnView<'_> {
        FnView { pt: self, func }
    }

    fn local_pts(&self, func: FuncId, l: Local) -> &BitSet {
        &self.pts[(self.local_base[func.0 as usize] + u32::from(l.0)) as usize]
    }

    fn is_unknown(&self, set: &BitSet) -> bool {
        set.contains(self.n_sites)
    }

    fn sets_disjoint(&self, a: &BitSet, b: &BitSet) -> bool {
        if self.is_unknown(a) || self.is_unknown(b) {
            return false;
        }
        !a.iter().any(|s| b.contains(s))
    }
}

/// Points-to queries scoped to one function's locals.
#[derive(Debug, Clone, Copy)]
pub struct FnView<'a> {
    pt: &'a PointsTo,
    func: FuncId,
}

impl<'a> FnView<'a> {
    /// The whole-program facts behind this view.
    pub fn program(&self) -> &'a PointsTo {
        self.pt
    }

    /// True when the two locals provably never hold the same object:
    /// both points-to sets are fully known and share no allocation
    /// site.
    pub fn locals_disjoint(&self, a: Local, b: Local) -> bool {
        let (sa, sb) = (
            self.pt.local_pts(self.func, a),
            self.pt.local_pts(self.func, b),
        );
        self.pt.sets_disjoint(sa, sb)
    }

    /// Allocation sites the local may point to, with an unknown flag.
    /// Used by diagnostics.
    pub fn local_sites(&self, l: Local) -> (Vec<SiteId>, bool) {
        let set = self.pt.local_pts(self.func, l);
        let sites = set
            .iter()
            .filter(|&s| s < self.pt.n_sites)
            .map(|s| SiteId(s as u32))
            .collect();
        (sites, self.pt.is_unknown(set))
    }

    /// True when a call to `callee` may (transitively) write static
    /// `g`.
    pub fn callee_may_store_static(&self, callee: FuncId, g: GlobalId) -> bool {
        self.pt
            .summaries
            .get(callee.0 as usize)
            .is_none_or(|s| s.statics.contains(&g.0))
    }

    /// True when a call to `callee` may write a field of an object the
    /// local `base` can point to.
    pub fn callee_may_store_fields_of(&self, callee: FuncId, base: Local) -> bool {
        let Some(summary) = self.pt.summaries.get(callee.0 as usize) else {
            return true;
        };
        !self
            .pt
            .sets_disjoint(&summary.field_sites, self.pt.local_pts(self.func, base))
    }

    /// True when a call to `callee` may write an element of an array
    /// the local `base` can point to.
    pub fn callee_may_store_elems_of(&self, callee: FuncId, base: Local) -> bool {
        let Some(summary) = self.pt.summaries.get(callee.0 as usize) else {
            return true;
        };
        !self
            .pt
            .sets_disjoint(&summary.elem_sites, self.pt.local_pts(self.func, base))
    }
}

fn add_load(
    solver: &mut Solver,
    field_var: &HashMap<(u32, u32), u32>,
    smash: u32,
    base: Sv,
    key: u32,
    dst: u32,
) {
    match base {
        Sv::Var(b) => {
            solver.loads[b as usize].push((key, dst));
            solver.add_edge(smash, dst);
            solver.mark(b);
        }
        Sv::Site(s) => {
            if let Some(&fv) = field_var.get(&(s.0, key)) {
                solver.add_edge(fv, dst);
            }
            solver.add_edge(smash, dst);
        }
        Sv::Unknown => solver.seed_all(dst),
        Sv::Prim => {}
    }
}

fn add_store(
    solver: &mut Solver,
    field_var: &HashMap<(u32, u32), u32>,
    smash: u32,
    base: Sv,
    key: u32,
    val: Sv,
) {
    if matches!(val, Sv::Prim) {
        return;
    }
    match base {
        Sv::Var(b) => {
            if let Some(src) = solver.as_var(val) {
                solver.stores[b as usize].push((key, src));
                solver.mark(b);
            }
        }
        Sv::Site(s) => {
            if let Some(&fv) = field_var.get(&(s.0, key)) {
                solver.flow_into(val, fv);
            }
        }
        Sv::Unknown => solver.flow_into(val, smash),
        Sv::Prim => {}
    }
}

fn record_base(out: &mut Vec<BaseRef>, base: Sv) {
    match base {
        Sv::Var(v) => out.push(BaseRef::Var(v)),
        Sv::Site(s) => out.push(BaseRef::Site(s)),
        Sv::Unknown => out.push(BaseRef::Unknown),
        Sv::Prim => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::isa::Cond;
    use tvm::ProgramBuilder;

    #[test]
    fn two_lists_from_distinct_sites_are_disjoint() {
        // Two linked lists built from two allocation sites, each
        // traversed by a cursor local: the cursors must be provably
        // disjoint, and each must include its own site.
        let mut b = ProgramBuilder::new();
        let node = b.class(&[ElemKind::Int, ElemKind::Ref]); // {val, next}
        let main = b.function("main", 0, false, |f| {
            let (la, lb, i, ca, cb) = (f.local(), f.local(), f.local(), f.local(), f.local());
            f.cnull().st(la);
            f.cnull().st(lb);
            f.for_in(i, 0.into(), 8.into(), |f| {
                // prepend to list a
                f.newobject(node).dup().ld(la).putfield(1).st(la);
                // prepend to list b
                f.newobject(node).dup().ld(lb).putfield(1).st(lb);
            });
            // traverse list a
            f.ld(la).st(ca);
            f.while_icmp(
                Cond::Gt,
                |f| {
                    f.ld(i).ci(0);
                },
                |f| {
                    f.ld(ca).getfield(1).st(ca);
                    f.inc(i, -1);
                },
            );
            f.ld(lb).st(cb);
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let pt = PointsTo::analyze(&p);
        let v = pt.view(p.entry);
        let la = Local(0);
        let ca = Local(3);
        let cb = Local(4);
        let (ca_sites, ca_unknown) = v.local_sites(ca);
        assert!(!ca_unknown, "cursor provenance must stay known");
        assert_eq!(ca_sites.len(), 1, "one allocation site per list");
        assert!(v.locals_disjoint(ca, cb), "the two lists never share nodes");
        assert!(
            !v.locals_disjoint(ca, la),
            "a cursor aliases its own list head"
        );
    }

    #[test]
    fn disjoint_element_writes_through_arrays_of_objects() {
        // Two ref arrays filled with objects from two distinct sites;
        // elements loaded back out must be disjoint.
        let mut b = ProgramBuilder::new();
        let cls = b.class(&[ElemKind::Int]);
        let main = b.function("main", 0, false, |f| {
            let (aa, ab, i, oa, ob) = (f.local(), f.local(), f.local(), f.local(), f.local());
            f.ci(8).newarray(ElemKind::Ref).st(aa);
            f.ci(8).newarray(ElemKind::Ref).st(ab);
            f.for_in(i, 0.into(), 8.into(), |f| {
                f.ld(aa).ld(i).newobject(cls).astore();
                f.ld(ab).ld(i).newobject(cls).astore();
            });
            f.ld(aa).ci(0).aload().st(oa);
            f.ld(ab).ci(0).aload().st(ob);
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let pt = PointsTo::analyze(&p);
        let v = pt.view(p.entry);
        assert!(v.locals_disjoint(Local(0), Local(1)), "distinct arrays");
        assert!(
            v.locals_disjoint(Local(3), Local(4)),
            "elements come from distinct sites"
        );
    }

    #[test]
    fn object_stored_to_a_static_escapes() {
        let mut b = ProgramBuilder::new();
        let cls = b.class(&[ElemKind::Int, ElemKind::Ref]);
        let g = b.global(ElemKind::Ref);
        let main = b.function("main", 0, false, |f| {
            let (escaping, private) = (f.local(), f.local());
            f.newobject(cls).st(escaping);
            f.newobject(cls).st(private);
            // the private object is reachable *from* the escaping one
            let reachable = f.local();
            f.newobject(cls).st(reachable);
            f.ld(escaping).ld(reachable).putfield(1);
            f.ld(escaping).putstatic(g);
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let pt = PointsTo::analyze(&p);
        let ids: Vec<SiteId> = pt.sites().iter().map(|s| s.id).collect();
        assert_eq!(ids.len(), 3);
        assert!(pt.escapes_via_static(ids[0]), "stored to the static");
        assert!(!pt.escapes_via_static(ids[1]), "never leaves the frame");
        assert!(
            pt.escapes_via_static(ids[2]),
            "reachable through the escaping object's field"
        );
    }

    #[test]
    fn recursive_call_cycle_terminates_and_propagates() {
        // rec(n, node) calls itself; the node parameter's points-to
        // set must reach the recursive frame and the solver must hit
        // fixpoint.
        let mut b = ProgramBuilder::new();
        let cls = b.class(&[ElemKind::Int]);
        let rec = b.declare("rec", 2, false);
        b.define(rec, |f| {
            let (n, node) = (f.param(0), f.param(1));
            f.if_icmp(
                Cond::Gt,
                |f| {
                    f.ld(n).ci(0);
                },
                |f| {
                    f.ld(n).ci(1).isub();
                    f.ld(node);
                    f.call(rec);
                },
            );
            f.ret_void();
        });
        let main = b.function("main", 0, false, |f| {
            let o = f.local();
            f.newobject(cls).st(o);
            f.ci(3).ld(o).call(rec);
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let pt = PointsTo::analyze(&p);
        let site = pt.sites().iter().next().unwrap().id;
        assert!(pt.escapes_via_arg(site), "passed into rec");
        let v = pt.view(rec);
        let (sites, unknown) = v.local_sites(Local(1));
        assert!(!unknown);
        assert_eq!(sites, vec![site], "the parameter sees main's object");
        assert!(pt.stats().iterations > 0);
        assert!(pt.stats().abstract_objects == 1);
    }

    #[test]
    fn callee_store_summaries_are_transitive_and_precise() {
        // leaf writes g0; mid calls leaf; main's loop calls mid. The
        // summary must say mid may store g0 but not g1, and nothing
        // about arrays.
        let mut b = ProgramBuilder::new();
        let g0 = b.global(ElemKind::Int);
        let g1 = b.global(ElemKind::Int);
        let leaf = b.declare("leaf", 0, false);
        b.define(leaf, |f| {
            f.ci(1).putstatic(g0);
            f.ret_void();
        });
        let mid = b.declare("mid", 0, false);
        b.define(mid, |f| {
            f.call(leaf);
            f.ret_void();
        });
        let main = b.function("main", 0, false, |f| {
            f.call(mid);
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let pt = PointsTo::analyze(&p);
        let v = pt.view(p.entry);
        assert!(v.callee_may_store_static(mid, g0));
        assert!(!v.callee_may_store_static(mid, g1));
        assert!(!v.callee_may_store_elems_of(mid, Local(0)));
    }

    #[test]
    fn unknown_provenance_defeats_disjointness() {
        // An object loaded back out of a static has unknown-free but
        // static-reachable provenance; one loaded from an int cast
        // chain does not occur — instead check that a ref read from a
        // static global aliases what was stored there.
        let mut b = ProgramBuilder::new();
        let cls = b.class(&[ElemKind::Int]);
        let g = b.global(ElemKind::Ref);
        let main = b.function("main", 0, false, |f| {
            let (o, back) = (f.local(), f.local());
            f.newobject(cls).st(o);
            f.ld(o).putstatic(g);
            f.getstatic(g).st(back);
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let pt = PointsTo::analyze(&p);
        let v = pt.view(p.entry);
        assert!(
            !v.locals_disjoint(Local(0), Local(1)),
            "round-trip through the static must alias"
        );
    }
}
