//! # cfgir — candidate-STL extraction for TraceVM bytecode
//!
//! This crate is the static-analysis half of the Jrpm compiler from
//! *TEST: A Tracer for Extracting Speculative Threads* (CGO 2003,
//! §4.1): it derives a control-flow graph from each compiled method,
//! identifies **all natural loops**, and screens them *optimistically*
//! into candidate speculative thread loops (STLs):
//!
//! * loops are chosen from the CFG with no attempt at array dependence
//!   or pointer analysis — the TEST hardware, not the compiler, judges
//!   parallelism;
//! * **loop inductors** (`i += c` style variables the speculative
//!   compiler can privatize) are recognized and ignored so potentially
//!   parallel loops are not overlooked;
//! * **reductions** (`s = s op expr` accumulators the compiler
//!   transforms at loop shutdown, Table 2) are likewise recognized;
//! * only *obvious* fully serializing scalar dependencies
//!   (an end-of-loop store feeding a start-of-loop load of the same
//!   non-inductor local) disqualify a loop.
//!
//! The crate also computes the per-method set of *context local
//! variables* each candidate loop must have annotated with `lwl`/`swl`,
//! which the `jrpm` annotation pass turns into instrumented code.
//!
//! ```
//! use tvm::ProgramBuilder;
//! use cfgir::extract_candidates;
//!
//! # fn main() -> Result<(), tvm::VmError> {
//! let mut b = ProgramBuilder::new();
//! let main = b.function("main", 0, false, |f| {
//!     let (s, i) = (f.local(), f.local());
//!     f.ci(0).st(s);
//!     f.for_in(i, 0.into(), 100.into(), |f| {
//!         f.ld(s).ld(i).iadd().st(s);
//!     });
//!     f.ret_void();
//! });
//! let program = b.finish(main)?;
//! let cands = extract_candidates(&program);
//! assert_eq!(cands.candidates.len(), 1); // one natural loop, qualified
//! # Ok(())
//! # }
//! ```

pub mod access;
pub mod candidates;
pub mod cfg;
pub mod dataflow;
pub mod dom;
pub mod loops;
pub mod memdep;
pub mod pointsto;
pub mod rescue;
pub mod scalar;
pub mod scev;
pub mod slice;

pub use access::{
    overlap_kind, same_iteration_blocker, same_iteration_disjoint, strongly_disjoint, Access,
    AccessSite, BlockKind, DepWitness, Sym,
};
pub use candidates::{
    distance_floor, distance_floors, extract_candidates, extract_candidates_with,
    prescreen_candidate, prescreen_candidate_with_distance, Candidate, FunctionAnalysis, Prescreen,
    ProgramCandidates, StaticVerdict,
};
pub use cfg::{Block, BlockId, Cfg};
pub use dataflow::{solve, Analysis, BitSet, Direction, Liveness, ReachingDefs, Solution};
pub use dom::Dominators;
pub use loops::{LoopForest, NaturalLoop};
pub use memdep::{
    affine_sites, analyze_loop, classify_loop_pairs, classify_loop_pairs_evo, masking_witness,
    AccessPair, DepKind, GuaranteedDep, PairVerdict,
};
pub use pointsto::{FnView, PointsTo, SolverStats};
pub use rescue::{
    rescue_loop, rescue_program, Channel, LegalityProof, RescueOutcome, RescueRejection,
    RescuedLoop, Transform,
};
pub use scalar::LocalClasses;
pub use scev::{Evolution, LoopEvolutions};
pub use slice::{extract_slices, LoopSlices, Slice, SliceCert, SliceScalar};
