//! Pre-computation slices for loop-carried scalars.
//!
//! The Prophet execution model cuts speculative-thread restarts by
//! *pre-computing* the next iteration's value of each loop-carried
//! scalar in a small backward slice executed ahead of the thread
//! (PAPERS.md: *Prophet: A Speculative Multi-threading Execution
//! Model*). This module extracts those slices statically for every
//! scalar [`crate::scev`] proves a closed-form evolution for:
//!
//! * the **slice** is the minimal set of loop-body instructions that
//!   produces the scalar's next value (the update sites plus their
//!   in-block operand producers);
//! * the **certificate** ([`SliceCert`]) is the machine-checkable
//!   claim that executing the slice is equivalent to evaluating the
//!   evolution: the live-in scalars it reads, the evolution itself,
//!   and an upper bound on its per-iteration cost.
//!
//! Mirroring `rescue::verify`, every certificate is re-derived from
//! scratch by an **independent verifier** ([`verify::check_slice`])
//! that deliberately shares no code with the extractor: the extractor
//! trusts the scev dataflow fixpoint, the verifier pattern-matches the
//! loop body directly. [`extract_slices`] only returns slices whose
//! certificate the verifier accepted; the rejected count is surfaced
//! so a matcher/verifier divergence is visible instead of silent.
//!
//! Dynamically, `jrpm::agreement` replays every benchmark and checks
//! each slice's predicted per-iteration value against the observed
//! store stream — the same static-claim-vs-dynamic-truth contract the
//! points-to pre-screen and the rescue transforms already live under.

pub mod verify;

use std::collections::BTreeSet;

use tvm::isa::{GlobalId, Instr, Local};
use tvm::program::{Function, Program};
use tvm::verify::stack_effect;

use crate::cfg::Cfg;
use crate::loops::LoopForest;
use crate::scev::{Evolution, LoopEvolutions};

/// The scalar a pre-computation slice predicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SliceScalar {
    /// A local slot of the loop's function.
    Local(Local),
    /// A static variable.
    Static(GlobalId),
}

impl std::fmt::Display for SliceScalar {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SliceScalar::Local(l) => write!(out, "local v{}", l.0),
            SliceScalar::Static(g) => write!(out, "static g{}", g.0),
        }
    }
}

/// The machine-checkable claim attached to a [`Slice`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceCert {
    /// Scalars whose value at iteration entry the slice reads. Either
    /// `[scalar]` (the evolution is a function of the previous value)
    /// or empty (a constant recurrence).
    pub inputs: Vec<SliceScalar>,
    /// The per-iteration evolution the slice claims to compute.
    pub evolution: Evolution,
    /// Upper bound on the number of instructions the slice executes
    /// per predicted iteration.
    pub cost: u32,
}

/// A pre-computation slice for one loop-carried scalar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Slice {
    /// The predicted scalar.
    pub scalar: SliceScalar,
    /// Instruction indices (in the loop's function) forming the
    /// backward slice: the scalar's update sites plus the in-block
    /// producers of their operands, in ascending order.
    pub instrs: Vec<u32>,
    /// The claim, re-derived by [`verify::check_slice`].
    pub cert: SliceCert,
}

/// What [`extract_slices`] found for one loop.
#[derive(Debug, Clone, Default)]
pub struct LoopSlices {
    /// Slices whose certificate the independent verifier accepted.
    pub slices: Vec<Slice>,
    /// Closed-form evolutions the verifier could not re-derive
    /// (conservatively dropped; non-zero values flag an extractor/
    /// verifier divergence worth investigating).
    pub rejected: usize,
}

/// Extracts a certified pre-computation slice for every loop-carried
/// scalar of loop `loop_idx` with a closed-form evolution.
///
/// Loop-carried means *written inside the loop*: read-only scalars
/// need no pre-computation. Locals qualify through the affine
/// (inductor) form; statics through affine, invariant-rewrite, and
/// linear-recurrence forms.
pub fn extract_slices(
    program: &Program,
    f: &Function,
    cfg: &Cfg,
    forest: &LoopForest,
    loop_idx: usize,
    evo: &LoopEvolutions,
) -> LoopSlices {
    let lp = &forest.loops[loop_idx];
    let mut out = LoopSlices::default();

    let mut consider = |scalar: SliceScalar, evolution: Evolution, instrs: Vec<u32>| {
        if instrs.is_empty() {
            return; // not loop-carried: nothing to pre-compute
        }
        let inputs = if matches!(evolution, Evolution::Recurrence { mul: 0, .. }) {
            Vec::new()
        } else {
            vec![scalar]
        };
        let slice = Slice {
            scalar,
            cert: SliceCert {
                inputs,
                evolution,
                cost: instrs.len() as u32,
            },
            instrs,
        };
        match verify::check_slice(program, f, cfg, forest, loop_idx, &slice) {
            Ok(()) => out.slices.push(slice),
            Err(_) => out.rejected += 1,
        }
    };

    for (&l, &evolution) in &evo.locals {
        if let Evolution::Affine { .. } = evolution {
            let defs = local_update_sites(f, cfg, lp, l);
            consider(SliceScalar::Local(l), evolution, defs);
        }
    }
    for (&g, &evolution) in &evo.statics {
        if evolution.is_closed_form() {
            let instrs = static_slice_instrs(program, f, cfg, lp, g);
            consider(SliceScalar::Static(g), evolution, instrs);
        }
    }
    out.slices.sort_by_key(|s| s.scalar);
    out
}

/// All instructions that define local `l` inside the loop.
fn local_update_sites(
    f: &Function,
    cfg: &Cfg,
    lp: &crate::loops::NaturalLoop,
    l: Local,
) -> Vec<u32> {
    let mut defs = Vec::new();
    for &b in &lp.blocks {
        for idx in cfg.instrs_of(b) {
            match f.code[idx as usize] {
                Instr::IInc(x, _) | Instr::Store(x) if x == l => defs.push(idx),
                Instr::Swl(v) if Local(v) == l => defs.push(idx),
                _ => {}
            }
        }
    }
    defs.sort_unstable();
    defs
}

/// The backward slice of every `PutStatic(g)` in the loop: each store
/// plus the in-block producers of its stored operand, found by a
/// provenance stack walk (each stack value carries the set of
/// instruction indices that computed it).
fn static_slice_instrs(
    program: &Program,
    f: &Function,
    cfg: &Cfg,
    lp: &crate::loops::NaturalLoop,
    g: GlobalId,
) -> Vec<u32> {
    let mut slice: BTreeSet<u32> = BTreeSet::new();
    for &b in &lp.blocks {
        let mut stack: Vec<BTreeSet<u32>> = Vec::new();
        for idx in cfg.instrs_of(b) {
            let instr = &f.code[idx as usize];
            if let Instr::PutStatic(tgt) = instr {
                let operand = stack.pop().unwrap_or_default();
                if *tgt == g {
                    slice.extend(operand);
                    slice.insert(idx);
                }
                continue;
            }
            let (pops, pushes) = stack_effect(program, instr).unwrap_or((0, 0));
            let mut merged = BTreeSet::new();
            for _ in 0..pops {
                if let Some(s) = stack.pop() {
                    merged.extend(s);
                }
            }
            merged.insert(idx);
            for _ in 0..pushes {
                stack.push(merged.clone());
            }
        }
    }
    slice.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Dominators;
    use crate::scev;
    use tvm::isa::Cond;
    use tvm::{ElemKind, ProgramBuilder};

    fn slices_of(p: &Program) -> LoopSlices {
        let f = &p.functions[p.entry.0 as usize];
        let cfg = Cfg::build(f);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::build(&cfg, &dom);
        assert_eq!(forest.len(), 1, "test programs must have one loop");
        let evo = scev::analyze_loop(p, f, &cfg, &forest.loops[0]);
        extract_slices(p, f, &cfg, &forest, 0, &evo)
    }

    #[test]
    fn inductor_and_accumulator_slices_are_certified() {
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, false, |f| {
            let i = f.local();
            f.for_in(i, 0.into(), 10.into(), |f| {
                f.getstatic(g).ci(3).iadd().putstatic(g);
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let out = slices_of(&p);
        assert_eq!(out.rejected, 0);
        assert_eq!(out.slices.len(), 2, "{:?}", out.slices);
        let ind = &out.slices[0];
        assert_eq!(ind.scalar, SliceScalar::Local(Local(0)));
        assert_eq!(ind.cert.evolution, Evolution::Affine { stride: 1 });
        assert_eq!(ind.cert.inputs, vec![SliceScalar::Local(Local(0))]);
        let acc = &out.slices[1];
        assert_eq!(acc.scalar, SliceScalar::Static(g));
        assert_eq!(acc.cert.evolution, Evolution::Affine { stride: 3 });
        // the backward slice is getstatic, const, add, putstatic
        assert_eq!(acc.instrs.len(), 4);
        assert_eq!(acc.cert.cost, 4);
    }

    #[test]
    fn recurrence_slice_is_certified() {
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, false, |f| {
            let i = f.local();
            f.for_in(i, 0.into(), 8.into(), |f| {
                f.getstatic(g).ci(2).imul().ci(1).iadd().putstatic(g);
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let out = slices_of(&p);
        assert_eq!(out.rejected, 0);
        let rec = out
            .slices
            .iter()
            .find(|s| s.scalar == SliceScalar::Static(g))
            .expect("recurrence slice");
        assert_eq!(rec.cert.evolution, Evolution::Recurrence { mul: 2, add: 1 });
        assert_eq!(rec.cert.inputs, vec![SliceScalar::Static(g)]);
    }

    #[test]
    fn conditional_update_yields_no_slice() {
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, false, |f| {
            let i = f.local();
            f.for_in(i, 0.into(), 8.into(), |f| {
                f.if_icmp(
                    Cond::Lt,
                    |f| {
                        f.ld(i).ci(4);
                    },
                    |f| {
                        f.getstatic(g).ci(3).iadd().putstatic(g);
                    },
                );
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let out = slices_of(&p);
        assert!(
            out.slices
                .iter()
                .all(|s| s.scalar != SliceScalar::Static(g)),
            "a guarded update has no closed form: {:?}",
            out.slices
        );
        assert_eq!(out.rejected, 0, "scev already refuses the claim");
    }

    #[test]
    fn read_only_scalars_produce_no_slice() {
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, false, |f| {
            let i = f.local();
            let t = f.local();
            f.for_in(i, 0.into(), 8.into(), |f| {
                f.getstatic(g).st(t);
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let out = slices_of(&p);
        assert!(out
            .slices
            .iter()
            .all(|s| s.scalar != SliceScalar::Static(g)));
    }

    /// Sabotage: corrupting any certificate field must be caught by
    /// the independent verifier — the extractor's output is not
    /// trusted by construction.
    #[test]
    fn sabotaged_certs_are_rejected() {
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, false, |f| {
            let i = f.local();
            f.for_in(i, 0.into(), 10.into(), |f| {
                f.getstatic(g).ci(3).iadd().putstatic(g);
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let f = &p.functions[p.entry.0 as usize];
        let cfg = Cfg::build(f);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::build(&cfg, &dom);
        let evo = scev::analyze_loop(&p, f, &cfg, &forest.loops[0]);
        let out = extract_slices(&p, f, &cfg, &forest, 0, &evo);
        let good = out
            .slices
            .iter()
            .find(|s| s.scalar == SliceScalar::Static(g))
            .expect("accumulator slice");
        assert!(verify::check_slice(&p, f, &cfg, &forest, 0, good).is_ok());

        // wrong stride
        let mut bad = good.clone();
        bad.cert.evolution = Evolution::Affine { stride: 4 };
        assert!(verify::check_slice(&p, f, &cfg, &forest, 0, &bad).is_err());

        // wrong evolution shape
        let mut bad = good.clone();
        bad.cert.evolution = Evolution::Recurrence { mul: 2, add: 3 };
        assert!(verify::check_slice(&p, f, &cfg, &forest, 0, &bad).is_err());

        // understated cost bound
        let mut bad = good.clone();
        bad.cert.cost = 1;
        assert!(verify::check_slice(&p, f, &cfg, &forest, 0, &bad).is_err());

        // missing live-in
        let mut bad = good.clone();
        bad.cert.inputs.clear();
        assert!(verify::check_slice(&p, f, &cfg, &forest, 0, &bad).is_err());

        // slice missing its own store site
        let mut bad = good.clone();
        bad.instrs = Vec::new();
        assert!(verify::check_slice(&p, f, &cfg, &forest, 0, &bad).is_err());

        // scalar swapped to one the loop never writes
        let mut bad = good.clone();
        bad.scalar = SliceScalar::Static(GlobalId(g.0 + 1));
        assert!(verify::check_slice(&p, f, &cfg, &forest, 0, &bad).is_err());
    }
}
