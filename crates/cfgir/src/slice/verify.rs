//! # Independent certificate checking for pre-computation slices
//!
//! [`check_slice`] re-derives every claim in a [`super::SliceCert`] from the
//! loop body itself, deliberately sharing **no code** with the
//! extractor in the parent module: where the extractor trusts the
//! [`crate::scev`] dataflow fixpoint, the checker pattern-matches the
//! update sites directly — it finds the scalar's definition
//! instructions, proves each executes exactly once per iteration
//! (dominates every latch, outside any nested loop), interprets the
//! stored expression with its own single-variable abstract stack
//! machine, and compares the recomposed per-iteration transform
//! against the certificate. A bug on either side surfaces as a
//! rejection; the unit tests in the parent module feed sabotaged
//! certificates through here to prove it.
//!
//! What is re-derived, per claim:
//!
//! * the scalar really is loop-carried (at least one update site);
//! * every update site runs exactly once per completed iteration;
//! * the recomposed transform equals the claimed [`Evolution`];
//! * the claimed live-ins match what the update expression reads;
//! * the claimed cost bound covers the instructions the slice needs;
//! * the claimed slice instruction set contains every update site and
//!   stays inside the loop body.

use super::{Slice, SliceScalar};
use crate::access::transitive_store_effects;
use crate::cfg::{BlockId, Cfg};
use crate::dom::Dominators;
use crate::loops::{LoopForest, NaturalLoop};
use crate::scev::Evolution;
use tvm::isa::{GlobalId, Instr, Local};
use tvm::program::{Function, Program};
use tvm::verify::stack_effect;

/// An abstract stack value during the verifier's own walk: a linear
/// form over the tracked scalar's value at iteration entry, plus the
/// number of instructions that computed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Av {
    /// `mul * entry + add`, computed by `ops` instructions.
    Lin {
        mul: i64,
        add: i64,
        ops: u32,
    },
    Other,
}

impl Av {
    fn konst(c: i64) -> Av {
        Av::Lin {
            mul: 0,
            add: c,
            ops: 1,
        }
    }
}

/// Checks `slice` against the loop `loop_idx` of `f`. `Ok(())` means
/// every certificate claim was re-derived; `Err` carries the first
/// violation.
pub fn check_slice(
    program: &Program,
    f: &Function,
    cfg: &Cfg,
    forest: &LoopForest,
    loop_idx: usize,
    slice: &Slice,
) -> Result<(), String> {
    let lp = &forest.loops[loop_idx];
    if matches!(slice.cert.evolution, Evolution::BoundedUnknown) {
        return Err("a slice cannot claim an unknown evolution".into());
    }
    // Claimed instructions must stay inside the loop body.
    for &idx in &slice.instrs {
        let inside = cfg.block_of(idx).is_some_and(|b| lp.blocks.contains(&b));
        if !inside {
            return Err(format!("slice instruction {idx} is outside the loop"));
        }
    }
    let dom = Dominators::compute(cfg);
    match slice.scalar {
        SliceScalar::Local(l) => check_local(f, cfg, &dom, forest, loop_idx, l, slice),
        SliceScalar::Static(g) => check_static(program, f, cfg, &dom, forest, loop_idx, g, slice),
    }
}

/// True when `b` executes exactly once per completed iteration of
/// `lp`: it dominates every latch (on every path that completes the
/// iteration) and sits in no nested loop (not repeated within one).
fn once_per_iteration(
    dom: &Dominators,
    forest: &LoopForest,
    loop_idx: usize,
    lp: &NaturalLoop,
    b: BlockId,
) -> bool {
    lp.latches.iter().all(|&latch| dom.dominates(b, latch))
        && !forest.loops.iter().enumerate().any(|(j, inner)| {
            j != loop_idx && lp.blocks.contains(&inner.header) && inner.blocks.contains(&b)
        })
}

fn check_local(
    f: &Function,
    cfg: &Cfg,
    dom: &Dominators,
    forest: &LoopForest,
    loop_idx: usize,
    l: Local,
    slice: &Slice,
) -> Result<(), String> {
    let lp = &forest.loops[loop_idx];
    let Evolution::Affine { stride } = slice.cert.evolution else {
        return Err(format!(
            "local slices must claim an affine evolution, got {:?}",
            slice.cert.evolution
        ));
    };
    let mut net: i64 = 0;
    let mut defs: Vec<u32> = Vec::new();
    for &b in &lp.blocks {
        for idx in cfg.instrs_of(b) {
            match f.code[idx as usize] {
                Instr::IInc(x, by) if x == l => {
                    if !once_per_iteration(dom, forest, loop_idx, lp, b) {
                        return Err(format!(
                            "increment at {idx} does not run exactly once per iteration"
                        ));
                    }
                    net = net.wrapping_add(i64::from(by));
                    defs.push(idx);
                }
                Instr::Store(x) if x == l => {
                    return Err(format!("general store of v{} at {idx}", l.0));
                }
                Instr::Swl(v) if Local(v) == l => {
                    return Err(format!("general store of v{} at {idx}", l.0));
                }
                _ => {}
            }
        }
    }
    if defs.is_empty() {
        return Err(format!("v{} is not loop-carried", l.0));
    }
    if net != stride {
        return Err(format!("claimed stride {stride}, increments sum to {net}"));
    }
    if slice.cert.inputs != vec![SliceScalar::Local(l)] {
        return Err("an affine slice reads exactly its own previous value".into());
    }
    if u64::from(slice.cert.cost) < defs.len() as u64 {
        return Err(format!(
            "cost bound {} below the {} update sites",
            slice.cert.cost,
            defs.len()
        ));
    }
    for d in &defs {
        if !slice.instrs.contains(d) {
            return Err(format!("slice misses update site {d}"));
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn check_static(
    program: &Program,
    f: &Function,
    cfg: &Cfg,
    dom: &Dominators,
    forest: &LoopForest,
    loop_idx: usize,
    g: GlobalId,
    slice: &Slice,
) -> Result<(), String> {
    let lp = &forest.loops[loop_idx];
    // No callee may write any static: a hidden store would invalidate
    // the per-iteration transform (and the entry-value the expression
    // reads).
    let effects = transitive_store_effects(program);
    for &b in &lp.blocks {
        for idx in cfg.instrs_of(b) {
            if let Instr::Call(callee) = f.code[idx as usize] {
                if effects.get(callee.0 as usize).is_some_and(|e| e[0]) {
                    return Err(format!("call at {idx} may store statics"));
                }
            }
        }
    }

    // Interpret each storing block with a single-variable abstract
    // machine; blocks that store `g` must run exactly once per
    // iteration, so their net transforms compose in dominance order.
    let mut storing: Vec<(BlockId, i64, i64, u32, Vec<u32>)> = Vec::new();
    for &b in &lp.blocks {
        let (stores, transform) = walk_block(program, f, cfg, b, g)?;
        if stores.is_empty() {
            continue;
        }
        if !once_per_iteration(dom, forest, loop_idx, lp, b) {
            return Err(format!(
                "stores of g{} in block {} do not run exactly once per iteration",
                g.0, b.0
            ));
        }
        let Av::Lin { mul, add, ops } = transform else {
            return Err(format!("stored expression in block {} is not linear", b.0));
        };
        storing.push((b, mul, add, ops, stores));
    }
    if storing.is_empty() {
        return Err(format!("g{} is not loop-carried", g.0));
    }
    // Blocks that each dominate every latch form a dominance chain;
    // composing in that order reproduces execution order.
    storing.sort_by(|a, b| {
        if a.0 == b.0 {
            std::cmp::Ordering::Equal
        } else if dom.dominates(a.0, b.0) {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Greater
        }
    });
    let (mut mul, mut add, mut cost): (i64, i64, u64) = (1, 0, 0);
    let mut sites: Vec<u32> = Vec::new();
    for (_, m, a, ops, stores) in storing {
        // compose: v ↦ m*(mul*v + add) + a
        mul = m.wrapping_mul(mul);
        add = m.wrapping_mul(add).wrapping_add(a);
        cost += u64::from(ops);
        sites.extend(stores);
    }

    let derived = match (mul, add) {
        (1, 0) => Evolution::Invariant,
        (1, s) => Evolution::Affine { stride: s },
        (m, a) => Evolution::Recurrence { mul: m, add: a },
    };
    if derived != slice.cert.evolution {
        return Err(format!(
            "claimed {:?}, loop body computes {:?}",
            slice.cert.evolution, derived
        ));
    }
    let expect_inputs: Vec<SliceScalar> = if mul == 0 {
        Vec::new()
    } else {
        vec![SliceScalar::Static(g)]
    };
    if slice.cert.inputs != expect_inputs {
        return Err(format!(
            "claimed live-ins {:?}, expression needs {:?}",
            slice.cert.inputs, expect_inputs
        ));
    }
    if u64::from(slice.cert.cost) < cost {
        return Err(format!(
            "cost bound {} below the {} instructions the slice needs",
            slice.cert.cost, cost
        ));
    }
    for s in &sites {
        if !slice.instrs.contains(s) {
            return Err(format!("slice misses store site {s}"));
        }
    }
    Ok(())
}

/// Interprets block `b` with the verifier's abstract machine, tracking
/// the current value of `g` as a linear form over its value at block
/// entry. Returns the store sites of `g` and the block's net transform
/// (with its instruction-count cost).
fn walk_block(
    program: &Program,
    f: &Function,
    cfg: &Cfg,
    b: BlockId,
    g: GlobalId,
) -> Result<(Vec<u32>, Av), String> {
    let mut stack: Vec<Av> = Vec::new();
    // current value of g relative to block entry, and the cost of the
    // expressions stored so far
    let mut cur = Av::Lin {
        mul: 1,
        add: 0,
        ops: 0,
    };
    let mut stores = Vec::new();
    for idx in cfg.instrs_of(b) {
        let instr = &f.code[idx as usize];
        match *instr {
            Instr::IConst(c) => stack.push(Av::konst(c)),
            Instr::GetStatic(x) if x == g => {
                let Av::Lin { mul, add, ops } = cur else {
                    return Err(format!("read of g{} after a non-linear store", g.0));
                };
                stack.push(Av::Lin {
                    mul,
                    add,
                    ops: ops + 1,
                });
            }
            Instr::PutStatic(x) if x == g => {
                let v = stack.pop().unwrap_or(Av::Other);
                stores.push(idx);
                cur = match v {
                    // +1 for the store itself
                    Av::Lin { mul, add, ops } => Av::Lin {
                        mul,
                        add,
                        ops: ops + 1,
                    },
                    Av::Other => Av::Other,
                };
            }
            Instr::IAdd => {
                let rhs = stack.pop().unwrap_or(Av::Other);
                let lhs = stack.pop().unwrap_or(Av::Other);
                stack.push(combine(lhs, rhs));
            }
            Instr::ISub => {
                let rhs = stack.pop().unwrap_or(Av::Other);
                let lhs = stack.pop().unwrap_or(Av::Other);
                let neg = match rhs {
                    Av::Lin { mul, add, ops } => Av::Lin {
                        mul: mul.wrapping_neg(),
                        add: add.wrapping_neg(),
                        ops,
                    },
                    Av::Other => Av::Other,
                };
                stack.push(combine(lhs, neg));
            }
            Instr::IMul => {
                let rhs = stack.pop().unwrap_or(Av::Other);
                let lhs = stack.pop().unwrap_or(Av::Other);
                let v = match (lhs, rhs) {
                    (
                        Av::Lin {
                            mul: 0,
                            add: c,
                            ops: o1,
                        },
                        Av::Lin { mul, add, ops: o2 },
                    )
                    | (
                        Av::Lin { mul, add, ops: o2 },
                        Av::Lin {
                            mul: 0,
                            add: c,
                            ops: o1,
                        },
                    ) => Av::Lin {
                        mul: mul.wrapping_mul(c),
                        add: add.wrapping_mul(c),
                        ops: o1 + o2 + 1,
                    },
                    _ => Av::Other,
                };
                stack.push(v);
            }
            Instr::INeg => {
                let v = match stack.pop().unwrap_or(Av::Other) {
                    Av::Lin { mul, add, ops } => Av::Lin {
                        mul: mul.wrapping_neg(),
                        add: add.wrapping_neg(),
                        ops: ops + 1,
                    },
                    Av::Other => Av::Other,
                };
                stack.push(v);
            }
            Instr::Dup => {
                let v = stack.last().copied().unwrap_or(Av::Other);
                stack.push(v);
            }
            Instr::Swap => {
                let n = stack.len();
                if n >= 2 {
                    stack.swap(n - 1, n - 2);
                } else {
                    stack.clear();
                }
            }
            Instr::Pop => {
                stack.pop();
            }
            _ => {
                let (pops, pushes) = stack_effect(program, instr).unwrap_or((0, 0));
                for _ in 0..pops {
                    stack.pop();
                }
                for _ in 0..pushes {
                    stack.push(Av::Other);
                }
            }
        }
    }
    Ok((stores, cur))
}

/// Adds two linear forms (the muls and constants add; the consuming
/// arithmetic instruction contributes one op).
fn combine(a: Av, b: Av) -> Av {
    match (a, b) {
        (
            Av::Lin {
                mul: m1,
                add: a1,
                ops: o1,
            },
            Av::Lin {
                mul: m2,
                add: a2,
                ops: o2,
            },
        ) => Av::Lin {
            mul: m1.wrapping_add(m2),
            add: a1.wrapping_add(a2),
            ops: o1 + o2 + 1,
        },
        _ => Av::Other,
    }
}
