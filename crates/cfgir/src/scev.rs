//! Scalar-evolution analysis: closed-form per-iteration evolutions.
//!
//! For each candidate loop this pass computes, per scalar (local slot
//! or static variable), how one completed iteration transforms the
//! scalar's value — the *scalar evolution* in the SSA-less, stack
//! machine setting of the TVM. The result is a small lattice:
//!
//! * [`Evolution::Invariant`] — every completed iteration leaves the
//!   value unchanged (either untouched, or rewritten to itself);
//! * [`Evolution::Affine`] — `v_{k+1} = v_k + stride`, i.e. the value
//!   at the start of iteration `k` is `v_0 + k*stride` (the classical
//!   `base + i*stride` closed form; loop inductors land here);
//! * [`Evolution::Recurrence`] — `v_{k+1} = mul*v_k + add`, a linear
//!   recurrence that is still *predictable* one iteration ahead given
//!   the current value (Prophet-style pre-computation can evaluate it
//!   in O(1) per iteration even without a closed form in `k`);
//! * [`Evolution::BoundedUnknown`] — the scalar is written but no
//!   per-iteration transform could be proven. No claim is made beyond
//!   "a write happens".
//!
//! The analysis is a worklist dataflow problem over [`crate::dataflow`]
//! — the same solver that powers reaching definitions and the
//! loop-scoped exposure analysis. Facts flow *forward* through the
//! loop body with the back edges cut ([`Analysis::edge_enabled`]), so
//! the fact at a latch exit describes the net effect of exactly one
//! iteration as a per-scalar linear transform. Conditional updates,
//! updates inside nested loops, and opaque calls all join to the
//! unknown transform, which keeps every claim sound.
//!
//! Downstream consumers:
//!
//! * [`crate::memdep::classify_loop_pairs_evo`] turns evolutions of
//!   inductors into dependence *distance vectors* for affine access
//!   pairs ([`crate::memdep::PairVerdict::DistanceAtLeast`]);
//! * [`crate::slice`] extracts a pre-computation slice per scalar with
//!   a closed-form evolution and certifies it
//!   ([`crate::slice::SliceCert`]);
//! * `jrpm::agreement` replays each benchmark and checks every claimed
//!   evolution against the observed value stream.

use std::collections::BTreeMap;

use tvm::isa::{GlobalId, Instr, Local};
use tvm::program::{Function, Program};
use tvm::verify::stack_effect;

use crate::access::transitive_store_effects;
use crate::cfg::{BlockId, Cfg};
use crate::dataflow::{solve, Analysis, Direction};
use crate::loops::NaturalLoop;

/// The per-iteration evolution claimed for one scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Evolution {
    /// Every completed iteration leaves the value unchanged.
    Invariant,
    /// `v_{k+1} = v_k + stride` — the value at the start of iteration
    /// `k` is `v_0 + k*stride` (wrapping i64 arithmetic, like the VM).
    Affine {
        /// Net increment per completed iteration.
        stride: i64,
    },
    /// `v_{k+1} = mul*v_k + add` with `mul != 1` — predictable one
    /// iteration ahead, but not affine in the iteration number.
    Recurrence {
        /// Multiplier applied each iteration.
        mul: i64,
        /// Addend applied each iteration.
        add: i64,
    },
    /// Written in the loop, but no per-iteration transform was proven.
    BoundedUnknown,
}

impl Evolution {
    /// Applies one iteration of the evolution to `v` (wrapping), or
    /// `None` when the evolution makes no value claim.
    pub fn step(&self, v: i64) -> Option<i64> {
        match *self {
            Evolution::Invariant => Some(v),
            Evolution::Affine { stride } => Some(v.wrapping_add(stride)),
            Evolution::Recurrence { mul, add } => Some(v.wrapping_mul(mul).wrapping_add(add)),
            Evolution::BoundedUnknown => None,
        }
    }

    /// True when the evolution predicts the scalar's exact value at
    /// every iteration boundary given its value at loop entry.
    pub fn is_closed_form(&self) -> bool {
        !matches!(self, Evolution::BoundedUnknown)
    }
}

/// Evolutions of every scalar the loop body touches.
#[derive(Debug, Clone, Default)]
pub struct LoopEvolutions {
    /// Evolution per local slot read or written inside the loop.
    pub locals: BTreeMap<Local, Evolution>,
    /// Evolution per static variable read or written inside the loop.
    pub statics: BTreeMap<GlobalId, Evolution>,
}

impl LoopEvolutions {
    /// The affine stride of local `l`, when its evolution is affine
    /// with a non-zero step (the shape dependence distances need).
    pub fn local_stride(&self, l: Local) -> Option<i64> {
        match self.locals.get(&l) {
            Some(&Evolution::Affine { stride }) if stride != 0 => Some(stride),
            _ => None,
        }
    }

    /// Number of scalars with a closed-form (non-`BoundedUnknown`)
    /// evolution.
    pub fn closed_form_count(&self) -> usize {
        self.locals
            .values()
            .chain(self.statics.values())
            .filter(|e| e.is_closed_form())
            .count()
    }
}

/// The per-scalar transform accumulated along a path: `Bot` (path not
/// reached yet), `Lin { mul, add }` (`v ↦ mul*v_entry + add`), or
/// `Top` (unknown). The identity transform is `Lin { 1, 0 }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Delta {
    Bot,
    Lin { mul: i64, add: i64 },
    Top,
}

impl Delta {
    const ID: Delta = Delta::Lin { mul: 1, add: 0 };

    fn join(self, other: Delta) -> Delta {
        match (self, other) {
            (Delta::Bot, x) | (x, Delta::Bot) => x,
            (a, b) if a == b => a,
            _ => Delta::Top,
        }
    }
}

/// A symbolic stack value during the block walk, expressed in terms of
/// scalar values *at iteration entry*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expr {
    Const(i64),
    /// `mul * entry(var) + add`.
    Var {
        var: Var,
        mul: i64,
        add: i64,
    },
    Unknown,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Var {
    L(Local),
    /// Index into [`ScevProblem::statics`].
    S(usize),
}

/// The dataflow fact: one [`Delta`] per tracked scalar.
#[derive(Debug, Clone, PartialEq)]
struct Deltas {
    locals: Vec<Delta>,
    statics: Vec<Delta>,
}

struct ScevProblem<'a> {
    program: &'a Program,
    f: &'a Function,
    cfg: &'a Cfg,
    lp: &'a NaturalLoop,
    /// Static ids referenced in the loop, in ascending order.
    statics: Vec<GlobalId>,
    /// Per function: `[stores statics, stores fields, stores arrays]`.
    effects: Vec<[bool; 3]>,
}

impl ScevProblem<'_> {
    fn static_index(&self, g: GlobalId) -> Option<usize> {
        self.statics.binary_search(&g).ok()
    }

    fn load(&self, fact: &Deltas, var: Var) -> Expr {
        let d = match var {
            Var::L(l) => fact.locals[l.0 as usize],
            Var::S(i) => fact.statics[i],
        };
        match d {
            Delta::Lin { mul, add } => Expr::Var { var, mul, add },
            Delta::Bot | Delta::Top => Expr::Unknown,
        }
    }

    fn store(&self, fact: &mut Deltas, var: Var, e: Expr) {
        let d = match e {
            Expr::Const(c) => Delta::Lin { mul: 0, add: c },
            Expr::Var { var: v, mul, add } if v == var => Delta::Lin { mul, add },
            _ => Delta::Top,
        };
        match var {
            Var::L(l) => fact.locals[l.0 as usize] = d,
            Var::S(i) => fact.statics[i] = d,
        }
    }
}

fn add(a: Expr, b: Expr) -> Expr {
    match (a, b) {
        (Expr::Const(x), Expr::Const(y)) => Expr::Const(x.wrapping_add(y)),
        (Expr::Var { var, mul, add }, Expr::Const(c))
        | (Expr::Const(c), Expr::Var { var, mul, add }) => Expr::Var {
            var,
            mul,
            add: add.wrapping_add(c),
        },
        (
            Expr::Var {
                var: v1,
                mul: m1,
                add: a1,
            },
            Expr::Var {
                var: v2,
                mul: m2,
                add: a2,
            },
        ) if v1 == v2 => Expr::Var {
            var: v1,
            mul: m1.wrapping_add(m2),
            add: a1.wrapping_add(a2),
        },
        _ => Expr::Unknown,
    }
}

fn neg(a: Expr) -> Expr {
    match a {
        Expr::Const(x) => Expr::Const(x.wrapping_neg()),
        Expr::Var { var, mul, add } => Expr::Var {
            var,
            mul: mul.wrapping_neg(),
            add: add.wrapping_neg(),
        },
        Expr::Unknown => Expr::Unknown,
    }
}

fn mul(a: Expr, b: Expr) -> Expr {
    match (a, b) {
        (Expr::Const(x), Expr::Const(y)) => Expr::Const(x.wrapping_mul(y)),
        (Expr::Var { var, mul, add }, Expr::Const(c))
        | (Expr::Const(c), Expr::Var { var, mul, add }) => Expr::Var {
            var,
            mul: mul.wrapping_mul(c),
            add: add.wrapping_mul(c),
        },
        _ => Expr::Unknown,
    }
}

impl Analysis for ScevProblem<'_> {
    type Fact = Deltas;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> Deltas {
        Deltas {
            locals: vec![Delta::ID; self.f.n_locals as usize],
            statics: vec![Delta::ID; self.statics.len()],
        }
    }

    fn bottom(&self) -> Deltas {
        Deltas {
            locals: vec![Delta::Bot; self.f.n_locals as usize],
            statics: vec![Delta::Bot; self.statics.len()],
        }
    }

    fn join(&self, into: &mut Deltas, from: &Deltas) {
        for (a, b) in into.locals.iter_mut().zip(&from.locals) {
            *a = a.join(*b);
        }
        for (a, b) in into.statics.iter_mut().zip(&from.statics) {
            *a = a.join(*b);
        }
    }

    fn transfer(&self, b: BlockId, input: &Deltas) -> Deltas {
        if !self.lp.blocks.contains(&b) {
            return input.clone();
        }
        // The header starts every iteration from the identity frame
        // ("value at iteration entry") regardless of incoming facts —
        // the solver's boundary sits at the CFG entry block, which is
        // outside the loop view. A constant input keeps the transfer
        // monotone.
        let reset;
        let input = if b == self.lp.header {
            reset = self.boundary();
            &reset
        } else {
            // Strict in ⊥: a block not reached within the loop view
            // contributes nothing.
            let unreached = input.locals.iter().all(|d| *d == Delta::Bot)
                && input.statics.iter().all(|d| *d == Delta::Bot);
            if unreached {
                return input.clone();
            }
            input
        };
        let mut fact = input.clone();
        let mut stack: Vec<Expr> = Vec::new();
        for idx in self.cfg.instrs_of(b) {
            let instr = &self.f.code[idx as usize];
            match *instr {
                Instr::IConst(c) => stack.push(Expr::Const(c)),
                Instr::Load(l) => {
                    let e = self.load(&fact, Var::L(l));
                    stack.push(e);
                }
                Instr::Lwl(v) => {
                    let e = self.load(&fact, Var::L(Local(v)));
                    stack.push(e);
                }
                Instr::Store(l) => {
                    let e = stack.pop().unwrap_or(Expr::Unknown);
                    self.store(&mut fact, Var::L(l), e);
                }
                Instr::Swl(v) => {
                    let e = stack.pop().unwrap_or(Expr::Unknown);
                    self.store(&mut fact, Var::L(Local(v)), e);
                }
                Instr::IInc(l, c) => {
                    let slot = &mut fact.locals[l.0 as usize];
                    *slot = match *slot {
                        Delta::Lin { mul, add } => Delta::Lin {
                            mul,
                            add: add.wrapping_add(i64::from(c)),
                        },
                        d => d,
                    };
                }
                Instr::GetStatic(g) => {
                    let e = match self.static_index(g) {
                        Some(i) => self.load(&fact, Var::S(i)),
                        None => Expr::Unknown,
                    };
                    stack.push(e);
                }
                Instr::PutStatic(g) => {
                    let e = stack.pop().unwrap_or(Expr::Unknown);
                    if let Some(i) = self.static_index(g) {
                        self.store(&mut fact, Var::S(i), e);
                    }
                }
                Instr::Dup => {
                    let e = stack.last().copied().unwrap_or(Expr::Unknown);
                    stack.push(e);
                }
                Instr::Swap => {
                    let n = stack.len();
                    if n >= 2 {
                        stack.swap(n - 1, n - 2);
                    } else {
                        // Unknown depth below the modelled stack.
                        stack.clear();
                    }
                }
                Instr::Pop => {
                    stack.pop();
                }
                Instr::IAdd => {
                    let b = stack.pop().unwrap_or(Expr::Unknown);
                    let a = stack.pop().unwrap_or(Expr::Unknown);
                    stack.push(add(a, b));
                }
                Instr::ISub => {
                    let b = stack.pop().unwrap_or(Expr::Unknown);
                    let a = stack.pop().unwrap_or(Expr::Unknown);
                    stack.push(add(a, neg(b)));
                }
                Instr::IMul => {
                    let b = stack.pop().unwrap_or(Expr::Unknown);
                    let a = stack.pop().unwrap_or(Expr::Unknown);
                    stack.push(mul(a, b));
                }
                Instr::INeg => {
                    let a = stack.pop().unwrap_or(Expr::Unknown);
                    stack.push(neg(a));
                }
                Instr::Call(fid) => {
                    let (pops, pushes) = stack_effect(self.program, instr).unwrap_or((0, 0));
                    for _ in 0..pops {
                        stack.pop();
                    }
                    for _ in 0..pushes {
                        stack.push(Expr::Unknown);
                    }
                    // A callee that may store statics invalidates every
                    // static transform (field/array effects don't touch
                    // scalars).
                    if self.effects.get(fid.0 as usize).is_some_and(|e| e[0]) {
                        for d in &mut fact.statics {
                            *d = Delta::Top;
                        }
                    }
                }
                _ => {
                    let (pops, pushes) = stack_effect(self.program, instr).unwrap_or((0, 0));
                    for _ in 0..pops {
                        stack.pop();
                    }
                    for _ in 0..pushes {
                        stack.push(Expr::Unknown);
                    }
                }
            }
        }
        fact
    }

    /// The loop view: only edges between loop blocks participate, so
    /// facts can neither leak out of the loop nor flow in from
    /// surrounding code (the header's transfer resets to the identity
    /// frame anyway).
    fn edge_enabled(&self, from: BlockId, to: BlockId) -> bool {
        self.lp.blocks.contains(&from) && self.lp.blocks.contains(&to)
    }
}

/// Computes the evolution of every scalar `lp`'s body touches.
///
/// The header's entry fact is the identity ("value at iteration
/// entry"); the net one-iteration transform of a scalar is the join of
/// the latch exit facts, translated into an [`Evolution`].
pub fn analyze_loop(
    program: &Program,
    f: &Function,
    cfg: &Cfg,
    lp: &NaturalLoop,
) -> LoopEvolutions {
    // Scalars referenced in the loop body.
    let mut locals_seen: Vec<bool> = vec![false; f.n_locals as usize];
    let mut statics: Vec<GlobalId> = Vec::new();
    for &b in &lp.blocks {
        for idx in cfg.instrs_of(b) {
            match f.code[idx as usize] {
                Instr::Load(l) | Instr::Store(l) | Instr::IInc(l, _)
                    if (l.0 as usize) < locals_seen.len() =>
                {
                    locals_seen[l.0 as usize] = true;
                }
                Instr::Lwl(v) | Instr::Swl(v) if (v as usize) < locals_seen.len() => {
                    locals_seen[v as usize] = true;
                }
                Instr::GetStatic(g) | Instr::PutStatic(g) => {
                    if let Err(at) = statics.binary_search(&g) {
                        statics.insert(at, g);
                    }
                }
                _ => {}
            }
        }
    }

    let problem = ScevProblem {
        program,
        f,
        cfg,
        lp,
        statics,
        effects: transitive_store_effects(program),
    };
    let sol = solve(cfg, &problem);

    // Net per-iteration transform: join of all latch exits.
    let mut net = problem.bottom();
    for &latch in &lp.latches {
        problem.join(&mut net, sol.exit_of(latch));
    }

    let to_evolution = |d: Delta| match d {
        // An unreached latch makes no sound claim.
        Delta::Bot | Delta::Top => Evolution::BoundedUnknown,
        Delta::Lin { mul: 1, add: 0 } => Evolution::Invariant,
        Delta::Lin { mul: 1, add } => Evolution::Affine { stride: add },
        Delta::Lin { mul, add } => Evolution::Recurrence { mul, add },
    };

    let mut out = LoopEvolutions::default();
    for (i, seen) in locals_seen.iter().enumerate() {
        if *seen {
            out.locals
                .insert(Local(i as u16), to_evolution(net.locals[i]));
        }
    }
    for (i, &g) in problem.statics.iter().enumerate() {
        out.statics.insert(g, to_evolution(net.statics[i]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::inductor_steps;
    use crate::dom::Dominators;
    use crate::loops::LoopForest;
    use tvm::isa::Cond;
    use tvm::{ElemKind, ProgramBuilder};

    fn analyze_sole_loop(program: &Program) -> (LoopEvolutions, Vec<(Local, i64)>) {
        let f = &program.functions[program.entry.0 as usize];
        let cfg = Cfg::build(f);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::build(&cfg, &dom);
        assert_eq!(forest.len(), 1, "test programs must have one loop");
        let lp = &forest.loops[0];
        let evo = analyze_loop(program, f, &cfg, lp);
        let steps = inductor_steps(f, &cfg, &dom, lp);
        (evo, steps)
    }

    /// `for i in 0..10 { g = g + 3 }` — inductor affine, accumulator
    /// affine, in parity with the access-layer inductor recognizer.
    #[test]
    fn affine_inductor_and_accumulator() {
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, false, |f| {
            let i = f.local();
            f.for_in(i, 0.into(), 10.into(), |f| {
                f.getstatic(g).ci(3).iadd().putstatic(g);
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let (evo, steps) = analyze_sole_loop(&p);
        assert_eq!(
            evo.locals.get(&Local(0)),
            Some(&Evolution::Affine { stride: 1 })
        );
        assert_eq!(evo.statics.get(&g), Some(&Evolution::Affine { stride: 3 }));
        assert!(!steps.is_empty());
        for (l, step) in steps {
            assert_eq!(evo.local_stride(l), Some(step));
        }
    }

    /// `g = 2*g + 1` per iteration — a linear recurrence, not affine.
    #[test]
    fn linear_recurrence_is_recognized() {
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, false, |f| {
            let i = f.local();
            f.for_in(i, 0.into(), 8.into(), |f| {
                f.getstatic(g).ci(2).imul().ci(1).iadd().putstatic(g);
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let (evo, _) = analyze_sole_loop(&p);
        assert_eq!(
            evo.statics.get(&g),
            Some(&Evolution::Recurrence { mul: 2, add: 1 })
        );
    }

    /// A conditional update joins with the identity path to unknown.
    #[test]
    fn conditional_update_is_bounded_unknown() {
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, false, |f| {
            let i = f.local();
            f.for_in(i, 0.into(), 8.into(), |f| {
                f.if_icmp(
                    Cond::Lt,
                    |f| {
                        f.ld(i).ci(4);
                    },
                    |f| {
                        f.getstatic(g).ci(3).iadd().putstatic(g);
                    },
                );
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let (evo, _) = analyze_sole_loop(&p);
        assert_eq!(evo.statics.get(&g), Some(&Evolution::BoundedUnknown));
    }

    /// A read-only scalar is invariant; a scalar rewritten to itself
    /// is too (the per-iteration transform is the identity).
    #[test]
    fn invariant_scalars() {
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let h = b.global(ElemKind::Int);
        let main = b.function("main", 0, false, |f| {
            let i = f.local();
            let t = f.local();
            f.for_in(i, 0.into(), 8.into(), |f| {
                f.getstatic(g).st(t); // read-only use of g
                f.getstatic(h).putstatic(h); // h = h
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let (evo, _) = analyze_sole_loop(&p);
        assert_eq!(evo.statics.get(&g), Some(&Evolution::Invariant));
        assert_eq!(evo.statics.get(&h), Some(&Evolution::Invariant));
    }

    /// Two increments on the same path compose; a scalar reset and
    /// bumped inside a nested loop has no outer-loop closed form.
    #[test]
    fn composition_and_nested_loop() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            let i = f.local();
            let two = f.local();
            let j = f.local();
            f.for_in(i, 0.into(), 8.into(), |f| {
                f.inc(two, 2).inc(two, 3); // +5 per outer iteration
                f.for_in(j, 0.into(), 4.into(), |f| {
                    f.ld(j).drop_top();
                });
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let f = &p.functions[p.entry.0 as usize];
        let cfg = Cfg::build(f);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::build(&cfg, &dom);
        let outer = forest
            .loops
            .iter()
            .find(|lp| forest.loops.iter().all(|o| lp.blocks.contains(&o.header)))
            .expect("outer loop");
        let evo = analyze_loop(&p, f, &cfg, outer);
        assert_eq!(
            evo.locals.get(&Local(1)),
            Some(&Evolution::Affine { stride: 5 })
        );
        // The inner inductor is reset each outer iteration but bumped
        // along the inner back edge, so the outer view sees ⊤ join.
        assert_eq!(evo.locals.get(&Local(2)), Some(&Evolution::BoundedUnknown));
    }

    /// A call that may store statics kills every static transform.
    #[test]
    fn opaque_call_kills_statics() {
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let clobber = b.function("clobber", 0, false, |f| {
            f.ci(7).putstatic(g);
            f.ret_void();
        });
        let main = b.function("main", 0, false, |f| {
            let i = f.local();
            f.for_in(i, 0.into(), 8.into(), |f| {
                f.getstatic(g).ci(1).iadd().putstatic(g);
                f.call(clobber);
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let f = &p.functions[main.0 as usize];
        let cfg = Cfg::build(f);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::build(&cfg, &dom);
        let evo = analyze_loop(&p, f, &cfg, &forest.loops[0]);
        assert_eq!(evo.statics.get(&g), Some(&Evolution::BoundedUnknown));
    }
}
