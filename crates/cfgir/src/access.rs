//! Shared access-site extraction and alias rules.
//!
//! The memory-dependence pre-screen ([`crate::memdep`]) and the
//! points-to analysis ([`crate::pointsto`]) both need the same two
//! ingredients: the list of memory accesses a loop performs, with each
//! operand in the symbolic form `base + inductor*scale + offset`, and a
//! judgment of when two accesses can touch the same address. Both used
//! to live inside `memdep`, with the alias rule encoded once in the
//! masking walk and once in the dependence proofs; this module is the
//! single home for both.
//!
//! Two distinct disjointness predicates are exposed, and the difference
//! matters:
//!
//! * [`strongly_disjoint`] — the two accesses can **never** touch the
//!   same address, at any point in the execution. This is the predicate
//!   the agreement report's soundness invariant checks dynamically, so
//!   it must hold across iterations: `a[i]` vs `a[i-1]` is *not*
//!   strongly disjoint (iteration `n`'s load touches iteration `n−1`'s
//!   store address — that overlap is the recurrence itself).
//! * [`same_iteration_disjoint`] — the two accesses cannot touch the
//!   same address **within one iteration**. This is the masking rule:
//!   it additionally admits the affine same-base/same-inductor/
//!   same-scale/different-offset case, which is only valid inside a
//!   single iteration.

use crate::cfg::{BlockId, Cfg};
use crate::dom::Dominators;
use crate::loops::NaturalLoop;
use crate::pointsto::FnView;
use tvm::isa::{FuncId, GlobalId, Instr, Local};
use tvm::program::{Function, Program};
use tvm::verify::stack_effect;

/// Symbolic value of one operand-stack slot, relative to a loop
/// iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    /// Not representable in this domain.
    Unknown,
    /// A compile-time integer constant.
    Const(i64),
    /// The value of a local with no definition inside the loop.
    Invariant(Local),
    /// `inductor * scale + offset`, the affine form of array indices.
    Affine {
        /// The inductor local.
        ind: Local,
        /// Multiplier applied to the inductor.
        scale: i64,
        /// Constant offset.
        offset: i64,
    },
}

impl Sym {
    pub(crate) fn add(self, other: Sym) -> Sym {
        match (self, other) {
            (Sym::Const(a), Sym::Const(b)) => Sym::Const(a.wrapping_add(b)),
            (Sym::Affine { ind, scale, offset }, Sym::Const(c))
            | (Sym::Const(c), Sym::Affine { ind, scale, offset }) => Sym::Affine {
                ind,
                scale,
                offset: offset.wrapping_add(c),
            },
            _ => Sym::Unknown,
        }
    }

    pub(crate) fn sub(self, other: Sym) -> Sym {
        match (self, other) {
            (Sym::Const(a), Sym::Const(b)) => Sym::Const(a.wrapping_sub(b)),
            (Sym::Affine { ind, scale, offset }, Sym::Const(c)) => Sym::Affine {
                ind,
                scale,
                offset: offset.wrapping_sub(c),
            },
            _ => Sym::Unknown,
        }
    }

    pub(crate) fn mul(self, other: Sym) -> Sym {
        match (self, other) {
            (Sym::Const(a), Sym::Const(b)) => Sym::Const(a.wrapping_mul(b)),
            (Sym::Affine { ind, scale, offset }, Sym::Const(c))
            | (Sym::Const(c), Sym::Affine { ind, scale, offset }) => Sym::Affine {
                ind,
                scale: scale.wrapping_mul(c),
                offset: offset.wrapping_mul(c),
            },
            _ => Sym::Unknown,
        }
    }
}

/// One memory access observed with symbolic operands.
#[derive(Debug, Clone)]
pub enum Access {
    /// `GetStatic`.
    StaticLoad(GlobalId),
    /// `PutStatic`.
    StaticStore(GlobalId),
    /// `GetField`.
    FieldLoad {
        /// Symbolic object reference.
        base: Sym,
        /// Field slot index.
        field: u16,
    },
    /// `PutField`.
    FieldStore {
        /// Symbolic object reference.
        base: Sym,
        /// Field slot index.
        field: u16,
    },
    /// `ALoad`.
    ArrayLoad {
        /// Symbolic array reference.
        base: Sym,
        /// Symbolic element index.
        index: Sym,
    },
    /// `AStore`.
    ArrayStore {
        /// Symbolic array reference.
        base: Sym,
        /// Symbolic element index.
        index: Sym,
    },
    /// A call whose callee may (transitively) store to the flagged
    /// memory categories — an opaque potential store for masking.
    Opaque {
        /// The called function.
        callee: FuncId,
        /// May store to some static.
        statics: bool,
        /// May store to some object field.
        fields: bool,
        /// May store to some array element.
        arrays: bool,
    },
}

impl Access {
    /// True for the load-side accesses.
    pub fn is_load(&self) -> bool {
        matches!(
            self,
            Access::StaticLoad(_) | Access::FieldLoad { .. } | Access::ArrayLoad { .. }
        )
    }

    /// True for concrete store instructions (not opaque calls).
    pub fn is_concrete_store(&self) -> bool {
        matches!(
            self,
            Access::StaticStore(_) | Access::FieldStore { .. } | Access::ArrayStore { .. }
        )
    }

    /// True for any store side, including opaque calls.
    pub fn is_store(&self) -> bool {
        self.is_concrete_store() || matches!(self, Access::Opaque { .. })
    }
}

/// One access site inside a loop body.
#[derive(Debug, Clone)]
pub struct AccessSite {
    /// Basic block holding the access.
    pub block: BlockId,
    /// Instruction index (into the original, unannotated function).
    pub instr: u32,
    /// The access with symbolic operands.
    pub access: Access,
}

/// Which memory categories each function may (transitively, through
/// further calls) store to: `[statics, fields, arrays]`, indexed by
/// function id.
pub fn transitive_store_effects(program: &Program) -> Vec<[bool; 3]> {
    let n = program.functions.len();
    let mut effects = vec![[false; 3]; n];
    let mut calls: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (fi, f) in program.functions.iter().enumerate() {
        for instr in &f.code {
            match instr {
                Instr::PutStatic(_) => effects[fi][0] = true,
                Instr::PutField(_) => effects[fi][1] = true,
                Instr::AStore => effects[fi][2] = true,
                Instr::Call(callee) => calls[fi].push(callee.0 as usize),
                _ => {}
            }
        }
    }
    // propagate to fixpoint (call graphs here are tiny; recursion is
    // handled by iterating until nothing changes)
    loop {
        let mut changed = false;
        for (fi, callees) in calls.iter().enumerate() {
            for &callee in callees {
                let callee_effects = effects[callee];
                for (k, &on) in callee_effects.iter().enumerate() {
                    if on && !effects[fi][k] {
                        effects[fi][k] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return effects;
        }
    }
}

/// Per-function transitive **load** effects, by category
/// `[statics, fields, arrays]` — the read-side mirror of
/// [`transitive_store_effects`]. The rescue transforms redirect a
/// memory channel through a private local while the loop runs, so a
/// call whose callee merely *reads* the channel's category would
/// observe a stale cell; such calls must block the transform even
/// though they are invisible to the store-effect summaries.
pub fn transitive_load_effects(program: &Program) -> Vec<[bool; 3]> {
    let n = program.functions.len();
    let mut effects = vec![[false; 3]; n];
    let mut calls: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (fi, f) in program.functions.iter().enumerate() {
        for instr in &f.code {
            match instr {
                Instr::GetStatic(_) => effects[fi][0] = true,
                Instr::GetField(_) => effects[fi][1] = true,
                Instr::ALoad => effects[fi][2] = true,
                Instr::Call(callee) => calls[fi].push(callee.0 as usize),
                _ => {}
            }
        }
    }
    loop {
        let mut changed = false;
        for (fi, callees) in calls.iter().enumerate() {
            for &callee in callees {
                let callee_effects = effects[callee];
                for (k, &on) in callee_effects.iter().enumerate() {
                    if on && !effects[fi][k] {
                        effects[fi][k] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return effects;
        }
    }
}

/// Finds locals acting as inductors of `lp` and their net step per
/// iteration: every in-loop definition must be an `IInc` whose block
/// dominates all latches (so it executes exactly once per iteration).
pub fn inductor_steps(
    f: &Function,
    cfg: &Cfg,
    dom: &Dominators,
    lp: &NaturalLoop,
) -> Vec<(Local, i64)> {
    let n_locals = usize::from(f.n_locals);
    let mut incs: Vec<Vec<(BlockId, i64)>> = vec![Vec::new(); n_locals];
    let mut disqualified = vec![false; n_locals];
    for &b in &lp.blocks {
        for i in cfg.instrs_of(b) {
            match &f.code[i as usize] {
                Instr::Store(l) => disqualified[usize::from(l.0)] = true,
                Instr::IInc(l, c) => incs[usize::from(l.0)].push((b, i64::from(*c))),
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    for (l, sites) in incs.iter().enumerate() {
        if disqualified[l] || sites.is_empty() {
            continue;
        }
        let every_iteration = sites
            .iter()
            .all(|&(b, _)| lp.latches.iter().all(|&latch| dom.dominates(b, latch)));
        if every_iteration {
            let step: i64 = sites.iter().map(|&(_, c)| c).sum();
            out.push((Local(l as u16), step));
        }
    }
    out
}

/// Locals never written inside `lp`.
pub fn invariant_locals(f: &Function, cfg: &Cfg, lp: &NaturalLoop) -> Vec<bool> {
    let mut invariant = vec![true; usize::from(f.n_locals)];
    for &b in &lp.blocks {
        for i in cfg.instrs_of(b) {
            if let Instr::Store(l) | Instr::IInc(l, _) = &f.code[i as usize] {
                invariant[usize::from(l.0)] = false;
            }
        }
    }
    invariant
}

/// Symbolically executes every block of the loop (entry stack unknown)
/// and records each memory access with its operands' symbolic values.
pub fn collect_accesses(
    program: &Program,
    f: &Function,
    cfg: &Cfg,
    lp: &NaturalLoop,
    inductors: &[(Local, i64)],
    invariant: &[bool],
    effects: &[[bool; 3]],
) -> Vec<AccessSite> {
    let is_inductor = |l: Local| inductors.iter().any(|&(i, _)| i == l);
    let mut sites = Vec::new();
    for &b in &lp.blocks {
        let mut stack: Vec<Sym> = Vec::new();
        let pop = |stack: &mut Vec<Sym>| stack.pop().unwrap_or(Sym::Unknown);
        for i in cfg.instrs_of(b) {
            let instr = &f.code[i as usize];
            match instr {
                Instr::IConst(c) => stack.push(Sym::Const(*c)),
                Instr::Load(l) => {
                    let v = if is_inductor(*l) {
                        Sym::Affine {
                            ind: *l,
                            scale: 1,
                            offset: 0,
                        }
                    } else if invariant.get(usize::from(l.0)).copied().unwrap_or(false) {
                        Sym::Invariant(*l)
                    } else {
                        Sym::Unknown
                    };
                    stack.push(v);
                }
                Instr::Store(_) => {
                    pop(&mut stack);
                }
                Instr::IAdd => {
                    let (y, x) = (pop(&mut stack), pop(&mut stack));
                    stack.push(x.add(y));
                }
                Instr::ISub => {
                    let (y, x) = (pop(&mut stack), pop(&mut stack));
                    stack.push(x.sub(y));
                }
                Instr::IMul => {
                    let (y, x) = (pop(&mut stack), pop(&mut stack));
                    stack.push(x.mul(y));
                }
                Instr::Dup => {
                    let t = stack.last().copied().unwrap_or(Sym::Unknown);
                    stack.push(t);
                }
                Instr::Swap => {
                    let (y, x) = (pop(&mut stack), pop(&mut stack));
                    stack.push(y);
                    stack.push(x);
                }
                Instr::GetStatic(g) => {
                    sites.push(AccessSite {
                        block: b,
                        instr: i,
                        access: Access::StaticLoad(*g),
                    });
                    stack.push(Sym::Unknown);
                }
                Instr::PutStatic(g) => {
                    pop(&mut stack);
                    sites.push(AccessSite {
                        block: b,
                        instr: i,
                        access: Access::StaticStore(*g),
                    });
                }
                Instr::GetField(fi) => {
                    let base = pop(&mut stack);
                    sites.push(AccessSite {
                        block: b,
                        instr: i,
                        access: Access::FieldLoad { base, field: *fi },
                    });
                    stack.push(Sym::Unknown);
                }
                Instr::PutField(fi) => {
                    pop(&mut stack); // value
                    let base = pop(&mut stack);
                    sites.push(AccessSite {
                        block: b,
                        instr: i,
                        access: Access::FieldStore { base, field: *fi },
                    });
                }
                Instr::ALoad => {
                    let index = pop(&mut stack);
                    let base = pop(&mut stack);
                    sites.push(AccessSite {
                        block: b,
                        instr: i,
                        access: Access::ArrayLoad { base, index },
                    });
                    stack.push(Sym::Unknown);
                }
                Instr::AStore => {
                    pop(&mut stack); // value
                    let index = pop(&mut stack);
                    let base = pop(&mut stack);
                    sites.push(AccessSite {
                        block: b,
                        instr: i,
                        access: Access::ArrayStore { base, index },
                    });
                }
                Instr::Call(callee) => {
                    for _ in 0..program.functions[callee.0 as usize].n_params {
                        pop(&mut stack);
                    }
                    if program.functions[callee.0 as usize].returns {
                        stack.push(Sym::Unknown);
                    }
                    let [statics, fields, arrays] =
                        effects.get(callee.0 as usize).copied().unwrap_or([true; 3]);
                    if statics || fields || arrays {
                        sites.push(AccessSite {
                            block: b,
                            instr: i,
                            access: Access::Opaque {
                                callee: *callee,
                                statics,
                                fields,
                                arrays,
                            },
                        });
                    }
                }
                other => {
                    // generic fallback: apply the instruction's stack
                    // arity, producing unknowns
                    if let Ok((pops, pushes)) = stack_effect(program, other) {
                        for _ in 0..pops {
                            pop(&mut stack);
                        }
                        for _ in 0..pushes {
                            stack.push(Sym::Unknown);
                        }
                    } else {
                        stack.clear();
                    }
                }
            }
        }
    }
    sites
}

/// True when `load` is guaranteed to execute before `store` within a
/// single iteration (same block with smaller index, or in a block that
/// strictly dominates the store's block).
pub fn load_precedes_store(dom: &Dominators, load: &AccessSite, store: &AccessSite) -> bool {
    if load.block == store.block {
        load.instr < store.instr
    } else {
        dom.dominates(load.block, store.block)
    }
}

/// True when `site` executes on every iteration (its block dominates
/// every latch of the loop).
pub fn every_iteration(dom: &Dominators, lp: &NaturalLoop, site: &AccessSite) -> bool {
    lp.latches
        .iter()
        .all(|&latch| dom.dominates(site.block, latch))
}

/// The points-to side of a base-vs-base question: true when `pt` proves
/// the two invariant base locals can never hold the same object.
fn bases_disjoint(pt: Option<&FnView<'_>>, a: Sym, b: Sym) -> bool {
    match (pt, a, b) {
        (Some(pt), Sym::Invariant(la), Sym::Invariant(lb)) => pt.locals_disjoint(la, lb),
        _ => false,
    }
}

/// True when the two accesses can **never** touch the same address, at
/// any point in the execution — valid across loop iterations.
///
/// The structural rules need no analysis: distinct statics occupy
/// distinct slots; statics live in their own segment below every heap
/// allocation; object allocations and array allocations are distinct
/// line-aligned regions; and two different field slots never overlap
/// (same object → different offsets, different objects → disjoint
/// storage). On top of that, points-to information (`pt`) separates
/// same-shaped heap accesses whose base references provably come from
/// disjoint allocation-site sets, and shrinks an opaque call to the
/// statics and abstract objects its callee can actually store to.
pub fn strongly_disjoint(a: &Access, b: &Access, pt: Option<&FnView<'_>>) -> bool {
    use Access::*;
    match (a, b) {
        // -- statics: slot identity decides --------------------------
        (StaticLoad(x) | StaticStore(x), StaticLoad(y) | StaticStore(y)) => x != y,
        // -- statics never overlap heap allocations ------------------
        (
            StaticLoad(_) | StaticStore(_),
            FieldLoad { .. } | FieldStore { .. } | ArrayLoad { .. } | ArrayStore { .. },
        )
        | (
            FieldLoad { .. } | FieldStore { .. } | ArrayLoad { .. } | ArrayStore { .. },
            StaticLoad(_) | StaticStore(_),
        ) => true,
        // -- object fields vs array elements: distinct allocations ---
        (FieldLoad { .. } | FieldStore { .. }, ArrayLoad { .. } | ArrayStore { .. })
        | (ArrayLoad { .. } | ArrayStore { .. }, FieldLoad { .. } | FieldStore { .. }) => true,
        // -- field vs field: slot index, then points-to --------------
        (
            FieldLoad {
                base: ba,
                field: fa,
            }
            | FieldStore {
                base: ba,
                field: fa,
            },
            FieldLoad {
                base: bb,
                field: fb,
            }
            | FieldStore {
                base: bb,
                field: fb,
            },
        ) => fa != fb || bases_disjoint(pt, *ba, *bb),
        // -- array vs array: points-to only (affine reasoning is not
        //    valid across iterations) -------------------------------
        (
            ArrayLoad { base: ba, .. } | ArrayStore { base: ba, .. },
            ArrayLoad { base: bb, .. } | ArrayStore { base: bb, .. },
        ) => bases_disjoint(pt, *ba, *bb),
        // -- opaque calls: the callee's transitive store summary -----
        (
            access,
            Opaque {
                callee,
                statics,
                fields,
                arrays,
            },
        )
        | (
            Opaque {
                callee,
                statics,
                fields,
                arrays,
            },
            access,
        ) => opaque_disjoint(access, *callee, [*statics, *fields, *arrays], pt),
    }
}

/// Whether `access` is strongly disjoint from everything a call to
/// `callee` may (transitively) store. Without points-to facts the
/// per-category store effects decide (a callee that never stores to a
/// category cannot touch accesses in it); with them, the callee's
/// reachable statics and abstract objects are checked against the
/// access itself.
fn opaque_disjoint(
    access: &Access,
    callee: FuncId,
    [statics, fields, arrays]: [bool; 3],
    pt: Option<&FnView<'_>>,
) -> bool {
    match access {
        Access::Opaque { .. } => false,
        Access::StaticLoad(g) | Access::StaticStore(g) => {
            !statics || pt.is_some_and(|pt| !pt.callee_may_store_static(callee, *g))
        }
        Access::FieldLoad { base, .. } | Access::FieldStore { base, .. } => {
            !fields
                || match (pt, base) {
                    (Some(pt), Sym::Invariant(l)) => !pt.callee_may_store_fields_of(callee, *l),
                    _ => false,
                }
        }
        Access::ArrayLoad { base, .. } | Access::ArrayStore { base, .. } => {
            !arrays
                || match (pt, base) {
                    (Some(pt), Sym::Invariant(l)) => !pt.callee_may_store_elems_of(callee, *l),
                    _ => false,
                }
        }
    }
}

/// True when the two accesses cannot touch the same address **within
/// one loop iteration**: either strongly disjoint, or two accesses to
/// the same invariant array through the same inductor at the same
/// scale but different constant offsets (within an iteration the
/// inductor has a single value, so the addresses differ by a nonzero
/// constant — across iterations they may and typically do collide).
pub fn same_iteration_disjoint(a: &Access, b: &Access, pt: Option<&FnView<'_>>) -> bool {
    overlap_kind(a, b, pt).is_none()
}

/// Why two accesses could **not** be proven disjoint within one
/// iteration. This is the witness side of [`same_iteration_disjoint`]:
/// `None` means disjoint; `Some(kind)` names the shape of the possible
/// overlap, so clients (the rescue legality checker, the `--explain`
/// lint) can report *which* dependence blocked a proof without
/// re-walking the access pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockKind {
    /// Both sites touch the same static slot.
    SameStatic(GlobalId),
    /// Two accesses of the same field slot whose bases may alias.
    MayAliasField {
        /// The shared field slot.
        field: u16,
    },
    /// Two array-element accesses not provably distinct this iteration
    /// (bases may alias, or same base with unprovable indices).
    MayAliasArray,
    /// An opaque call whose transitive store summary reaches the other
    /// access.
    OpaqueCall {
        /// The called function.
        callee: FuncId,
    },
    /// Two opaque calls; their summaries are never disjoint from each
    /// other.
    OpaqueVsOpaque,
}

impl std::fmt::Display for BlockKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockKind::SameStatic(g) => write!(f, "same static g{}", g.0),
            BlockKind::MayAliasField { field } => {
                write!(f, "may-alias bases at field slot {field}")
            }
            BlockKind::MayAliasArray => write!(f, "may-alias array elements"),
            BlockKind::OpaqueCall { callee } => {
                write!(f, "opaque call to f{} may store here", callee.0)
            }
            BlockKind::OpaqueVsOpaque => write!(f, "two opaque calls"),
        }
    }
}

/// A concrete blocked pair: the two instruction indices (original pcs)
/// plus the overlap shape. Produced by [`same_iteration_blocker`] and
/// threaded through `memdep` masking and the rescue legality checker so
/// diagnostics can say exactly which dependence stood in the way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepWitness {
    /// Instruction index of the first access.
    pub src: u32,
    /// Instruction index of the second access.
    pub dst: u32,
    /// The shape of the possible overlap.
    pub kind: BlockKind,
}

impl std::fmt::Display for DepWitness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pc {} vs pc {}: {}", self.src, self.dst, self.kind)
    }
}

/// The witness form of [`same_iteration_disjoint`] over whole sites:
/// `None` when the two sites are provably disjoint within an
/// iteration, otherwise the blocking dependence with its pc pair.
pub fn same_iteration_blocker(
    a: &AccessSite,
    b: &AccessSite,
    pt: Option<&FnView<'_>>,
) -> Option<DepWitness> {
    overlap_kind(&a.access, &b.access, pt).map(|kind| DepWitness {
        src: a.instr,
        dst: b.instr,
        kind,
    })
}

/// Classifies the overlap that blocks a same-iteration disjointness
/// proof, or `None` when the proof goes through. The classification
/// arms mirror [`strongly_disjoint`]: by the time a pair reaches a
/// catch-all here, the always-disjoint category combinations (static
/// vs heap, field vs array) have already returned `None`.
pub fn overlap_kind(a: &Access, b: &Access, pt: Option<&FnView<'_>>) -> Option<BlockKind> {
    if same_iteration_disjoint_impl(a, b, pt) {
        return None;
    }
    use Access::*;
    Some(match (a, b) {
        (Opaque { .. }, Opaque { .. }) => BlockKind::OpaqueVsOpaque,
        (Opaque { callee, .. }, _) | (_, Opaque { callee, .. }) => {
            BlockKind::OpaqueCall { callee: *callee }
        }
        // a non-disjoint static pair necessarily shares its slot
        (StaticLoad(g) | StaticStore(g), _) => BlockKind::SameStatic(*g),
        // a non-disjoint field pair necessarily shares its field slot
        (FieldLoad { field, .. } | FieldStore { field, .. }, _) => {
            BlockKind::MayAliasField { field: *field }
        }
        (ArrayLoad { .. } | ArrayStore { .. }, _) => BlockKind::MayAliasArray,
    })
}

fn same_iteration_disjoint_impl(a: &Access, b: &Access, pt: Option<&FnView<'_>>) -> bool {
    if strongly_disjoint(a, b, pt) {
        return true;
    }
    use Access::*;
    match (a, b) {
        (
            ArrayLoad {
                base: Sym::Invariant(ba),
                index:
                    Sym::Affine {
                        ind: ia,
                        scale: sa,
                        offset: oa,
                    },
            }
            | ArrayStore {
                base: Sym::Invariant(ba),
                index:
                    Sym::Affine {
                        ind: ia,
                        scale: sa,
                        offset: oa,
                    },
            },
            ArrayLoad {
                base: Sym::Invariant(bb),
                index:
                    Sym::Affine {
                        ind: ib,
                        scale: sb,
                        offset: ob,
                    },
            }
            | ArrayStore {
                base: Sym::Invariant(bb),
                index:
                    Sym::Affine {
                        ind: ib,
                        scale: sb,
                        offset: ob,
                    },
            },
        ) => ba == bb && ia == ib && sa == sb && oa != ob,
        _ => false,
    }
}
