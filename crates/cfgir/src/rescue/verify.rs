//! # Independent legality checking for rescue transforms
//!
//! [`check`] accepts the pre- and post-transform programs plus a
//! [`LegalityProof`] and re-derives every claimed fact from scratch.
//! It deliberately shares **no code** with the transform matchers in
//! the parent module: where the matcher walks a forward provenance
//! graph, the checker runs an abstract-value stack machine; where the
//! matcher builds the rewrite, the checker reconstructs the *expected*
//! loop body from the proof's parameters and diffs it against what the
//! transform actually emitted. A bug in either side surfaces as a
//! verifier rejection (the unit tests feed a deliberately broken
//! transform through here to prove it).
//!
//! What is re-derived, per transform:
//!
//! * the pre-transform dependence being removed really exists
//!   ([`crate::memdep::analyze_loop`] on the *original* code);
//! * the transformed loop's dependence set is a **refinement** of the
//!   original's (every post-transform dependence kind already existed,
//!   and the removed channel's kind is gone);
//! * the emitted code is exactly the claimed rewrite: entry/exit edges
//!   carry the right payloads (with the operator identity re-derived
//!   from the operator, not read from the proof) and the loop body
//!   matches the original modulo the expected substitutions;
//! * scalar facts on the transformed loop: a reduction accumulator
//!   must classify as a reduction local, a privatized temporary as
//!   iteration-private.

use super::{reduction_identity, Channel, LegalityProof, Transform};
use crate::access::{
    collect_accesses, inductor_steps, invariant_locals, strongly_disjoint, transitive_load_effects,
    transitive_store_effects, Access, AccessSite, Sym,
};
use crate::cfg::{BlockId, Cfg};
use crate::dom::Dominators;
use crate::loops::{LoopForest, NaturalLoop};
use crate::memdep::{analyze_loop, DepKind, GuaranteedDep};
use crate::pointsto::{FnView, PointsTo};
use crate::scalar::classify;
use std::collections::{BTreeMap, BTreeSet};
use tvm::alloc::SiteKind;
use tvm::isa::{ElemKind, Instr};
use tvm::program::{Function, Local, Program};
use tvm::verify::stack_effect;

/// Everything needed to reason about one located loop.
struct Loc {
    cfg: Cfg,
    dom: Dominators,
    forest: LoopForest,
    loop_idx: usize,
}

impl Loc {
    fn lp(&self) -> &NaturalLoop {
        &self.forest.loops[self.loop_idx]
    }
}

fn locate(f: &Function, anchor: u32) -> Result<Loc, String> {
    let cfg = Cfg::build(f);
    let b = cfg
        .block_of(anchor)
        .ok_or_else(|| format!("anchor pc {} is not inside any block", anchor))?;
    let dom = Dominators::compute(&cfg);
    let forest = LoopForest::build(&cfg, &dom);
    let loop_idx = forest
        .innermost_containing(b)
        .ok_or_else(|| format!("anchor pc {} is not inside any loop", anchor))?;
    Ok(Loc {
        cfg,
        dom,
        forest,
        loop_idx,
    })
}

/// Checks `proof` against the two programs. `Ok(())` means every
/// claimed fact was re-derived; `Err` carries the first violation.
pub fn check(pre: &Program, post: &Program, proof: &LegalityProof) -> Result<(), String> {
    let fi = proof.func.0 as usize;
    let fpre = pre
        .functions
        .get(fi)
        .ok_or("proof names a function the pre-program does not have")?;
    let fpost = post
        .functions
        .get(fi)
        .ok_or("proof names a function the post-program does not have")?;

    // nothing but the named function may change
    if pre.functions.len() != post.functions.len() {
        return Err("the transform added or removed functions".into());
    }
    for (i, (a, b)) in pre.functions.iter().zip(&post.functions).enumerate() {
        if i != fi && (a.code != b.code || a.n_locals != b.n_locals || a.n_params != b.n_params) {
            return Err(format!(
                "function {} changed but is not named in the proof",
                i
            ));
        }
    }
    if pre.globals != post.globals
        || pre.entry != post.entry
        || pre.classes.len() != post.classes.len()
        || pre
            .classes
            .iter()
            .zip(&post.classes)
            .any(|(a, b)| a.fields != b.fields)
    {
        return Err("the transform changed program-level declarations".into());
    }
    if fpost.n_params != fpre.n_params || fpost.returns != fpre.returns {
        return Err("the transform changed the function signature".into());
    }

    let loc_pre = locate(fpre, proof.pre_anchor)?;
    match &proof.transform {
        Transform::Reduction {
            channel,
            op,
            identity,
            acc,
            load_at,
            store_at,
        } => {
            let loc_post = locate(fpost, proof.post_anchor)?;
            check_reduction(
                pre, post, fi, &loc_pre, &loc_post, channel, op, *identity, *acc, *load_at,
                *store_at,
            )
        }
        Transform::Privatization {
            channel,
            tmp,
            loads,
            stores,
        } => {
            let loc_post = locate(fpost, proof.post_anchor)?;
            check_privatization(
                pre, post, fi, &loc_pre, &loc_post, channel, *tmp, loads, stores,
            )
        }
        Transform::Distribution {
            groups,
            inductors,
            orig_inductor,
            anchors,
        } => check_distribution(
            pre,
            post,
            fi,
            &loc_pre,
            groups,
            inductors,
            *orig_inductor,
            anchors,
        ),
    }
}

// ---------------------------------------------------------------------
// shared re-derivations
// ---------------------------------------------------------------------

fn pre_sites(program: &Program, fi: usize, loc: &Loc) -> Vec<AccessSite> {
    let f = &program.functions[fi];
    let inductors = inductor_steps(f, &loc.cfg, &loc.dom, loc.lp());
    let invariant = invariant_locals(f, &loc.cfg, loc.lp());
    let effects = transitive_store_effects(program);
    collect_accesses(
        program,
        f,
        &loc.cfg,
        loc.lp(),
        &inductors,
        &invariant,
        &effects,
    )
}

fn deps_of(program: &Program, fi: usize, loc: &Loc) -> Vec<GuaranteedDep> {
    let f = &program.functions[fi];
    let pt = PointsTo::analyze(program);
    let view = pt.view(tvm::program::FuncId(fi as u16));
    analyze_loop(program, f, &loc.cfg, &loc.dom, loc.lp(), Some(&view))
}

fn channel_dep_kind(ch: &Channel) -> DepKind {
    match *ch {
        Channel::Static(g) => DepKind::Static(g),
        Channel::Field { base, field } => DepKind::Field { base, field },
    }
}

/// Post-transform dependences must be a refinement of the originals:
/// no new kinds, and (when given) the removed channel's kind gone.
fn check_refinement(
    pre_deps: &[GuaranteedDep],
    post_deps: &[GuaranteedDep],
    removed: Option<&DepKind>,
) -> Result<(), String> {
    for d in post_deps {
        if Some(&d.kind) == removed {
            return Err(format!(
                "the transformed loop still carries the removed dependence ({})",
                d.reason()
            ));
        }
        if !pre_deps.iter().any(|p| p.kind == d.kind) {
            return Err(format!(
                "the transformed loop has a dependence the original did not: {}",
                d.reason()
            ));
        }
    }
    Ok(())
}

/// Every loop access site must be provably off-channel.
fn check_exclusivity(
    sites: &[AccessSite],
    ch: &Channel,
    view: &FnView<'_>,
    allow: &[u32],
) -> Result<(), String> {
    let (lt, st) = (ch.load_template(), ch.store_template());
    for s in sites {
        if allow.contains(&s.instr) {
            continue;
        }
        if !strongly_disjoint(&s.access, &lt, Some(view))
            || !strongly_disjoint(&s.access, &st, Some(view))
        {
            return Err(format!(
                "pc {} may touch {} while it is privatized",
                s.instr,
                ch.describe()
            ));
        }
    }
    Ok(())
}

/// No call inside the loop may (transitively) read or write the
/// channel's memory category.
fn check_calls_off_channel(
    program: &Program,
    f: &Function,
    cfg: &Cfg,
    lp: &NaturalLoop,
    ch: &Channel,
) -> Result<(), String> {
    let cat = match ch {
        Channel::Static(_) => 0,
        Channel::Field { .. } => 1,
    };
    let loads = transitive_load_effects(program);
    let stores = transitive_store_effects(program);
    for &b in &lp.blocks {
        let block = &cfg.blocks[b.0 as usize];
        for idx in block.start..block.end {
            if let Instr::Call(callee) = f.code[idx as usize] {
                let c = callee.0 as usize;
                if loads.get(c).is_some_and(|e| e[cat]) || stores.get(c).is_some_and(|e| e[cat]) {
                    return Err(format!(
                        "the call at pc {} may reach the privatized cell's memory",
                        idx
                    ));
                }
            }
        }
    }
    Ok(())
}

/// The channel's cell kind must be `Int` for exact reassociation.
fn check_channel_int(program: &Program, view: &FnView<'_>, ch: &Channel) -> Result<(), String> {
    let ok = match *ch {
        Channel::Static(g) => program.globals.get(g.0 as usize) == Some(&ElemKind::Int),
        Channel::Field { base, field } => {
            let (sites, unknown) = view.local_sites(base);
            !unknown
                && !sites.is_empty()
                && sites
                    .iter()
                    .all(|&s| match view.program().sites().get(s).kind {
                        SiteKind::Object(c) => {
                            program
                                .classes
                                .get(c.0 as usize)
                                .and_then(|cd| cd.fields.get(field as usize))
                                == Some(&ElemKind::Int)
                        }
                        SiteKind::Array(_) => false,
                    })
        }
    };
    ok.then_some(())
        .ok_or_else(|| format!("{} is not provably an integer cell", ch.describe()))
}

/// `base` provably holds a fresh allocation before the loop runs.
/// Re-derived with the checker's own stack walk (the matcher uses its
/// provenance graph instead).
fn check_base_nonnull(
    program: &Program,
    f: &Function,
    cfg: &Cfg,
    dom: &Dominators,
    lp: &NaturalLoop,
    base: Local,
) -> Result<(), String> {
    if base.0 < f.n_params {
        return Err("the object reference is a parameter and may be null".into());
    }
    let mut dominating_def = false;
    for (bi, block) in cfg.blocks.iter().enumerate() {
        let mut stack: Vec<bool> = Vec::new(); // true = freshly allocated
        for idx in block.start..block.end {
            let instr = f.code[idx as usize];
            if let Instr::IInc(l, _) = instr {
                if l == base {
                    return Err("the object reference is arithmetically modified".into());
                }
            }
            if let Instr::Store(l) = instr {
                if l == base {
                    if !stack.pop().unwrap_or(false) {
                        return Err(format!(
                            "the store of the object reference at pc {} is not a \
                             fresh allocation",
                            idx
                        ));
                    }
                    let b = BlockId(bi as u32);
                    if dom.dominates(b, lp.header) && !lp.blocks.contains(&b) {
                        dominating_def = true;
                    }
                    continue;
                }
            }
            let Ok((pops, pushes)) = stack_effect(program, &instr) else {
                stack.clear();
                continue;
            };
            for _ in 0..pops {
                stack.pop();
            }
            let fresh = matches!(instr, Instr::NewObject(_) | Instr::NewArray(_));
            for _ in 0..pushes {
                stack.push(fresh);
            }
        }
    }
    dominating_def
        .then_some(())
        .ok_or_else(|| "no allocation of the object reference dominates the loop".into())
}

/// Compares the post-transform loop body against the pre-transform one
/// with the expected per-pc substitutions applied. Branch targets are
/// ignored (relinearization moves them); one extra trailing `Goto` per
/// block is tolerated (the detour into an edge trampoline).
fn check_loop_code(
    fpre: &Function,
    pre_cfg: &Cfg,
    pre_lp: &NaturalLoop,
    fpost: &Function,
    post_cfg: &Cfg,
    post_lp: &NaturalLoop,
    subst: &BTreeMap<u32, Vec<Instr>>,
) -> Result<(), String> {
    let norm = |i: Instr| i.map_target(|_| 0);
    let pre_blocks: Vec<BlockId> = pre_lp.blocks.iter().copied().collect();
    let post_blocks: Vec<BlockId> = post_lp.blocks.iter().copied().collect();
    if pre_blocks.len() != post_blocks.len() {
        return Err(format!(
            "the transformed loop has {} blocks, the original {}",
            post_blocks.len(),
            pre_blocks.len()
        ));
    }
    for (&pb, &qb) in pre_blocks.iter().zip(&post_blocks) {
        let p = &pre_cfg.blocks[pb.0 as usize];
        let q = &post_cfg.blocks[qb.0 as usize];
        let mut expected: Vec<Instr> = Vec::new();
        for idx in p.start..p.end {
            match subst.get(&idx) {
                Some(rep) => expected.extend(rep.iter().copied()),
                None => expected.push(fpre.code[idx as usize]),
            }
        }
        let got: Vec<Instr> = (q.start..q.end).map(|i| fpost.code[i as usize]).collect();
        let trailing_goto_ok = got.len() == expected.len() + 1
            && matches!(got.last(), Some(Instr::Goto(_) | Instr::AGoto(_)));
        if !(got.len() == expected.len() || trailing_goto_ok) {
            return Err(format!(
                "transformed block at pc {} does not match the expected rewrite",
                q.start
            ));
        }
        for (e, g) in expected.iter().zip(&got) {
            if norm(*e) != norm(*g) {
                return Err(format!(
                    "transformed code diverges from the expected rewrite: \
                     expected {:?}, found {:?}",
                    e, g
                ));
            }
        }
    }
    Ok(())
}

/// Every edge entering the loop must run `payload` last (before the
/// terminator); every edge leaving it must land on a block beginning
/// with `payload`.
fn check_edge_payloads(
    f: &Function,
    cfg: &Cfg,
    lp: &NaturalLoop,
    entry: &[Instr],
    exit: &[Instr],
) -> Result<(), String> {
    for &(pb, _) in &lp.entry_edges {
        let p = &cfg.blocks[pb.0 as usize];
        let mut code: Vec<Instr> = (p.start..p.end).map(|i| f.code[i as usize]).collect();
        if code.last().is_some_and(|i| i.is_terminator()) {
            code.pop();
        }
        if code.len() < entry.len() || &code[code.len() - entry.len()..] != entry {
            return Err(format!(
                "the entry edge from the block at pc {} does not seed the private \
                 local",
                p.start
            ));
        }
    }
    for &(_, xb) in &lp.exit_edges {
        let x = &cfg.blocks[xb.0 as usize];
        let got: Vec<Instr> = (x.start..x.end.min(x.start + exit.len() as u32))
            .map(|i| f.code[i as usize])
            .collect();
        if got != exit {
            return Err(format!(
                "the exit edge into the block at pc {} does not fold the private \
                 local back",
                x.start
            ));
        }
    }
    if lp.exit_edges.is_empty() {
        return Err("the transformed loop has no exit edge to fold back on".into());
    }
    Ok(())
}

// ---------------------------------------------------------------------
// the abstract-value machine (checker-side chain analysis)
// ---------------------------------------------------------------------

/// Abstract value for the reduction chain re-check: how many times the
/// channel's loaded value occurs in the expression, and whether every
/// operator that combined it is the claimed one.
#[derive(Clone, Copy)]
struct Av {
    chan_uses: u32,
    pure_chain: bool,
}

impl Av {
    const PURE: Av = Av {
        chan_uses: 0,
        pure_chain: true,
    };
}

/// Re-checks that the stored value at `store_at` is
/// `chan ⊕ e₁ ⊕ … ⊕ eₙ` for the single claimed operator, with the
/// channel loaded exactly once and no intermediate escaping the chain.
fn check_chain(
    program: &Program,
    f: &Function,
    block: std::ops::Range<u32>,
    ch: &Channel,
    op: &Instr,
    load_at: u32,
    store_at: u32,
) -> Result<(), String> {
    let mut stack: Vec<Av> = Vec::new();
    let mut store_seen = false;
    for idx in block {
        let instr = f.code[idx as usize];
        if idx == load_at {
            match (*ch, instr) {
                (Channel::Static(g), Instr::GetStatic(h)) if g == h => {}
                (Channel::Field { field, .. }, Instr::GetField(h)) if field == h => {
                    stack.pop();
                }
                _ => return Err("the claimed channel load is not a load of the channel".into()),
            }
            stack.push(Av {
                chan_uses: 1,
                pure_chain: true,
            });
            continue;
        }
        if idx == store_at {
            let value = stack.pop().unwrap_or(Av::PURE);
            if let Channel::Field { .. } = ch {
                let base = stack.pop().unwrap_or(Av::PURE);
                if base.chan_uses > 0 {
                    return Err("the store's base operand contains the channel value".into());
                }
            }
            match (*ch, instr) {
                (Channel::Static(g), Instr::PutStatic(h)) if g == h => {}
                (Channel::Field { field, .. }, Instr::PutField(h)) if field == h => {}
                _ => return Err("the claimed channel store is not a store of the channel".into()),
            }
            if value.chan_uses != 1 || !value.pure_chain {
                return Err(
                    "the stored value is not a single-operator chain over one use of \
                     the channel"
                        .into(),
                );
            }
            store_seen = true;
            continue;
        }
        if instr == *op {
            let b = stack.pop().unwrap_or(Av::PURE);
            let a = stack.pop().unwrap_or(Av::PURE);
            stack.push(Av {
                chan_uses: a.chan_uses + b.chan_uses,
                pure_chain: a.pure_chain && b.pure_chain,
            });
            continue;
        }
        let Ok((pops, pushes)) = stack_effect(program, &instr) else {
            return Err(format!("cannot model the stack effect of pc {}", idx));
        };
        for _ in 0..pops {
            if stack.pop().unwrap_or(Av::PURE).chan_uses > 0 {
                return Err(format!(
                    "pc {} consumes a chain value outside the reduction update",
                    idx
                ));
            }
        }
        for _ in 0..pushes {
            stack.push(Av::PURE);
        }
    }
    if !store_seen {
        return Err("the claimed channel store is outside the update block".into());
    }
    if stack.iter().any(|v| v.chan_uses > 0) {
        return Err("a chain value survives past the end of the update block".into());
    }
    Ok(())
}

// ---------------------------------------------------------------------
// per-transform checks
// ---------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn check_reduction(
    pre: &Program,
    post: &Program,
    fi: usize,
    loc_pre: &Loc,
    loc_post: &Loc,
    ch: &Channel,
    op: &Instr,
    identity: i64,
    acc: Local,
    load_at: u32,
    store_at: u32,
) -> Result<(), String> {
    let fpre = &pre.functions[fi];
    let fpost = &post.functions[fi];

    // the identity is re-derived from the operator, never trusted: a
    // transform that seeds the wrong constant is caught right here
    let expected_identity = match op {
        Instr::IAdd | Instr::IOr | Instr::IXor => 0,
        Instr::IMul => 1,
        Instr::IAnd => -1,
        Instr::IMin => i64::MAX,
        Instr::IMax => i64::MIN,
        other => {
            return Err(format!(
                "{:?} is not an associative integer operator; the reduction is not \
                 exact",
                other
            ))
        }
    };
    debug_assert_eq!(reduction_identity(op), Some(expected_identity));
    if identity != expected_identity {
        return Err(format!(
            "claimed identity {} does not match the operator's identity {}",
            identity, expected_identity
        ));
    }
    if acc.0 != fpre.n_locals || fpost.n_locals != fpre.n_locals + 1 {
        return Err("the accumulator local is not the single fresh local".into());
    }

    // the removed dependence must really exist on the original loop
    let pre_deps = deps_of(pre, fi, loc_pre);
    let removed_kind = channel_dep_kind(ch);
    if !pre_deps
        .iter()
        .any(|d| d.kind == removed_kind && d.load_at == load_at && d.store_at == store_at)
    {
        return Err("the original loop has no such guaranteed recurrence".into());
    }

    let pt_pre = PointsTo::analyze(pre);
    let view_pre = pt_pre.view(tvm::program::FuncId(fi as u16));
    check_channel_int(pre, &view_pre, ch)?;
    let sites = pre_sites(pre, fi, loc_pre);
    check_exclusivity(&sites, ch, &view_pre, &[load_at, store_at])?;
    check_calls_off_channel(pre, fpre, &loc_pre.cfg, loc_pre.lp(), ch)?;
    if let Channel::Field { base, .. } = ch {
        check_base_nonnull(pre, fpre, &loc_pre.cfg, &loc_pre.dom, loc_pre.lp(), *base)?;
    }

    // chain legality, re-derived with the abstract-value machine
    let sb = loc_pre
        .cfg
        .block_of(store_at)
        .ok_or("the channel store is unreachable")?;
    if loc_pre.cfg.block_of(load_at) != Some(sb) {
        return Err("load and store of the recurrence are in different blocks".into());
    }
    let block = &loc_pre.cfg.blocks[sb.0 as usize];
    check_chain(pre, fpre, block.start..block.end, ch, op, load_at, store_at)?;

    // the emitted code must be exactly the expected delta rewrite
    let (load_subst, store_subst, entry, exit) = match *ch {
        Channel::Static(g) => (
            vec![Instr::IConst(expected_identity)],
            vec![Instr::Load(acc), *op, Instr::Store(acc)],
            vec![Instr::IConst(expected_identity), Instr::Store(acc)],
            vec![
                Instr::GetStatic(g),
                Instr::Load(acc),
                *op,
                Instr::PutStatic(g),
            ],
        ),
        Channel::Field { base, field } => (
            vec![Instr::Pop, Instr::IConst(expected_identity)],
            vec![Instr::Load(acc), *op, Instr::Store(acc), Instr::Pop],
            vec![Instr::IConst(expected_identity), Instr::Store(acc)],
            vec![
                Instr::Load(base),
                Instr::Load(base),
                Instr::GetField(field),
                Instr::Load(acc),
                *op,
                Instr::PutField(field),
            ],
        ),
    };
    let subst = BTreeMap::from([(load_at, load_subst), (store_at, store_subst)]);
    check_loop_code(
        fpre,
        &loc_pre.cfg,
        loc_pre.lp(),
        fpost,
        &loc_post.cfg,
        loc_post.lp(),
        &subst,
    )?;
    check_edge_payloads(fpost, &loc_post.cfg, loc_post.lp(), &entry, &exit)?;

    // dependence refinement and scalar facts on the transformed loop
    let post_deps = deps_of(post, fi, loc_post);
    check_refinement(&pre_deps, &post_deps, Some(&removed_kind))?;
    let classes = classify(
        post,
        fpost,
        &loc_post.cfg,
        &loc_post.dom,
        &loc_post.forest,
        loc_post.loop_idx,
    );
    if !classes.reductions.contains(&acc) {
        return Err("the accumulator does not classify as a scalar reduction".into());
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn check_privatization(
    pre: &Program,
    post: &Program,
    fi: usize,
    loc_pre: &Loc,
    loc_post: &Loc,
    ch: &Channel,
    tmp: Local,
    loads: &[u32],
    stores: &[u32],
) -> Result<(), String> {
    let fpre = &pre.functions[fi];
    let fpost = &post.functions[fi];
    if tmp.0 != fpre.n_locals || fpost.n_locals != fpre.n_locals + 1 {
        return Err("the private local is not the single fresh local".into());
    }

    // re-derive the channel's site sets and compare with the claims
    let sites = pre_sites(pre, fi, loc_pre);
    let derived_loads: BTreeSet<u32> = sites
        .iter()
        .filter(|s| ch.matches(&s.access) && s.access.is_load())
        .map(|s| s.instr)
        .collect();
    let derived_stores: BTreeSet<u32> = sites
        .iter()
        .filter(|s| ch.matches(&s.access) && !s.access.is_load())
        .map(|s| s.instr)
        .collect();
    if derived_loads != loads.iter().copied().collect::<BTreeSet<u32>>()
        || derived_stores != stores.iter().copied().collect::<BTreeSet<u32>>()
    {
        return Err("claimed channel sites do not match the loop's accesses".into());
    }
    if derived_stores.is_empty() {
        return Err("a cell that is never stored cannot be privatized".into());
    }

    let pt_pre = PointsTo::analyze(pre);
    let view_pre = pt_pre.view(tvm::program::FuncId(fi as u16));
    let allowed: Vec<u32> = derived_loads
        .iter()
        .chain(&derived_stores)
        .copied()
        .collect();
    check_exclusivity(&sites, ch, &view_pre, &allowed)?;
    check_calls_off_channel(pre, fpre, &loc_pre.cfg, loc_pre.lp(), ch)?;
    if let Channel::Field { base, .. } = ch {
        check_base_nonnull(pre, fpre, &loc_pre.cfg, &loc_pre.dom, loc_pre.lp(), *base)?;
    }

    // written-before-read, re-derived with the checker's own ordering
    let site_of = |pc: u32| sites.iter().find(|s| s.instr == pc);
    let precedes = |a: &AccessSite, b: &AccessSite| {
        if a.block == b.block {
            a.instr < b.instr
        } else {
            loc_pre.dom.dominates(a.block, b.block)
        }
    };
    for &l in &derived_loads {
        let ls = site_of(l).ok_or("claimed load vanished")?;
        let ok = derived_stores
            .iter()
            .filter_map(|&s| site_of(s))
            .any(|ss| precedes(ss, ls));
        if !ok {
            return Err(format!(
                "the load at pc {} is not preceded by a store on every path; the \
                 cell's value flows across iterations",
                l
            ));
        }
    }

    // structural: the loop body modulo the expected substitutions
    let mut subst: BTreeMap<u32, Vec<Instr>> = BTreeMap::new();
    for &l in &derived_loads {
        subst.insert(
            l,
            match ch {
                Channel::Static(_) => vec![Instr::Load(tmp)],
                Channel::Field { .. } => vec![Instr::Pop, Instr::Load(tmp)],
            },
        );
    }
    for &s in &derived_stores {
        subst.insert(
            s,
            match ch {
                Channel::Static(_) => vec![Instr::Store(tmp)],
                Channel::Field { .. } => vec![Instr::Store(tmp), Instr::Pop],
            },
        );
    }
    let (entry, exit) = match *ch {
        Channel::Static(g) => (
            vec![Instr::GetStatic(g), Instr::Store(tmp)],
            vec![Instr::Load(tmp), Instr::PutStatic(g)],
        ),
        Channel::Field { base, field } => (
            vec![Instr::Load(base), Instr::GetField(field), Instr::Store(tmp)],
            vec![Instr::Load(base), Instr::Load(tmp), Instr::PutField(field)],
        ),
    };
    check_loop_code(
        fpre,
        &loc_pre.cfg,
        loc_pre.lp(),
        fpost,
        &loc_post.cfg,
        loc_post.lp(),
        &subst,
    )?;
    check_edge_payloads(fpost, &loc_post.cfg, loc_post.lp(), &entry, &exit)?;

    // refinement plus scalar privacy of the fresh local
    let pre_deps = deps_of(pre, fi, loc_pre);
    let post_deps = deps_of(post, fi, loc_post);
    check_refinement(&pre_deps, &post_deps, Some(&channel_dep_kind(ch)))?;
    let classes = classify(
        post,
        fpost,
        &loc_post.cfg,
        &loc_post.dom,
        &loc_post.forest,
        loc_post.loop_idx,
    );
    if classes.serializing.contains(&tmp) {
        return Err("privatizing moved the dependence into the fresh local".into());
    }
    if !classes.iteration_private.contains(&tmp) && !classes.block_local.contains(&tmp) {
        return Err("the fresh local is not iteration-private in the transformed loop".into());
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn check_distribution(
    pre: &Program,
    post: &Program,
    fi: usize,
    loc_pre: &Loc,
    groups: &[Vec<(u32, u32)>],
    inductors: &[Local],
    orig_inductor: Local,
    anchors: &[u32],
) -> Result<(), String> {
    let fpre = &pre.functions[fi];
    let fpost = &post.functions[fi];
    let lp = loc_pre.lp();
    let g_count = groups.len();
    if g_count < 2 || inductors.len() != g_count || anchors.len() != g_count {
        return Err("malformed distribution proof".into());
    }
    if inductors[g_count - 1] != orig_inductor {
        return Err("the last fission loop must reuse the original inductor".into());
    }
    let fresh: BTreeSet<Local> = inductors[..g_count - 1].iter().copied().collect();
    if fresh.len() != g_count - 1
        || fresh.iter().any(|l| l.0 < fpre.n_locals)
        || fpost.n_locals != fpre.n_locals + (g_count as u16 - 1)
    {
        return Err("fission inductors are not distinct fresh locals".into());
    }

    // re-derive the loop shape
    if lp.blocks.len() != 2 || lp.latches.len() != 1 {
        return Err("the original loop is not a single-body-block counted loop".into());
    }
    let header = lp.header;
    let body = lp.latches[0];
    let hb = &loc_pre.cfg.blocks[header.0 as usize];
    let bb = &loc_pre.cfg.blocks[body.0 as usize];
    if hb.end - hb.start != 3 || bb.end - bb.start < 3 {
        return Err("the original loop's guard or body has an unexpected shape".into());
    }
    let Instr::Load(ivar) = fpre.code[hb.start as usize] else {
        return Err("the guard does not begin by loading the inductor".into());
    };
    if ivar != orig_inductor {
        return Err("the claimed inductor is not the guard's".into());
    }
    let Instr::IInc(inc_var, step) = fpre.code[(bb.end - 2) as usize] else {
        return Err("the body does not end with the inductor increment".into());
    };
    if inc_var != ivar {
        return Err("the body's increment is not the inductor's".into());
    }
    let stmt_range = bb.start..bb.end - 2;
    for idx in stmt_range.clone() {
        match fpre.code[idx as usize] {
            Instr::Store(l) | Instr::IInc(l, _) if l == ivar => {
                return Err("the body redefines the inductor".into())
            }
            Instr::IDiv
            | Instr::IRem
            | Instr::NewObject(_)
            | Instr::NewArray(_)
            | Instr::Call(_) => {
                return Err(format!(
                    "pc {} can fault, allocate or call; its order is not free to change",
                    idx
                ))
            }
            _ => {}
        }
    }

    // re-split statements and check the claimed partition
    let mut stmts: Vec<(u32, u32)> = Vec::new();
    {
        let mut depth: i64 = 0;
        let mut start = stmt_range.start;
        for idx in stmt_range.clone() {
            let (pops, pushes) = stack_effect(pre, &fpre.code[idx as usize])
                .map_err(|e| format!("stack model failure at pc {}: {}", idx, e))?;
            depth -= pops as i64;
            if depth < 0 {
                return Err("the body is not a sequence of whole statements".into());
            }
            depth += pushes as i64;
            if depth == 0 {
                stmts.push((start, idx + 1));
                start = idx + 1;
            }
        }
        if depth != 0 || start != stmt_range.end {
            return Err("the body is not a sequence of whole statements".into());
        }
    }
    let mut claimed: Vec<(u32, u32)> = groups.iter().flatten().copied().collect();
    claimed.sort_unstable();
    let mut derived = stmts.clone();
    derived.sort_unstable();
    if claimed != derived {
        return Err("the claimed groups do not partition the body's statements".into());
    }
    let stmt_idx = |pc: u32| stmts.iter().position(|&(s, e)| pc >= s && pc < e);
    let group_pos = |stmt: usize| -> Option<usize> {
        let (s, e) = stmts[stmt];
        groups.iter().position(|g| g.contains(&(s, e)))
    };

    // re-derive inter-statement dependences and check the claimed order
    // respects all of them
    let step = step as i64;
    let sites = pre_sites(pre, fi, loc_pre);
    let pt_pre = PointsTo::analyze(pre);
    let view = pt_pre.view(tvm::program::FuncId(fi as u16));
    let reads_writes: Vec<(BTreeSet<Local>, BTreeSet<Local>)> = stmts
        .iter()
        .map(|&(s, e)| {
            let mut r = BTreeSet::new();
            let mut w = BTreeSet::new();
            for idx in s..e {
                match fpre.code[idx as usize] {
                    Instr::Load(l) if l != ivar => {
                        r.insert(l);
                    }
                    Instr::Store(l) => {
                        w.insert(l);
                    }
                    Instr::IInc(l, _) => {
                        r.insert(l);
                        w.insert(l);
                    }
                    _ => {}
                }
            }
            (r, w)
        })
        .collect();
    for a in 0..stmts.len() {
        for b in a + 1..stmts.len() {
            let (ga, gb) = match (group_pos(a), group_pos(b)) {
                (Some(x), Some(y)) => (x, y),
                _ => return Err("a statement is missing from every group".into()),
            };
            if ga == gb {
                continue;
            }
            let (ra, wa) = &reads_writes[a];
            let (rb, wb) = &reads_writes[b];
            if wa.intersection(rb).next().is_some()
                || wa.intersection(wb).next().is_some()
                || ra.intersection(wb).next().is_some()
            {
                return Err(format!(
                    "statements at pcs {} and {} share a written local across groups",
                    stmts[a].0, stmts[b].0
                ));
            }
            for sa in sites.iter().filter(|s| stmt_idx(s.instr) == Some(a)) {
                for sb in sites.iter().filter(|s| stmt_idx(s.instr) == Some(b)) {
                    if !sa.access.is_store() && !sb.access.is_store() {
                        continue;
                    }
                    if strongly_disjoint(&sa.access, &sb.access, Some(&view)) {
                        continue;
                    }
                    // affine same-base pairs have a provable direction
                    let dir = affine_direction(&sa.access, &sb.access, ivar, step);
                    match dir {
                        Some(0) => {
                            // never coincide: independent
                        }
                        Some(1) => {
                            // source = a, sink = b: a's group must not run later
                            if ga > gb {
                                return Err(format!(
                                    "the dependence from pc {} to pc {} runs backwards \
                                     across groups",
                                    sa.instr, sb.instr
                                ));
                            }
                        }
                        Some(-1) => {
                            if gb > ga {
                                return Err(format!(
                                    "the dependence from pc {} to pc {} runs backwards \
                                     across groups",
                                    sb.instr, sa.instr
                                ));
                            }
                        }
                        _ => {
                            return Err(format!(
                                "pcs {} and {} may touch the same memory across groups \
                                 with no provable direction",
                                sa.instr, sb.instr
                            ))
                        }
                    }
                }
            }
        }
    }

    // post-transform structure: one counted loop per group, in order,
    // each body an exact substituted copy of its group's statements
    let post_cfg = Cfg::build(fpost);
    let post_dom = Dominators::compute(&post_cfg);
    let post_forest = LoopForest::build(&post_cfg, &post_dom);
    let norm = |i: Instr| i.map_target(|_| 0);
    let mut fission_headers: Vec<BlockId> = Vec::new();
    let mut fission_all_blocks: BTreeSet<BlockId> = BTreeSet::new();
    for (g, &anchor) in anchors.iter().enumerate() {
        let ab = post_cfg
            .block_of(anchor)
            .ok_or("a fission anchor is unreachable")?;
        let li = post_forest
            .innermost_containing(ab)
            .ok_or("a fission anchor is not inside a loop")?;
        let flp = &post_forest.loops[li];
        if flp.blocks.len() != 2 || flp.latches.len() != 1 {
            return Err("a fission loop is not a single-body-block counted loop".into());
        }
        fission_headers.push(flp.header);
        fission_all_blocks.extend(flp.blocks.iter().copied());
        let fh = &post_cfg.blocks[flp.header.0 as usize];
        let fb = &post_cfg.blocks[flp.latches[0].0 as usize];
        // guard: the original's guard with the inductor substituted
        let subst = |i: Instr| match i {
            Instr::Load(l) if l == ivar => Instr::Load(inductors[g]),
            Instr::IInc(l, c) if l == ivar => Instr::IInc(inductors[g], c),
            other => other,
        };
        if fh.end - fh.start != 3 {
            return Err("a fission guard has an unexpected shape".into());
        }
        for k in 0..3 {
            let want = subst(fpre.code[(hb.start + k) as usize]);
            let got = fpost.code[(fh.start + k) as usize];
            if norm(want) != norm(got) {
                return Err(format!(
                    "fission guard {} diverges from the original guard",
                    g
                ));
            }
        }
        // body: the group's statements, then the increment, then the
        // back edge
        let mut expected: Vec<Instr> = Vec::new();
        for &(s, e) in &groups[g] {
            for idx in s..e {
                expected.push(subst(fpre.code[idx as usize]));
            }
        }
        expected.push(subst(fpre.code[(bb.end - 2) as usize]));
        let got: Vec<Instr> = (fb.start..fb.end).map(|i| fpost.code[i as usize]).collect();
        if got.len() != expected.len() + 1
            || !matches!(got.last(), Some(Instr::Goto(_) | Instr::AGoto(_)))
        {
            return Err(format!("fission body {} has an unexpected shape", g));
        }
        for (e, gi) in expected.iter().zip(&got) {
            if norm(*e) != norm(*gi) {
                return Err(format!(
                    "fission body {} diverges from its group's statements",
                    g
                ));
            }
        }
        // refinement per fission loop
        let post_loc = Loc {
            cfg: post_cfg.clone(),
            dom: Dominators::compute(&post_cfg),
            forest: post_forest.clone(),
            loop_idx: li,
        };
        let pre_deps = deps_of(pre, fi, loc_pre);
        let post_deps = deps_of(post, fi, &post_loc);
        check_refinement(&pre_deps, &post_deps, None)?;
    }
    // the loops must chain in the claimed order: each guard's exit edge
    // leads to the next guard, the last to the outside world
    for g in 0..g_count {
        let fh = &post_cfg.blocks[fission_headers[g].0 as usize];
        let Some(target) = fpost.code[(fh.end - 1) as usize].branch_target() else {
            return Err("a fission guard does not end in a branch".into());
        };
        let tb = post_cfg
            .block_of(target)
            .ok_or("a fission guard branches nowhere")?;
        if g + 1 < g_count {
            if tb != fission_headers[g + 1] {
                return Err("the fission loops do not chain in the claimed order".into());
            }
        } else if fission_all_blocks.contains(&tb) {
            return Err("the last fission loop does not exit the nest".into());
        }
    }
    Ok(())
}

/// Provable direction for two affine same-base accesses of the same
/// inductor and scale: `Some(0)` = never coincide, `Some(1)` = source
/// is the first access, `Some(-1)` = source is the second, `None` = no
/// proof.
fn affine_direction(a: &Access, b: &Access, ivar: Local, step: i64) -> Option<i32> {
    let parts = |x: &Access| match x {
        Access::ArrayLoad {
            base: Sym::Invariant(b),
            index: Sym::Affine { ind, scale, offset },
        }
        | Access::ArrayStore {
            base: Sym::Invariant(b),
            index: Sym::Affine { ind, scale, offset },
        } => Some((*b, *ind, *scale, *offset)),
        _ => None,
    };
    let (ba, ia, ca, oa) = parts(a)?;
    let (bb, ib, cb, ob) = parts(b)?;
    if ba != bb || ia != ivar || ib != ivar || ca != cb {
        return None;
    }
    let per = ca.checked_mul(step)?;
    if per == 0 {
        return None;
    }
    let delta = ob.wrapping_sub(oa);
    if delta % per != 0 {
        return Some(0);
    }
    Some(if delta / per > 0 { -1 } else { 1 })
}
