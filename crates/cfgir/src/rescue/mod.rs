//! # Dependence-driven loop rescue
//!
//! The static pre-screen ([`crate::memdep`]) demotes loops with a
//! *guaranteed* cross-iteration RAW dependence: tracing them would be
//! wasted effort because the TEST hardware must serialize them. Some of
//! those recurrences are not essential, though — they are artifacts of
//! how the source was written, and a semantics-preserving rewrite
//! removes them:
//!
//! * **reduction recognition** — `g = g ⊕ e` over an associative,
//!   commutative *integer* operator (`+ * min max & | ^`; wrapping
//!   integer arithmetic is exact under reassociation, floats are not)
//!   becomes a privatized partial reduction: each iteration accumulates
//!   into a fresh local seeded with the operator's identity, and every
//!   loop exit folds the partial result back into the memory cell;
//! * **scalar expansion / privatization** — a static or invariant-base
//!   field that is provably written before read in every iteration is a
//!   scratch cell; routing it through a fresh local removes the memory
//!   traffic (the cell is read once on loop entry and written back once
//!   on exit, so a zero-trip loop is a no-op);
//! * **loop distribution** — a single-block counted loop whose
//!   statement-level dependence graph splits into several strongly
//!   connected components becomes one loop per component, confining a
//!   serial recurrence to the component that carries it.
//!
//! Every applied transform produces a [`LegalityProof`]. A separate
//! module, [`verify`], re-derives the dependence facts on the
//! transformed code with its own walkers and rejects any variant whose
//! dependence set is not a refinement of the original's — the transform
//! and its checker are deliberately independent code paths, so a bug in
//! the matcher shows up as a verifier rejection instead of a miscompile.
//!
//! The transforms assume fault-free execution of the loop body: they
//! reorder arithmetic, not faults. Division and allocation inside
//! distributed bodies are rejected for exactly that reason, and a
//! field-channel fold-back is only emitted when the object reference is
//! provably non-null at loop entry.

mod rewrite;
pub mod verify;

use crate::access::{
    collect_accesses, inductor_steps, invariant_locals, load_precedes_store, overlap_kind,
    strongly_disjoint, transitive_load_effects, transitive_store_effects, Access, AccessSite,
    BlockKind, DepWitness, Sym,
};
use crate::candidates::extract_candidates;
use crate::cfg::{BlockId, Cfg};
use crate::dom::Dominators;
use crate::loops::NaturalLoop;
use crate::memdep::{analyze_loop, DepKind, GuaranteedDep};
use crate::pointsto::{FnView, PointsTo};
use rewrite::{apply_distribution, apply_loop_rewrite, DistributionPlan, LoopRewrite};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use tvm::alloc::SiteKind;
use tvm::isa::{ElemKind, Instr};
use tvm::program::{FuncId, Function, GlobalId, Local, Program};
use tvm::verify::stack_effect;

/// Maximum rescue rounds per program. Each round applies at most one
/// transform and re-extracts, so the cap bounds compile time on
/// adversarial inputs; real programs converge in a handful of rounds.
pub const MAX_ROUNDS: usize = 12;

/// The memory cell a transform privatizes: a static, or a field of an
/// object held in a loop-invariant local.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Channel {
    /// A static variable.
    Static(GlobalId),
    /// `base.field` with `base` loop-invariant.
    Field {
        /// Local holding the object reference.
        base: Local,
        /// Field slot index.
        field: u16,
    },
}

impl Channel {
    /// Human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            Channel::Static(g) => format!("static g{}", g.0),
            Channel::Field { base, field } => {
                format!("field #{} of the object in local {}", field, base.0)
            }
        }
    }

    fn load_template(&self) -> Access {
        match *self {
            Channel::Static(g) => Access::StaticLoad(g),
            Channel::Field { base, field } => Access::FieldLoad {
                base: Sym::Invariant(base),
                field,
            },
        }
    }

    fn store_template(&self) -> Access {
        match *self {
            Channel::Static(g) => Access::StaticStore(g),
            Channel::Field { base, field } => Access::FieldStore {
                base: Sym::Invariant(base),
                field,
            },
        }
    }

    /// Exact-template match: the site is *this* channel (not merely a
    /// may-alias).
    fn matches(&self, a: &Access) -> bool {
        match (*self, a) {
            (Channel::Static(g), Access::StaticLoad(h) | Access::StaticStore(h)) => g == *h,
            (
                Channel::Field { base, field },
                Access::FieldLoad {
                    base: Sym::Invariant(b),
                    field: f,
                }
                | Access::FieldStore {
                    base: Sym::Invariant(b),
                    field: f,
                },
            ) => base == *b && field == *f,
            _ => false,
        }
    }

    /// Memory-category index (`[statics, fields, arrays]`) for the
    /// transitive call-effect summaries.
    fn category(&self) -> usize {
        match self {
            Channel::Static(_) => 0,
            Channel::Field { .. } => 1,
        }
    }

    fn block_kind(&self) -> BlockKind {
        match self {
            Channel::Static(g) => BlockKind::SameStatic(*g),
            Channel::Field { field, .. } => BlockKind::MayAliasField { field: *field },
        }
    }
}

/// The identity element of a legal reduction operator, or `None` when
/// the operator cannot be reassociated exactly (floats, subtraction,
/// shifts, division).
pub fn reduction_identity(op: &Instr) -> Option<i64> {
    Some(match op {
        Instr::IAdd | Instr::IOr | Instr::IXor => 0,
        Instr::IMul => 1,
        Instr::IAnd => -1,
        Instr::IMin => i64::MAX,
        Instr::IMax => i64::MIN,
        _ => return None,
    })
}

/// One applied rescue transform, carried inside its [`LegalityProof`].
#[derive(Debug, Clone)]
pub enum Transform {
    /// `channel = channel op e` privatized into partial reductions.
    Reduction {
        /// The accumulator cell.
        channel: Channel,
        /// The (associative, commutative, integer) operator.
        op: Instr,
        /// The operator's identity element, seeded on loop entry.
        identity: i64,
        /// The fresh private accumulator local.
        acc: Local,
        /// Pre-transform pc of the channel load.
        load_at: u32,
        /// Pre-transform pc of the channel store.
        store_at: u32,
    },
    /// A written-before-read scratch cell routed through a local.
    Privatization {
        /// The scratch cell.
        channel: Channel,
        /// The fresh private local.
        tmp: Local,
        /// Pre-transform pcs of the channel loads.
        loads: Vec<u32>,
        /// Pre-transform pcs of the channel stores.
        stores: Vec<u32>,
    },
    /// Statement-level fission of a single-block counted loop.
    Distribution {
        /// Per-group statement ranges `[start, end)` in pre-transform
        /// pcs, in emission order.
        groups: Vec<Vec<(u32, u32)>>,
        /// Per-group inductor local (last = the original).
        inductors: Vec<Local>,
        /// The original inductor local.
        orig_inductor: Local,
        /// Post-transform pc inside each fission loop's body, in the
        /// same order as `groups`.
        anchors: Vec<u32>,
    },
}

impl Transform {
    /// Short transform name for diagnostics (`TR001`/`TR002` lint rows).
    pub fn name(&self) -> &'static str {
        match self {
            Transform::Reduction { .. } => "reduction",
            Transform::Privatization { .. } => "privatization",
            Transform::Distribution { .. } => "distribution",
        }
    }

    /// What the transform targeted, stable across rescue rounds (used
    /// to blocklist verifier-rejected variants).
    pub fn target(&self) -> String {
        match self {
            Transform::Reduction { channel, .. } => format!("reduction:{}", channel.describe()),
            Transform::Privatization { channel, .. } => {
                format!("privatization:{}", channel.describe())
            }
            Transform::Distribution { groups, .. } => {
                format!("distribution:{}groups", groups.len())
            }
        }
    }
}

/// A machine-checkable claim that one loop transform is legal. The
/// proof names the function, anchors locating the loop before and after
/// the rewrite, and the transform's full parameters; [`verify::check`]
/// re-derives every claimed fact from the two programs.
#[derive(Debug, Clone)]
pub struct LegalityProof {
    /// The transformed function.
    pub func: FuncId,
    /// A pc inside the loop's header block in the *pre*-transform
    /// function.
    pub pre_anchor: u32,
    /// A pc inside the rescued loop (first fission loop, for
    /// distribution) in the *post*-transform function.
    pub post_anchor: u32,
    /// The transform and its parameters.
    pub transform: Transform,
}

/// One successfully rescued loop.
#[derive(Debug, Clone)]
pub struct RescuedLoop {
    /// Containing function.
    pub func: FuncId,
    /// Its name, for reports.
    pub func_name: String,
    /// Header-block pc of the loop in the *original* (pre-rescue)
    /// program, for correlating with candidate extraction on it.
    pub orig_header_pc: u32,
    /// Which recurrence or traffic the transform removed.
    pub removed: String,
    /// The checked legality proof.
    pub proof: LegalityProof,
}

/// A loop where a transform matched but legality failed, with the
/// dependence that blocked it when one is known.
#[derive(Debug, Clone)]
pub struct RescueRejection {
    /// Containing function.
    pub func: FuncId,
    /// Its name, for reports.
    pub func_name: String,
    /// Header-block pc in the original program.
    pub orig_header_pc: u32,
    /// Which transform was attempted.
    pub transform: &'static str,
    /// Why it was rejected.
    pub reason: String,
    /// The violating dependence, when the rejection is dependence-shaped.
    pub witness: Option<DepWitness>,
}

/// The result of rescuing a whole program.
#[derive(Debug, Clone)]
pub struct RescueOutcome {
    /// The (possibly) transformed program.
    pub program: Program,
    /// Applied, verifier-accepted transforms in application order.
    pub rescued: Vec<RescuedLoop>,
    /// Rejections from the final fixpoint round plus any
    /// verifier-rejected variants.
    pub rejected: Vec<RescueRejection>,
}

impl RescueOutcome {
    /// True when at least one transform was applied.
    pub fn changed(&self) -> bool {
        !self.rescued.is_empty()
    }
}

// ---------------------------------------------------------------------
// forward stack provenance (matcher side; the verifier has its own
// abstract-value walker in `verify`)
// ---------------------------------------------------------------------

/// Per-instruction operand producers within one basic block, from a
/// forward stack simulation. Stack slots live at block entry are
/// `None` (unknown producer).
struct Provenance {
    ops: HashMap<u32, Vec<Option<u32>>>,
}

fn block_provenance(program: &Program, f: &Function, range: std::ops::Range<u32>) -> Provenance {
    let mut stack: Vec<Option<u32>> = Vec::new();
    let mut ops = HashMap::new();
    for idx in range {
        let instr = &f.code[idx as usize];
        let Ok((pops, pushes)) = stack_effect(program, instr) else {
            stack.clear();
            continue;
        };
        let mut popped: Vec<Option<u32>> = Vec::with_capacity(pops as usize);
        for _ in 0..pops {
            popped.push(stack.pop().flatten());
        }
        popped.reverse(); // bottom-most operand first
        ops.insert(idx, popped);
        for _ in 0..pushes {
            stack.push(Some(idx));
        }
    }
    Provenance { ops }
}

impl Provenance {
    /// Producer of operand `k` (0 = bottom-most) of instruction `idx`.
    fn operand(&self, idx: u32, k: usize) -> Option<u32> {
        self.ops.get(&idx).and_then(|v| v.get(k).copied().flatten())
    }

    /// True when `target`'s value transitively feeds instruction `idx`.
    fn feeds(&self, idx: u32, target: u32) -> bool {
        if idx == target {
            return true;
        }
        self.ops
            .get(&idx)
            .into_iter()
            .flatten()
            .flatten()
            .any(|&p| self.feeds(p, target))
    }
}

/// The instructions forming a single-operator chain
/// `target ⊕ e₁ ⊕ e₂ …` rooted at `idx`: every node is `op` with
/// exactly one operand (transitively) containing `target`, recursing on
/// that operand. Returns `None` when the expression mixes operators or
/// uses the target more than once.
fn chain_nodes(
    f: &Function,
    prov: &Provenance,
    idx: u32,
    op: &Instr,
    target: u32,
) -> Option<BTreeSet<u32>> {
    if idx == target {
        return Some(BTreeSet::from([target]));
    }
    if f.code[idx as usize] != *op {
        return None;
    }
    let a = prov.operand(idx, 0)?;
    let b = prov.operand(idx, 1)?;
    let on = match (prov.feeds(a, target), prov.feeds(b, target)) {
        (true, false) => a,
        (false, true) => b,
        _ => return None,
    };
    let mut nodes = chain_nodes(f, prov, on, op, target)?;
    nodes.insert(idx);
    Some(nodes)
}

// ---------------------------------------------------------------------
// per-loop matcher context
// ---------------------------------------------------------------------

struct LoopCtx<'a> {
    program: &'a Program,
    func: FuncId,
    f: &'a Function,
    cfg: &'a Cfg,
    dom: Dominators,
    lp: &'a NaturalLoop,
    view: FnView<'a>,
    sites: Vec<AccessSite>,
    inductors: Vec<(Local, i64)>,
    load_effects: &'a [[bool; 3]],
}

impl LoopCtx<'_> {
    fn site_at(&self, pc: u32) -> Option<&AccessSite> {
        self.sites.iter().find(|s| s.instr == pc)
    }

    /// True when the channel's cell kind is `Int` (so wrapping integer
    /// reassociation is exact). For fields, every allocation site the
    /// base may point to must agree.
    fn channel_kind_is_int(&self, ch: &Channel) -> bool {
        match *ch {
            Channel::Static(g) => self.program.globals.get(g.0 as usize) == Some(&ElemKind::Int),
            Channel::Field { base, field } => {
                let (sites, unknown) = self.view.local_sites(base);
                if unknown || sites.is_empty() {
                    return false;
                }
                sites
                    .iter()
                    .all(|&s| match self.view.program().sites().get(s).kind {
                        SiteKind::Object(c) => {
                            self.program
                                .classes
                                .get(c.0 as usize)
                                .and_then(|cd| cd.fields.get(field as usize))
                                == Some(&ElemKind::Int)
                        }
                        SiteKind::Array(_) => false,
                    })
            }
        }
    }

    /// A call inside the loop whose callee may (transitively) *read*
    /// the channel's memory category. Callees that may store are
    /// already access sites; readers are invisible to the site list
    /// but would observe privatized intermediate state.
    fn reading_call_witness(&self, ch: &Channel, store_at: u32) -> Option<DepWitness> {
        let cat = ch.category();
        for &b in &self.lp.blocks {
            let block = &self.cfg.blocks[b.0 as usize];
            for idx in block.start..block.end {
                if let Instr::Call(callee) = self.f.code[idx as usize] {
                    let fi = callee.0 as usize;
                    let reads = self.load_effects.get(fi).is_some_and(|e| e[cat]);
                    if reads {
                        return Some(DepWitness {
                            src: idx,
                            dst: store_at,
                            kind: BlockKind::OpaqueCall { callee },
                        });
                    }
                }
            }
        }
        None
    }

    /// True when `base` provably holds a non-null reference at loop
    /// entry: it is not a parameter, every store to it in the function
    /// stores a freshly allocated object or array, and at least one
    /// such store dominates the loop header. Needed because entry/exit
    /// payloads dereference `base` even on zero-trip executions, which
    /// the original program would not.
    fn base_provably_nonnull(&self, base: Local) -> bool {
        if base.0 < self.f.n_params {
            return false;
        }
        let mut any_dominating = false;
        for (bi, block) in self.cfg.blocks.iter().enumerate() {
            let prov = block_provenance(self.program, self.f, block.start..block.end);
            for idx in block.start..block.end {
                match self.f.code[idx as usize] {
                    Instr::IInc(l, _) if l == base => return false,
                    Instr::Store(l) if l == base => {
                        let Some(p) = prov.operand(idx, 0) else {
                            return false;
                        };
                        if !matches!(
                            self.f.code[p as usize],
                            Instr::NewObject(_) | Instr::NewArray(_)
                        ) {
                            return false;
                        }
                        if self.dom.dominates(BlockId(bi as u32), self.lp.header)
                            && !self.lp.blocks.contains(&BlockId(bi as u32))
                        {
                            any_dominating = true;
                        }
                    }
                    _ => {}
                }
            }
        }
        any_dominating
    }
}

enum TryResult {
    /// The transform does not fit this loop at all; no diagnostic.
    NotApplicable,
    /// The transform matched but a legality condition failed.
    Rejected {
        transform: &'static str,
        reason: String,
        witness: Option<DepWitness>,
    },
    /// The transform applies; the rewritten function and claim.
    Transformed {
        function: Function,
        origin: Vec<Option<u32>>,
        transform: Transform,
        removed: String,
    },
}

fn rejected(transform: &'static str, reason: String, witness: Option<DepWitness>) -> TryResult {
    TryResult::Rejected {
        transform,
        reason,
        witness,
    }
}

fn dep_witness(d: &GuaranteedDep) -> DepWitness {
    let kind = match &d.kind {
        DepKind::Static(g) => BlockKind::SameStatic(*g),
        DepKind::Field { field, .. } => BlockKind::MayAliasField { field: *field },
        DepKind::Array { .. } => BlockKind::MayAliasArray,
    };
    DepWitness {
        src: d.load_at,
        dst: d.store_at,
        kind,
    }
}

// ---------------------------------------------------------------------
// transform 1: reduction recognition
// ---------------------------------------------------------------------

fn try_reduction(ctx: &LoopCtx<'_>, dep: &GuaranteedDep) -> TryResult {
    const T: &str = "reduction";
    let channel = match &dep.kind {
        DepKind::Static(g) => Channel::Static(*g),
        DepKind::Field { base, field } => Channel::Field {
            base: *base,
            field: *field,
        },
        DepKind::Array { .. } => return TryResult::NotApplicable,
    };
    let witness = Some(dep_witness(dep));

    if ctx.lp.entry_edges.is_empty() {
        return rejected(
            T,
            "the loop header is the function entry; no edge exists to seed the accumulator".into(),
            witness,
        );
    }
    if !ctx.channel_kind_is_int(&channel) {
        return rejected(
            T,
            format!(
                "{} is not provably an integer cell; reassociating float operations \
                 changes results",
                channel.describe()
            ),
            witness,
        );
    }
    let (Some(load_site), Some(store_site)) = (ctx.site_at(dep.load_at), ctx.site_at(dep.store_at))
    else {
        return TryResult::NotApplicable;
    };
    if load_site.block != store_site.block {
        return rejected(
            T,
            "the recurrence spans basic blocks; the update is not one straight-line \
             expression"
                .into(),
            witness,
        );
    }
    // channel exclusivity: no other site may touch the accumulator
    for s in &ctx.sites {
        if s.instr == dep.load_at || s.instr == dep.store_at {
            continue;
        }
        for t in [channel.load_template(), channel.store_template()] {
            if !strongly_disjoint(&s.access, &t, Some(&ctx.view)) {
                let w = overlap_kind(&s.access, &t, Some(&ctx.view)).map(|kind| DepWitness {
                    src: s.instr,
                    dst: dep.store_at,
                    kind,
                });
                return rejected(
                    T,
                    format!(
                        "pc {} may touch {} outside the recognized update",
                        s.instr,
                        channel.describe()
                    ),
                    w.or(witness),
                );
            }
        }
    }
    if let Some(w) = ctx.reading_call_witness(&channel, dep.store_at) {
        return rejected(
            T,
            "a call in the loop may read the accumulator's memory while partial sums \
             are private"
                .into(),
            Some(w),
        );
    }
    if let Channel::Field { base, .. } = channel {
        if !ctx.base_provably_nonnull(base) {
            return rejected(
                T,
                "cannot prove the object reference non-null at loop entry; the \
                 fold-back on a zero-trip path could fault"
                    .into(),
                witness,
            );
        }
    }

    // the stored value must be a single-operator associative chain over
    // exactly one use of the channel's loaded value
    let block = &ctx.cfg.blocks[store_site.block.0 as usize];
    let prov = block_provenance(ctx.program, ctx.f, block.start..block.end);
    let value_operand = match channel {
        Channel::Static(_) => 0,
        Channel::Field { .. } => 1,
    };
    let Some(p0) = prov.operand(dep.store_at, value_operand) else {
        return rejected(
            T,
            "the stored value's producer is not visible within the block".into(),
            witness,
        );
    };
    if p0 == dep.load_at {
        return rejected(
            T,
            "the update copies the accumulator to itself".into(),
            witness,
        );
    }
    let op = ctx.f.code[p0 as usize];
    let Some(identity) = reduction_identity(&op) else {
        return rejected(
            T,
            format!(
                "update operator {:?} is not an associative integer operator; \
                 reassociation would change the result",
                op
            ),
            witness,
        );
    };
    let Some(mut chain) = chain_nodes(ctx.f, &prov, p0, &op, dep.load_at) else {
        return rejected(
            T,
            "the accumulator flows through mixed operators; reassociation would \
             change the result"
                .into(),
            witness,
        );
    };
    chain.insert(dep.load_at);
    // no intermediate chain value may escape to a non-chain consumer
    for idx in block.start..block.end {
        if idx == dep.store_at || chain.contains(&idx) {
            continue;
        }
        if let Some(ops) = prov.ops.get(&idx) {
            if ops.iter().flatten().any(|p| chain.contains(p)) {
                return rejected(
                    T,
                    format!(
                        "pc {} consumes an intermediate value of the update chain",
                        idx
                    ),
                    witness,
                );
            }
        }
    }

    // build the delta rewrite: the iteration computes its contribution
    // against the identity, accumulates into a fresh local, and every
    // exit folds `channel = channel op acc`
    let acc = Local(ctx.f.n_locals);
    let (load_subst, store_subst, entry, exit) = match channel {
        Channel::Static(g) => (
            vec![Instr::IConst(identity)],
            vec![Instr::Load(acc), op, Instr::Store(acc)],
            vec![Instr::IConst(identity), Instr::Store(acc)],
            vec![
                Instr::GetStatic(g),
                Instr::Load(acc),
                op,
                Instr::PutStatic(g),
            ],
        ),
        Channel::Field { base, field } => (
            vec![Instr::Pop, Instr::IConst(identity)],
            vec![Instr::Load(acc), op, Instr::Store(acc), Instr::Pop],
            vec![Instr::IConst(identity), Instr::Store(acc)],
            vec![
                Instr::Load(base),
                Instr::Load(base),
                Instr::GetField(field),
                Instr::Load(acc),
                op,
                Instr::PutField(field),
            ],
        ),
    };
    let rw = LoopRewrite {
        entry_payload: entry,
        exit_payload: exit,
        subst: BTreeMap::from([(dep.load_at, load_subst), (dep.store_at, store_subst)]),
        extra_locals: 1,
    };
    match apply_loop_rewrite(ctx.func.0, ctx.f, ctx.cfg, ctx.lp, &rw) {
        Ok((function, origin)) => TryResult::Transformed {
            function,
            origin,
            transform: Transform::Reduction {
                channel,
                op,
                identity,
                acc,
                load_at: dep.load_at,
                store_at: dep.store_at,
            },
            removed: dep.reason(),
        },
        Err(e) => rejected(T, format!("rewrite failed: {}", e), witness),
    }
}

// ---------------------------------------------------------------------
// transform 2: scalar expansion / privatization
// ---------------------------------------------------------------------

fn try_privatization(ctx: &LoopCtx<'_>) -> TryResult {
    let mut channels: Vec<Channel> = Vec::new();
    for s in &ctx.sites {
        let ch = match &s.access {
            Access::StaticStore(g) => Channel::Static(*g),
            Access::FieldStore {
                base: Sym::Invariant(b),
                field,
            } => Channel::Field {
                base: *b,
                field: *field,
            },
            _ => continue,
        };
        if !channels.contains(&ch) {
            channels.push(ch);
        }
    }
    let mut first_rejection: Option<TryResult> = None;
    for ch in channels {
        match try_privatize_channel(ctx, &ch) {
            TryResult::NotApplicable => {}
            r @ TryResult::Transformed { .. } => return r,
            r @ TryResult::Rejected { .. } => {
                first_rejection.get_or_insert(r);
            }
        }
    }
    first_rejection.unwrap_or(TryResult::NotApplicable)
}

fn try_privatize_channel(ctx: &LoopCtx<'_>, ch: &Channel) -> TryResult {
    const T: &str = "privatization";
    let (loads, stores): (Vec<&AccessSite>, Vec<&AccessSite>) = ctx
        .sites
        .iter()
        .filter(|s| ch.matches(&s.access))
        .partition(|s| s.access.is_load());
    if stores.is_empty() {
        return TryResult::NotApplicable;
    }
    // profitability: replacing a single store with entry-load +
    // exit-store adds memory traffic instead of removing it
    if loads.len() + stores.len() < 2 {
        return TryResult::NotApplicable;
    }
    if ctx.lp.entry_edges.is_empty() {
        return TryResult::NotApplicable;
    }
    let chan_witness = |src: u32| {
        Some(DepWitness {
            src,
            dst: stores[0].instr,
            kind: ch.block_kind(),
        })
    };
    // exclusivity: every other site must be provably off-channel
    for s in &ctx.sites {
        if ch.matches(&s.access) {
            continue;
        }
        for t in [ch.load_template(), ch.store_template()] {
            if !strongly_disjoint(&s.access, &t, Some(&ctx.view)) {
                let w = overlap_kind(&s.access, &t, Some(&ctx.view)).map(|kind| DepWitness {
                    src: s.instr,
                    dst: stores[0].instr,
                    kind,
                });
                return rejected(
                    T,
                    format!("pc {} may alias {}", s.instr, ch.describe()),
                    w.or_else(|| chan_witness(s.instr)),
                );
            }
        }
    }
    if let Some(w) = ctx.reading_call_witness(ch, stores[0].instr) {
        return rejected(
            T,
            "a call in the loop may read the cell while it is privatized".into(),
            Some(w),
        );
    }
    // written-before-read: every load must be preceded (same-block
    // order or strict dominance) by a channel store, so no value flows
    // into an iteration through the cell
    for l in &loads {
        if !stores.iter().any(|s| load_precedes_store(&ctx.dom, s, l)) {
            return rejected(
                T,
                format!(
                    "pc {} may read {} before the iteration writes it; the value \
                     flows across iterations and cannot be privatized",
                    l.instr,
                    ch.describe()
                ),
                chan_witness(l.instr),
            );
        }
    }
    if let Channel::Field { base, .. } = ch {
        if !ctx.base_provably_nonnull(*base) {
            return rejected(
                T,
                "cannot prove the object reference non-null at loop entry; the \
                 write-back on a zero-trip path could fault"
                    .into(),
                chan_witness(stores[0].instr),
            );
        }
    }

    let tmp = Local(ctx.f.n_locals);
    let mut subst: BTreeMap<u32, Vec<Instr>> = BTreeMap::new();
    for l in &loads {
        subst.insert(
            l.instr,
            match ch {
                Channel::Static(_) => vec![Instr::Load(tmp)],
                Channel::Field { .. } => vec![Instr::Pop, Instr::Load(tmp)],
            },
        );
    }
    for s in &stores {
        subst.insert(
            s.instr,
            match ch {
                Channel::Static(_) => vec![Instr::Store(tmp)],
                Channel::Field { .. } => vec![Instr::Store(tmp), Instr::Pop],
            },
        );
    }
    let (entry, exit) = match *ch {
        Channel::Static(g) => (
            vec![Instr::GetStatic(g), Instr::Store(tmp)],
            vec![Instr::Load(tmp), Instr::PutStatic(g)],
        ),
        Channel::Field { base, field } => (
            vec![Instr::Load(base), Instr::GetField(field), Instr::Store(tmp)],
            vec![Instr::Load(base), Instr::Load(tmp), Instr::PutField(field)],
        ),
    };
    let rw = LoopRewrite {
        entry_payload: entry,
        exit_payload: exit,
        subst,
        extra_locals: 1,
    };
    match apply_loop_rewrite(ctx.func.0, ctx.f, ctx.cfg, ctx.lp, &rw) {
        Ok((function, origin)) => TryResult::Transformed {
            function,
            origin,
            transform: Transform::Privatization {
                channel: *ch,
                tmp,
                loads: loads.iter().map(|s| s.instr).collect(),
                stores: stores.iter().map(|s| s.instr).collect(),
            },
            removed: format!(
                "iteration-local scratch traffic through {} ({} accesses per iteration \
                 replaced by one entry load and one exit store)",
                ch.describe(),
                loads.len() + stores.len()
            ),
        },
        Err(e) => rejected(T, format!("rewrite failed: {}", e), None),
    }
}

// ---------------------------------------------------------------------
// transform 3: loop distribution
// ---------------------------------------------------------------------

/// Statement boundaries of a straight-line range: maximal sub-ranges
/// with net stack depth zero at each boundary. `None` when the stack
/// model fails or depth does not return to zero.
fn split_statements(
    program: &Program,
    f: &Function,
    range: std::ops::Range<u32>,
) -> Option<Vec<(u32, u32)>> {
    let mut stmts = Vec::new();
    let mut depth: i64 = 0;
    let mut start = range.start;
    for idx in range.clone() {
        let (pops, pushes) = stack_effect(program, &f.code[idx as usize]).ok()?;
        depth -= pops as i64;
        if depth < 0 {
            return None;
        }
        depth += pushes as i64;
        if depth == 0 {
            stmts.push((start, idx + 1));
            start = idx + 1;
        }
    }
    (depth == 0 && start == range.end).then_some(stmts)
}

#[derive(Clone, Copy, PartialEq)]
enum EdgeDir {
    AtoB,
    BtoA,
    Both,
}

/// Dependence direction between two accesses of statements A and B
/// (A textually first). `None` = provably independent.
fn dep_direction(
    sa: &AccessSite,
    sb: &AccessSite,
    ivar: Local,
    step: i64,
    view: &FnView<'_>,
) -> Option<EdgeDir> {
    if !sa.access.is_store() && !sb.access.is_store() {
        return None;
    }
    if strongly_disjoint(&sa.access, &sb.access, Some(view)) {
        return None;
    }
    // affine same-base array pairs have a computable direction
    if let (
        Access::ArrayLoad {
            base: Sym::Invariant(ba),
            index:
                Sym::Affine {
                    ind: ia,
                    scale: ca,
                    offset: oa,
                },
        }
        | Access::ArrayStore {
            base: Sym::Invariant(ba),
            index:
                Sym::Affine {
                    ind: ia,
                    scale: ca,
                    offset: oa,
                },
        },
        Access::ArrayLoad {
            base: Sym::Invariant(bb),
            index:
                Sym::Affine {
                    ind: ib,
                    scale: cb,
                    offset: ob,
                },
        }
        | Access::ArrayStore {
            base: Sym::Invariant(bb),
            index:
                Sym::Affine {
                    ind: ib,
                    scale: cb,
                    offset: ob,
                },
        },
    ) = (&sa.access, &sb.access)
    {
        if ba == bb && *ia == ivar && *ib == ivar && ca == cb {
            let per = ca.checked_mul(step).unwrap_or(0);
            if per == 0 {
                return Some(EdgeDir::Both);
            }
            let delta = ob.wrapping_sub(*oa);
            if delta % per != 0 {
                return None; // addresses never coincide
            }
            let k = delta / per;
            // instances collide at iterations n_a = n_b + k
            return Some(if k > 0 { EdgeDir::BtoA } else { EdgeDir::AtoB });
        }
    }
    Some(EdgeDir::Both)
}

fn try_distribution(ctx: &LoopCtx<'_>, deps: &[GuaranteedDep]) -> TryResult {
    const T: &str = "distribution";
    let lp = ctx.lp;
    if lp.blocks.len() != 2 || lp.latches.len() != 1 || lp.entry_edges.is_empty() {
        return TryResult::NotApplicable;
    }
    let header = lp.header;
    let body = lp.latches[0];
    if body == header || lp.exit_edges.len() != 1 || lp.exit_edges[0].0 != header {
        return TryResult::NotApplicable;
    }
    let hb = &ctx.cfg.blocks[header.0 as usize];
    let bb = &ctx.cfg.blocks[body.0 as usize];
    if ctx.cfg.blocks[body.0 as usize].preds != vec![header] {
        return TryResult::NotApplicable;
    }
    // guard shape: [Load i, <const or invariant bound>, IfICmp(_, exit)]
    if hb.end - hb.start != 3 {
        return TryResult::NotApplicable;
    }
    let Instr::Load(ivar) = ctx.f.code[hb.start as usize] else {
        return TryResult::NotApplicable;
    };
    let invariant = invariant_locals(ctx.f, ctx.cfg, lp);
    match ctx.f.code[(hb.start + 1) as usize] {
        Instr::IConst(_) => {}
        Instr::Load(b) if b != ivar && invariant.get(b.0 as usize).copied().unwrap_or(false) => {}
        _ => return TryResult::NotApplicable,
    }
    let Instr::IfICmp(_, t) = ctx.f.code[(hb.end - 1) as usize] else {
        return TryResult::NotApplicable;
    };
    // taken edge must leave the loop; fallthrough must be the body
    let exit_ok = ctx
        .cfg
        .block_of(t)
        .is_some_and(|tb| !lp.blocks.contains(&tb));
    let ft_ok = ctx.cfg.block_of(hb.end) == Some(body);
    if !exit_ok || !ft_ok {
        return TryResult::NotApplicable;
    }
    let Some(&(_, step)) = ctx.inductors.iter().find(|&&(l, _)| l == ivar) else {
        return TryResult::NotApplicable;
    };
    if step == 0 {
        return TryResult::NotApplicable;
    }
    // body shape: [stmts..., IInc(i, step), Goto(header)]
    if bb.end - bb.start < 3 {
        return TryResult::NotApplicable;
    }
    let Instr::IInc(v, c) = ctx.f.code[(bb.end - 2) as usize] else {
        return TryResult::NotApplicable;
    };
    if v != ivar || c as i64 != step {
        return TryResult::NotApplicable;
    }
    let Instr::Goto(back) = ctx.f.code[(bb.end - 1) as usize] else {
        return TryResult::NotApplicable;
    };
    if ctx.cfg.block_of(back) != Some(header) {
        return TryResult::NotApplicable;
    }
    let stmt_range = bb.start..bb.end - 2;
    for idx in stmt_range.clone() {
        match ctx.f.code[idx as usize] {
            // no other definition of the inductor
            Instr::Store(l) | Instr::IInc(l, _) if l == ivar => return TryResult::NotApplicable,
            // faults and allocations must keep their program order:
            // division can trap, allocation order decides heap addresses
            Instr::IDiv | Instr::IRem | Instr::NewObject(_) | Instr::NewArray(_) => {
                return rejected(
                    T,
                    format!(
                        "pc {} can fault or allocate; reordering it across fission \
                         loops changes observable behavior",
                        idx
                    ),
                    deps.first().map(dep_witness),
                )
            }
            Instr::Call(callee) => {
                return rejected(
                    T,
                    format!(
                        "the call at pc {} pins statement order; its side effects \
                         cannot be reordered across fission loops",
                        idx
                    ),
                    Some(DepWitness {
                        src: idx,
                        dst: idx,
                        kind: BlockKind::OpaqueCall { callee },
                    }),
                )
            }
            _ => {}
        }
    }
    let Some(stmts) = split_statements(ctx.program, ctx.f, stmt_range) else {
        return TryResult::NotApplicable;
    };
    if stmts.len() < 2 {
        return TryResult::NotApplicable;
    }

    // statement-level dependence graph
    let n = stmts.len();
    let reads_writes: Vec<(BTreeSet<Local>, BTreeSet<Local>)> = stmts
        .iter()
        .map(|&(s, e)| {
            let mut r = BTreeSet::new();
            let mut w = BTreeSet::new();
            for idx in s..e {
                match ctx.f.code[idx as usize] {
                    Instr::Load(l) if l != ivar => {
                        r.insert(l);
                    }
                    Instr::Store(l) => {
                        w.insert(l);
                    }
                    Instr::IInc(l, _) => {
                        r.insert(l);
                        w.insert(l);
                    }
                    _ => {}
                }
            }
            (r, w)
        })
        .collect();
    let stmt_of = |pc: u32| stmts.iter().position(|&(s, e)| pc >= s && pc < e);
    let mut edges = vec![[false; 2]; n * n]; // [a*n+b][0]=a→b, [1]=b→a ... flattened
    let mut edge = |a: usize, b: usize, dir: EdgeDir| {
        let (lo, hi, flip) = if a <= b { (a, b, false) } else { (b, a, true) };
        let cell = &mut edges[lo * n + hi];
        match (dir, flip) {
            (EdgeDir::Both, _) => {
                cell[0] = true;
                cell[1] = true;
            }
            (EdgeDir::AtoB, false) | (EdgeDir::BtoA, true) => cell[0] = true,
            (EdgeDir::AtoB, true) | (EdgeDir::BtoA, false) => cell[1] = true,
        }
    };
    let mut cycle_witness: Option<DepWitness> = None;
    for a in 0..n {
        for b in a + 1..n {
            let (ra, wa) = &reads_writes[a];
            let (rb, wb) = &reads_writes[b];
            let scalar_conflict = wa.intersection(rb).next().is_some()
                || wa.intersection(wb).next().is_some()
                || ra.intersection(wb).next().is_some();
            if scalar_conflict {
                edge(a, b, EdgeDir::Both);
            }
            for sa in ctx.sites.iter().filter(|s| stmt_of(s.instr) == Some(a)) {
                for sb in ctx.sites.iter().filter(|s| stmt_of(s.instr) == Some(b)) {
                    if let Some(dir) = dep_direction(sa, sb, ivar, step, &ctx.view) {
                        edge(a, b, dir);
                        if dir == EdgeDir::Both && cycle_witness.is_none() {
                            cycle_witness = overlap_kind(&sa.access, &sb.access, Some(&ctx.view))
                                .map(|kind| DepWitness {
                                    src: sa.instr,
                                    dst: sb.instr,
                                    kind,
                                });
                        }
                    }
                }
            }
        }
    }
    let has_edge = |a: usize, b: usize| -> bool {
        if a <= b {
            edges[a * n + b][0]
        } else {
            edges[b * n + a][1]
        }
    };
    // condensation into SCCs via pairwise reachability (n is tiny)
    let mut reach = vec![false; n * n];
    for a in 0..n {
        for b in 0..n {
            reach[a * n + b] = a != b && has_edge(a, b);
        }
    }
    for k in 0..n {
        for a in 0..n {
            for b in 0..n {
                if reach[a * n + k] && reach[k * n + b] {
                    reach[a * n + b] = true;
                }
            }
        }
    }
    let mut scc_of = vec![usize::MAX; n];
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    for a in 0..n {
        if scc_of[a] != usize::MAX {
            continue;
        }
        let id = sccs.len();
        let mut members = vec![a];
        scc_of[a] = id;
        for b in a + 1..n {
            if scc_of[b] == usize::MAX && reach[a * n + b] && reach[b * n + a] {
                scc_of[b] = id;
                members.push(b);
            }
        }
        sccs.push(members);
    }
    if sccs.len() < 2 {
        return rejected(
            T,
            "every statement sits in one dependence cycle; no split is possible".into(),
            cycle_witness.or_else(|| deps.first().map(dep_witness)),
        );
    }
    // topological order of the condensation, ties by first statement
    let mut order: Vec<usize> = Vec::new();
    let mut placed = vec![false; sccs.len()];
    while order.len() < sccs.len() {
        let mut next: Option<usize> = None;
        for (gi, members) in sccs.iter().enumerate() {
            if placed[gi] {
                continue;
            }
            let blocked = (0..sccs.len()).any(|gj| {
                gj != gi
                    && !placed[gj]
                    && sccs[gj]
                        .iter()
                        .any(|&b| members.iter().any(|&a| has_edge(b, a)))
            });
            if blocked {
                continue;
            }
            let key = members.iter().copied().min().unwrap_or(usize::MAX);
            if next.is_none_or(|prev| key < sccs[prev].iter().copied().min().unwrap_or(usize::MAX))
            {
                next = Some(gi);
            }
        }
        let Some(gi) = next else {
            // cyclic condensation cannot happen, but never loop forever
            return TryResult::NotApplicable;
        };
        placed[gi] = true;
        order.push(gi);
    }
    // usefulness: at least one group must be free of every proven
    // recurrence, otherwise the split rescues nothing
    let dep_stmts: BTreeSet<usize> = deps
        .iter()
        .flat_map(|d| [stmt_of(d.load_at), stmt_of(d.store_at)])
        .flatten()
        .collect();
    let clean_group_exists = order
        .iter()
        .any(|&gi| sccs[gi].iter().all(|s| !dep_stmts.contains(s)));
    if !deps.is_empty() && !clean_group_exists {
        return rejected(
            T,
            "the recurrence's statements reach every group; distribution cannot \
             isolate it"
                .into(),
            deps.first().map(dep_witness),
        );
    }

    let groups: Vec<Vec<(u32, u32)>> = order
        .iter()
        .map(|&gi| {
            let mut members = sccs[gi].clone();
            members.sort_unstable();
            members.iter().map(|&s| stmts[s]).collect()
        })
        .collect();
    let g_count = groups.len();
    let inductors: Vec<Local> = (0..g_count)
        .map(|g| {
            if g + 1 == g_count {
                ivar
            } else {
                Local(ctx.f.n_locals + g as u16)
            }
        })
        .collect();
    let plan = DistributionPlan {
        header,
        body,
        groups: groups.clone(),
        inductors: inductors.clone(),
        orig_inductor: ivar,
        extra_locals: (g_count - 1) as u16,
    };
    match apply_distribution(ctx.func.0, ctx.f, ctx.cfg, &plan) {
        Ok((function, origin)) => {
            let anchor_of = |pc: u32| origin.iter().position(|&o| o == Some(pc)).map(|i| i as u32);
            let anchors: Vec<u32> = groups
                .iter()
                .filter_map(|g| g.first().and_then(|&(s, _)| anchor_of(s)))
                .collect();
            if anchors.len() != g_count {
                return TryResult::NotApplicable;
            }
            TryResult::Transformed {
                function,
                origin,
                transform: Transform::Distribution {
                    groups,
                    inductors,
                    orig_inductor: ivar,
                    anchors,
                },
                removed: match deps.first() {
                    Some(d) => format!(
                        "split into {} loops; {} is confined to one of them",
                        g_count,
                        d.reason()
                    ),
                    None => format!("split into {} independent loops", g_count),
                },
            }
        }
        Err(e) => rejected(T, format!("rewrite failed: {}", e), None),
    }
}

// ---------------------------------------------------------------------
// driver
// ---------------------------------------------------------------------

fn compose(old: &[Option<u32>], new: &[Option<u32>]) -> Vec<Option<u32>> {
    new.iter()
        .map(|&o| o.and_then(|p| old.get(p as usize).copied().flatten()))
        .collect()
}

/// Maps the current header block of `lp` back to a pc in the original
/// program through the cumulative origin map.
fn original_header_pc(cum: &[Option<u32>], cfg: &Cfg, lp: &NaturalLoop) -> u32 {
    let hb = &cfg.blocks[lp.header.0 as usize];
    (hb.start..hb.end)
        .find_map(|pc| cum.get(pc as usize).copied().flatten())
        .unwrap_or(hb.start)
}

/// Rescues every loop of `program` that a legal transform can fix,
/// re-extracting candidates after each application until a fixpoint
/// (or [`MAX_ROUNDS`]). Every applied transform was accepted by the
/// independent legality checker ([`verify::check`]); variants the
/// checker rejected are blocklisted and reported in
/// [`RescueOutcome::rejected`].
pub fn rescue_program(program: &Program) -> RescueOutcome {
    rescue_with(program, None)
}

/// Rescues a single loop, identified by its containing function and
/// the pc of its header block *in the original program*.
///
/// This is the tier controller's scoped entry point: when one hot loop
/// needs rescuing there is no reason to run the whole-program fixpoint.
/// Loops other than the target are left untouched (their code is
/// byte-identical to the input), so a caller holding per-loop state
/// keyed by original header pcs stays consistent.
pub fn rescue_loop(program: &Program, func: FuncId, orig_header_pc: u32) -> RescueOutcome {
    rescue_with(program, Some((func, orig_header_pc)))
}

fn rescue_with(program: &Program, target: Option<(FuncId, u32)>) -> RescueOutcome {
    let mut cur = program.clone();
    let mut cum: Vec<Vec<Option<u32>>> = program
        .functions
        .iter()
        .map(|f| (0..f.code.len() as u32).map(Some).collect())
        .collect();
    let mut rescued: Vec<RescuedLoop> = Vec::new();
    let mut blocked: BTreeSet<String> = BTreeSet::new();
    let mut blocked_rejections: Vec<RescueRejection> = Vec::new();
    let mut last_rejections: Vec<RescueRejection> = Vec::new();

    for _round in 0..MAX_ROUNDS {
        last_rejections.clear();
        let cands = extract_candidates(&cur);
        let pt = PointsTo::analyze(&cur);
        let load_effects = transitive_load_effects(&cur);
        let store_effects = transitive_store_effects(&cur);
        let mut applied: Option<(usize, Function, Vec<Option<u32>>, RescuedLoop)> = None;

        'cands: for c in &cands.candidates {
            let fi = c.func.0 as usize;
            let fa = &cands.functions[fi];
            let f = &cur.functions[fi];
            let lp = &fa.forest.loops[c.loop_idx];
            let dom = Dominators::compute(&fa.cfg);
            let view = pt.view(c.func);
            let inductors = inductor_steps(f, &fa.cfg, &dom, lp);
            let invariant = invariant_locals(f, &fa.cfg, lp);
            let sites =
                collect_accesses(&cur, f, &fa.cfg, lp, &inductors, &invariant, &store_effects);
            let deps = analyze_loop(&cur, f, &fa.cfg, &dom, lp, Some(&view));
            let orig_header_pc = original_header_pc(&cum[fi], &fa.cfg, lp);
            if let Some((tf, tpc)) = target {
                if c.func != tf || orig_header_pc != tpc {
                    continue;
                }
            }
            let header_block = fa.cfg.blocks[lp.header.0 as usize].clone();
            let ctx = LoopCtx {
                program: &cur,
                func: c.func,
                f,
                cfg: &fa.cfg,
                dom,
                lp,
                view,
                sites,
                inductors,
                load_effects: &load_effects,
            };

            let mut attempts: Vec<TryResult> = Vec::new();
            if c.is_demoted() {
                for dep in &deps {
                    attempts.push(try_reduction(&ctx, dep));
                }
                attempts.push(try_distribution(&ctx, &deps));
            }
            attempts.push(try_privatization(&ctx));

            let mut any_diag = false;
            for att in attempts {
                match att {
                    TryResult::NotApplicable => {}
                    TryResult::Rejected {
                        transform,
                        reason,
                        witness,
                    } => {
                        any_diag = true;
                        last_rejections.push(RescueRejection {
                            func: c.func,
                            func_name: f.name.clone(),
                            orig_header_pc,
                            transform,
                            reason,
                            witness,
                        });
                    }
                    TryResult::Transformed {
                        function,
                        origin,
                        transform,
                        removed,
                    } => {
                        any_diag = true;
                        let sig = format!("f{}@{}:{}", fi, orig_header_pc, transform.target());
                        if blocked.contains(&sig) {
                            continue;
                        }
                        let post_anchor = match &transform {
                            Transform::Distribution { anchors, .. } => anchors[0],
                            _ => {
                                let found = origin.iter().position(|&o| {
                                    o.is_some_and(|p| {
                                        p >= header_block.start && p < header_block.end
                                    })
                                });
                                match found {
                                    Some(i) => i as u32,
                                    None => continue,
                                }
                            }
                        };
                        let proof = LegalityProof {
                            func: c.func,
                            pre_anchor: header_block.start,
                            post_anchor,
                            transform,
                        };
                        let mut newp = cur.clone();
                        newp.functions[fi] = function.clone();
                        match verify::check(&cur, &newp, &proof) {
                            Ok(()) => {
                                applied = Some((
                                    fi,
                                    function,
                                    origin,
                                    RescuedLoop {
                                        func: c.func,
                                        func_name: f.name.clone(),
                                        orig_header_pc,
                                        removed,
                                        proof,
                                    },
                                ));
                                break 'cands;
                            }
                            Err(msg) => {
                                blocked.insert(sig);
                                blocked_rejections.push(RescueRejection {
                                    func: c.func,
                                    func_name: f.name.clone(),
                                    orig_header_pc,
                                    transform: proof.transform.name(),
                                    reason: format!(
                                        "legality checker rejected the transformed \
                                         loop: {}",
                                        msg
                                    ),
                                    witness: None,
                                });
                            }
                        }
                    }
                }
            }
            if c.is_demoted() && !any_diag {
                if let Some(d) = deps.first() {
                    last_rejections.push(RescueRejection {
                        func: c.func,
                        func_name: f.name.clone(),
                        orig_header_pc,
                        transform: "rescue",
                        reason: format!("no transform matches: {}", d.reason()),
                        witness: Some(dep_witness(d)),
                    });
                }
            }
        }

        match applied {
            Some((fi, function, origin, entry)) => {
                cur.functions[fi] = function;
                cum[fi] = compose(&cum[fi], &origin);
                rescued.push(entry);
            }
            None => break,
        }
    }

    last_rejections.extend(blocked_rejections);
    RescueOutcome {
        program: cur,
        rescued,
        rejected: last_rejections,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::interp::Interp;
    use tvm::trace::NullSink;
    use tvm::ElemKind;
    use tvm::ProgramBuilder;

    /// Runs both programs to completion and asserts bit-identical
    /// final state (return value and whole memory image).
    fn assert_same_state(a: &Program, b: &Program) {
        let sa = Interp::run_state(a, &mut NullSink).unwrap();
        let sb = Interp::run_state(b, &mut NullSink).unwrap();
        assert_eq!(sa.result.ret, sb.result.ret, "return values diverge");
        assert_eq!(
            sa.memory.words(),
            sb.memory.words(),
            "final memory images diverge"
        );
    }

    fn demoted_count(p: &Program) -> usize {
        extract_candidates(p)
            .candidates
            .iter()
            .filter(|c| c.is_demoted())
            .count()
    }

    /// `g += a[i]` — the classic sum reduction over a static. The seed
    /// loop is demoted for its static recurrence; rescue must lift it.
    fn sum_program() -> Program {
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, true, |f| {
            let (a, i) = (f.local(), f.local());
            f.ci(64).newarray(ElemKind::Int).st(a);
            f.for_in(i, 0.into(), 64.into(), |f| {
                f.arr_set(
                    a,
                    |f| {
                        f.ld(i);
                    },
                    |f| {
                        f.ld(i).ci(3).imul();
                    },
                );
            });
            f.for_in(i, 0.into(), 64.into(), |f| {
                f.getstatic(g).ld(a).ld(i).aload().iadd().putstatic(g);
            });
            f.getstatic(g).ret();
        });
        b.finish(main).unwrap()
    }

    #[test]
    fn sum_reduction_is_rescued() {
        let p = sum_program();
        assert_eq!(demoted_count(&p), 1, "the reduction loop starts demoted");
        let out = rescue_program(&p);
        assert_eq!(out.rescued.len(), 1, "rejections: {:?}", out.rejected);
        assert!(matches!(
            out.rescued[0].proof.transform,
            Transform::Reduction {
                op: Instr::IAdd,
                identity: 0,
                ..
            }
        ));
        assert_eq!(demoted_count(&out.program), 0, "the rescued loop is clean");
        assert_same_state(&p, &out.program);
    }

    #[test]
    fn max_reduction_is_rescued() {
        // g = max(g, a[i]) with g seeded negative so the identity
        // (i64::MIN) must not leak into the final value
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, true, |f| {
            let (a, i) = (f.local(), f.local());
            f.ci(-7).putstatic(g);
            f.ci(32).newarray(ElemKind::Int).st(a);
            f.for_in(i, 0.into(), 32.into(), |f| {
                f.arr_set(
                    a,
                    |f| {
                        f.ld(i);
                    },
                    |f| {
                        f.ld(i).ci(17).imul().ci(100).isub();
                    },
                );
            });
            f.for_in(i, 0.into(), 32.into(), |f| {
                f.getstatic(g).ld(a).ld(i).aload().imax().putstatic(g);
            });
            f.getstatic(g).ret();
        });
        let p = b.finish(main).unwrap();
        let out = rescue_program(&p);
        assert_eq!(out.rescued.len(), 1, "rejections: {:?}", out.rejected);
        assert!(matches!(
            out.rescued[0].proof.transform,
            Transform::Reduction {
                op: Instr::IMax,
                identity: i64::MIN,
                ..
            }
        ));
        assert_same_state(&p, &out.program);
    }

    #[test]
    fn product_reduction_is_rescued() {
        // g *= a[i], identity 1
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, true, |f| {
            let (a, i) = (f.local(), f.local());
            f.ci(1).putstatic(g);
            f.ci(8).newarray(ElemKind::Int).st(a);
            f.for_in(i, 0.into(), 8.into(), |f| {
                f.arr_set(
                    a,
                    |f| {
                        f.ld(i);
                    },
                    |f| {
                        f.ld(i).ci(2).iadd();
                    },
                );
            });
            f.for_in(i, 0.into(), 8.into(), |f| {
                f.getstatic(g).ld(a).ld(i).aload().imul().putstatic(g);
            });
            f.getstatic(g).ret();
        });
        let p = b.finish(main).unwrap();
        let out = rescue_program(&p);
        assert_eq!(out.rescued.len(), 1, "rejections: {:?}", out.rejected);
        assert!(matches!(
            out.rescued[0].proof.transform,
            Transform::Reduction {
                op: Instr::IMul,
                identity: 1,
                ..
            }
        ));
        assert_same_state(&p, &out.program);
    }

    #[test]
    fn field_reduction_is_rescued() {
        // o.f += a[i] where o is a fresh allocation dominating the loop
        let mut b = ProgramBuilder::new();
        let c = b.class(&[ElemKind::Int]);
        let main = b.function("main", 0, true, |f| {
            let (o, a, i) = (f.local(), f.local(), f.local());
            f.newobject(c).st(o);
            f.ci(16).newarray(ElemKind::Int).st(a);
            f.for_in(i, 0.into(), 16.into(), |f| {
                f.arr_set(
                    a,
                    |f| {
                        f.ld(i);
                    },
                    |f| {
                        f.ld(i).ci(5).imul();
                    },
                );
            });
            f.for_in(i, 0.into(), 16.into(), |f| {
                f.ld(o)
                    .ld(o)
                    .getfield(0)
                    .ld(a)
                    .ld(i)
                    .aload()
                    .iadd()
                    .putfield(0);
            });
            f.ld(o).getfield(0).ret();
        });
        let p = b.finish(main).unwrap();
        let out = rescue_program(&p);
        assert_eq!(out.rescued.len(), 1, "rejections: {:?}", out.rejected);
        assert!(matches!(
            out.rescued[0].proof.transform,
            Transform::Reduction {
                channel: Channel::Field { .. },
                op: Instr::IAdd,
                ..
            }
        ));
        assert_same_state(&p, &out.program);
    }

    #[test]
    fn float_reduction_is_rejected() {
        // g += a[i] over floats: reassociation is inexact, must stay
        // serial
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Float);
        let main = b.function("main", 0, false, |f| {
            let (a, i) = (f.local(), f.local());
            f.ci(8).newarray(ElemKind::Float).st(a);
            f.for_in(i, 0.into(), 8.into(), |f| {
                f.getstatic(g).ld(a).ld(i).aload().fadd().putstatic(g);
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let out = rescue_program(&p);
        assert!(out.rescued.is_empty(), "rescued: {:?}", out.rescued);
        assert!(
            out.rejected.iter().any(|r| r.transform == "reduction"),
            "expected a reduction rejection, got {:?}",
            out.rejected
        );
        assert_same_state(&p, &out.program);
    }

    #[test]
    fn subtraction_chain_is_not_a_reduction() {
        // g = g - a[i] is not associative; must be rejected
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, true, |f| {
            let (a, i) = (f.local(), f.local());
            f.ci(8).newarray(ElemKind::Int).st(a);
            f.for_in(i, 0.into(), 8.into(), |f| {
                f.getstatic(g).ld(a).ld(i).aload().isub().putstatic(g);
            });
            f.getstatic(g).ret();
        });
        let p = b.finish(main).unwrap();
        let out = rescue_program(&p);
        assert!(out.rescued.is_empty(), "rescued: {:?}", out.rescued);
        assert_same_state(&p, &out.program);
    }

    #[test]
    fn escaping_chain_value_is_not_a_reduction() {
        // tmp = g + a[i]; g = tmp; b[i] = tmp — after the delta
        // rewrite tmp would hold the delta, not the running sum, so
        // the matcher and verifier must both refuse
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, true, |f| {
            let (a, o, i, t) = (f.local(), f.local(), f.local(), f.local());
            f.ci(8).newarray(ElemKind::Int).st(a);
            f.ci(8).newarray(ElemKind::Int).st(o);
            f.for_in(i, 0.into(), 8.into(), |f| {
                f.getstatic(g).ld(a).ld(i).aload().iadd().st(t);
                f.ld(t).putstatic(g);
                f.arr_set(
                    o,
                    |f| {
                        f.ld(i);
                    },
                    |f| {
                        f.ld(t);
                    },
                );
            });
            f.getstatic(g).ret();
        });
        let p = b.finish(main).unwrap();
        let out = rescue_program(&p);
        assert!(
            !out.rescued
                .iter()
                .any(|r| matches!(r.proof.transform, Transform::Reduction { .. })),
            "a reduction with an escaping chain value was rescued: {:?}",
            out.rescued
        );
        assert_same_state(&p, &out.program);
    }

    #[test]
    fn privatizable_temporary_is_rescued() {
        // g is a scratch cell: written then read every iteration; the
        // store-load pair through memory serializes the loop until g
        // is privatized into a fresh local
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, true, |f| {
            let (a, o, i) = (f.local(), f.local(), f.local());
            f.ci(16).newarray(ElemKind::Int).st(a);
            f.ci(16).newarray(ElemKind::Int).st(o);
            f.for_in(i, 0.into(), 16.into(), |f| {
                f.arr_set(
                    a,
                    |f| {
                        f.ld(i);
                    },
                    |f| {
                        f.ld(i).ci(3).imul();
                    },
                );
            });
            f.for_in(i, 0.into(), 16.into(), |f| {
                f.ld(a).ld(i).aload().ci(1).iadd().putstatic(g);
                f.arr_set(
                    o,
                    |f| {
                        f.ld(i);
                    },
                    |f| {
                        f.getstatic(g).getstatic(g).imul();
                    },
                );
            });
            f.getstatic(g).ret();
        });
        let p = b.finish(main).unwrap();
        let out = rescue_program(&p);
        assert!(
            out.rescued
                .iter()
                .any(|r| matches!(r.proof.transform, Transform::Privatization { .. })),
            "no privatization applied; rejected: {:?}",
            out.rejected
        );
        assert_same_state(&p, &out.program);
    }

    #[test]
    fn read_before_write_scalar_is_not_privatized() {
        // o[i] = g; g = a[i] — the load sees the *previous* iteration's
        // store, so the value genuinely flows across iterations
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, true, |f| {
            let (a, o, i) = (f.local(), f.local(), f.local());
            f.ci(8).newarray(ElemKind::Int).st(a);
            f.ci(8).newarray(ElemKind::Int).st(o);
            f.for_in(i, 0.into(), 8.into(), |f| {
                f.arr_set(
                    a,
                    |f| {
                        f.ld(i);
                    },
                    |f| {
                        f.ld(i).ci(7).imul();
                    },
                );
            });
            f.for_in(i, 0.into(), 8.into(), |f| {
                f.arr_set(
                    o,
                    |f| {
                        f.ld(i);
                    },
                    |f| {
                        f.getstatic(g);
                    },
                );
                f.ld(a).ld(i).aload().putstatic(g);
            });
            f.getstatic(g).ret();
        });
        let p = b.finish(main).unwrap();
        let out = rescue_program(&p);
        assert!(
            !out.rescued
                .iter()
                .any(|r| matches!(r.proof.transform, Transform::Privatization { .. })),
            "a read-before-write cell was privatized: {:?}",
            out.rescued
        );
        assert_same_state(&p, &out.program);
    }

    #[test]
    fn distribution_splits_out_the_serial_scc() {
        // one parallel statement (a[i] *= 2) fused with one serial one
        // (r[i] = r[i-1] + 1): distribution must split them so the
        // parallel half becomes a clean loop
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, true, |f| {
            let (a, r, i) = (f.local(), f.local(), f.local());
            f.ci(32).newarray(ElemKind::Int).st(a);
            f.ci(32).newarray(ElemKind::Int).st(r);
            f.for_in(i, 0.into(), 32.into(), |f| {
                f.arr_set(
                    a,
                    |f| {
                        f.ld(i);
                    },
                    |f| {
                        f.ld(i).ci(11).imul();
                    },
                );
            });
            f.for_in(i, 1.into(), 32.into(), |f| {
                f.ld(a).ld(i); // a[i] = a[i] * 2
                f.ld(a).ld(i).aload().ci(2).imul();
                f.astore();
                f.ld(r).ld(i); // r[i] = r[i-1] + 1
                f.ld(r).ld(i).ci(1).isub().aload().ci(1).iadd();
                f.astore();
            });
            f.ld(a).ci(31).aload().ld(r).ci(31).aload().iadd().ret();
        });
        let p = b.finish(main).unwrap();
        assert_eq!(demoted_count(&p), 1);
        let out = rescue_program(&p);
        assert!(
            out.rescued
                .iter()
                .any(|r| matches!(r.proof.transform, Transform::Distribution { .. })),
            "no distribution applied; rejected: {:?}",
            out.rejected
        );
        // the fission produced one clean loop; the serial SCC stays
        // demoted and is reported as unrescuable
        let after = extract_candidates(&out.program);
        let loops_after: Vec<bool> = after.candidates.iter().map(|c| c.is_demoted()).collect();
        assert!(
            loops_after.iter().filter(|d| !**d).count() > 1,
            "expected a new clean loop, got {:?}",
            loops_after
        );
        assert_eq!(demoted_count(&out.program), 1, "the serial SCC remains");
        assert_same_state(&p, &out.program);
    }

    #[test]
    fn verifier_rejects_a_broken_transform() {
        // sabotage a valid rescue three different ways; the verifier
        // must catch each one on its own, without the matcher's help
        let p = sum_program();
        let out = rescue_program(&p);
        assert_eq!(out.rescued.len(), 1);
        let proof = &out.rescued[0].proof;
        let good = &out.program;
        assert!(verify::check(&p, good, proof).is_ok());

        // (1) wrong identity claimed in the proof
        let mut bad_proof = proof.clone();
        if let Transform::Reduction { identity, .. } = &mut bad_proof.transform {
            *identity = 1;
        }
        assert!(verify::check(&p, good, &bad_proof).is_err());

        // (2) wrong identity seeded in the emitted code: flip the
        // entry payload's IConst(0) (the one right before Store(acc))
        let acc = match proof.transform {
            Transform::Reduction { acc, .. } => acc,
            _ => unreachable!(),
        };
        let mut tampered = good.clone();
        let code = &mut tampered.functions[proof.func.0 as usize].code;
        let mut hit = false;
        for k in 0..code.len() - 1 {
            if code[k] == Instr::IConst(0) && code[k + 1] == Instr::Store(acc) {
                code[k] = Instr::IConst(1);
                hit = true;
            }
        }
        assert!(hit, "no entry payload found to tamper with");
        assert!(verify::check(&p, &tampered, proof).is_err());

        // (3) wrong operator substituted in the loop body: turn the
        // in-loop IAdd into IMul
        let (load_at, store_at) = match proof.transform {
            Transform::Reduction {
                load_at, store_at, ..
            } => (load_at, store_at),
            _ => unreachable!(),
        };
        let _ = (load_at, store_at);
        let mut tampered2 = good.clone();
        let code2 = &mut tampered2.functions[proof.func.0 as usize].code;
        let mut hit2 = false;
        for k in 0..code2.len() - 2 {
            if code2[k] == Instr::Load(acc) && code2[k + 1] == Instr::IAdd {
                code2[k + 1] = Instr::IMul;
                hit2 = true;
                break;
            }
        }
        assert!(hit2, "no reduction update found to tamper with");
        assert!(verify::check(&p, &tampered2, proof).is_err());
    }

    #[test]
    fn rejections_carry_dependence_witnesses() {
        // a genuinely serial loop (g = g*3+1, an affine recurrence,
        // not a reduction) must surface a rejection whose witness
        // names the blocking dependence
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, true, |f| {
            let i = f.local();
            f.for_in(i, 0.into(), 8.into(), |f| {
                f.getstatic(g).ci(3).imul().ci(1).iadd().putstatic(g);
            });
            f.getstatic(g).ret();
        });
        let p = b.finish(main).unwrap();
        let out = rescue_program(&p);
        assert!(out.rescued.is_empty());
        assert!(
            out.rejected.iter().any(|r| r.witness.is_some()),
            "no rejection carries a witness: {:?}",
            out.rejected
        );
    }
}
