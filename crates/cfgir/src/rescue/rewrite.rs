//! Bytecode rewriting machinery for the rescue transforms.
//!
//! Like the annotation compiler in `jrpm`, the transforms are
//! edge-precise: a reduction must initialize its private accumulator on
//! every edge *entering* the loop and fold it back into the memory
//! channel on every edge *leaving* it (including `return`/`halt` paths
//! out of the loop body). The only reliable way to place code on edges
//! of already-linearized bytecode is to relinearize the whole function
//! from its CFG: blocks are emitted in order with explicit terminators,
//! edges that carry payload detour through trampoline blocks, and
//! in-loop instructions can be substituted by replacement sequences
//! with identical net stack effect.

use crate::cfg::{BlockId, Cfg};
use crate::loops::NaturalLoop;
use std::collections::BTreeMap;
use tvm::isa::Instr;
use tvm::program::Function;

/// A label-patching emitter (the rescue analogue of
/// `tvm::build::FnBuilder`).
#[derive(Default)]
pub(crate) struct Emitter {
    code: Vec<Instr>,
    /// Original instruction index of each emitted instruction (`None`
    /// for payload and control-flow glue).
    origin: Vec<Option<u32>>,
    labels: Vec<Option<u32>>,
    fixups: Vec<u32>,
}

impl Emitter {
    pub(crate) fn new_label(&mut self) -> u32 {
        self.labels.push(None);
        self.labels.len() as u32 - 1
    }

    pub(crate) fn bind(&mut self, label: u32) {
        debug_assert!(self.labels[label as usize].is_none(), "label bound twice");
        self.labels[label as usize] = Some(self.code.len() as u32);
    }

    pub(crate) fn raw(&mut self, i: Instr) {
        self.code.push(i);
        self.origin.push(None);
    }

    /// Emits a relocated original instruction, remembering where it
    /// came from.
    pub(crate) fn raw_at(&mut self, i: Instr, orig: u32) {
        self.code.push(i);
        self.origin.push(Some(orig));
    }

    /// Emits a branch whose target operand is a label id, recorded for
    /// patching.
    pub(crate) fn branch(&mut self, i: Instr) {
        self.fixups.push(self.code.len() as u32);
        self.code.push(i);
        self.origin.push(None);
    }

    /// A [`Emitter::branch`] descending from an original terminator.
    pub(crate) fn branch_at(&mut self, i: Instr, orig: u32) {
        self.fixups.push(self.code.len() as u32);
        self.code.push(i);
        self.origin.push(Some(orig));
    }

    pub(crate) fn finish(
        mut self,
        func: u16,
    ) -> Result<(Vec<Instr>, Vec<Option<u32>>), tvm::VmError> {
        for &at in &self.fixups {
            let instr = self.code[at as usize];
            let lbl = instr.branch_target().ok_or_else(|| tvm::VmError::Verify {
                func,
                at,
                reason: "rescue fixup recorded on a non-branch instruction".into(),
            })?;
            let target = self
                .labels
                .get(lbl as usize)
                .copied()
                .flatten()
                .ok_or(tvm::VmError::UnboundLabel(lbl))?;
            self.code[at as usize] = instr.map_target(|_| target);
        }
        Ok((self.code, self.origin))
    }
}

/// An edge-precise rewrite of one loop: payload sequences for the
/// loop's entry and exit edges plus in-loop instruction substitutions.
/// Every substitution must preserve the net stack effect of the
/// instruction it replaces.
#[derive(Debug, Default, Clone)]
pub(crate) struct LoopRewrite {
    /// Prepended on every edge entering the loop header from outside.
    pub entry_payload: Vec<Instr>,
    /// Prepended on every edge leaving the loop, and before any
    /// `Return`/`Halt` inside a loop block.
    pub exit_payload: Vec<Instr>,
    /// Replacement sequence per original in-loop instruction index.
    /// Terminators cannot be substituted.
    pub subst: BTreeMap<u32, Vec<Instr>>,
    /// How many fresh locals the rewrite introduces.
    pub extra_locals: u16,
}

/// Applies `rw` to the loop `lp` of function `f`, producing the
/// rewritten function and an origin map (new index → original index).
///
/// # Errors
///
/// [`tvm::VmError`] if the function's branch structure is malformed
/// (which `Cfg::build` would already have rejected).
pub(crate) fn apply_loop_rewrite(
    fi: u16,
    f: &Function,
    cfg: &Cfg,
    lp: &NaturalLoop,
    rw: &LoopRewrite,
) -> Result<(Function, Vec<Option<u32>>), tvm::VmError> {
    let in_loop = |b: BlockId| lp.blocks.contains(&b);
    let edge_payload = |pb: BlockId, tb: BlockId| -> &[Instr] {
        if in_loop(pb) && !in_loop(tb) {
            &rw.exit_payload
        } else if tb == lp.header && !in_loop(pb) {
            &rw.entry_payload
        } else {
            &[]
        }
    };

    let mut em = Emitter::default();
    let block_labels: Vec<u32> = (0..cfg.len()).map(|_| em.new_label()).collect();
    let mut tramp: BTreeMap<(u32, u32), (u32, Vec<Instr>)> = BTreeMap::new();
    let mut edge_label = |em: &mut Emitter, pb: BlockId, tb: BlockId| -> (u32, bool) {
        let payload = edge_payload(pb, tb);
        if payload.is_empty() {
            return (block_labels[tb.0 as usize], false);
        }
        let l = tramp
            .entry((pb.0, tb.0))
            .or_insert_with(|| (em.new_label(), payload.to_vec()))
            .0;
        (l, true)
    };

    for (bi, block) in cfg.blocks.iter().enumerate() {
        let b = BlockId(bi as u32);
        em.bind(block_labels[bi]);
        for idx in block.start..block.end {
            let instr = f.code[idx as usize];
            let is_terminator_pos = idx == block.end - 1;

            if !is_terminator_pos || !instr.is_terminator() {
                if in_loop(b) {
                    if let Some(rep) = rw.subst.get(&idx) {
                        for &r in rep {
                            em.raw(r);
                        }
                        if is_terminator_pos {
                            emit_fallthrough(fi, &mut em, cfg, b, block.end, &mut edge_label)?;
                        }
                        continue;
                    }
                }
                em.raw_at(instr, idx);
                if is_terminator_pos {
                    emit_fallthrough(fi, &mut em, cfg, b, block.end, &mut edge_label)?;
                }
                continue;
            }

            debug_assert!(
                !rw.subst.contains_key(&idx),
                "terminators cannot be substituted"
            );
            let block_of = |t: u32, at: u32| {
                cfg.block_of(t).ok_or(tvm::VmError::BadBranchTarget {
                    func: fi,
                    at,
                    target: t,
                })
            };
            match instr {
                Instr::Goto(t) | Instr::AGoto(t) => {
                    let tb = block_of(t, idx)?;
                    let (l, _) = edge_label(&mut em, b, tb);
                    em.branch_at(instr.map_target(|_| l), idx);
                }
                Instr::If(..) | Instr::IfICmp(..) | Instr::IfFCmp(..) => {
                    let t = instr.branch_target().unwrap_or(0);
                    let tb = block_of(t, idx)?;
                    let (l, _) = edge_label(&mut em, b, tb);
                    em.branch_at(instr.map_target(|_| l), idx);
                    emit_fallthrough(fi, &mut em, cfg, b, block.end, &mut edge_label)?;
                }
                Instr::Return | Instr::ReturnVoid | Instr::Halt => {
                    // leaving the function (or the program) from inside
                    // the loop exits it: the payload must run first
                    if in_loop(b) {
                        for &p in &rw.exit_payload {
                            em.raw(p);
                        }
                    }
                    em.raw_at(instr, idx);
                }
                _ => unreachable!("is_terminator covered above"),
            }
        }
    }

    // trampolines (all edge labels were requested during the block walk)
    type Trampoline = ((u32, u32), (u32, Vec<Instr>));
    let trampolines: Vec<Trampoline> = tramp.iter().map(|(k, v)| (*k, v.clone())).collect();
    for ((_pb, tb), (label, payload)) in trampolines {
        em.bind(label);
        for i in payload {
            em.raw(i);
        }
        em.branch(Instr::Goto(block_labels[tb as usize]));
    }

    let (code, origin) = em.finish(fi)?;
    Ok((
        Function {
            name: f.name.clone(),
            n_params: f.n_params,
            n_locals: f.n_locals + rw.extra_locals,
            returns: f.returns,
            code,
        },
        origin,
    ))
}

/// Handles a block's fallthrough edge. The fallthrough block is always
/// the next one emitted, so when the edge carries no payload, control
/// simply falls through — a `Goto` is only emitted to detour through a
/// trampoline.
fn emit_fallthrough(
    fi: u16,
    em: &mut Emitter,
    cfg: &Cfg,
    b: BlockId,
    block_end: u32,
    edge_label: &mut impl FnMut(&mut Emitter, BlockId, BlockId) -> (u32, bool),
) -> Result<(), tvm::VmError> {
    let ft = cfg
        .block_of(block_end)
        .ok_or(tvm::VmError::BadBranchTarget {
            func: fi,
            at: block_end.saturating_sub(1),
            target: block_end,
        })?;
    debug_assert_eq!(ft.0, b.0 + 1, "fallthrough block follows immediately");
    let (l, has_payload) = edge_label(em, b, ft);
    if has_payload {
        em.branch(Instr::Goto(l));
    }
    Ok(())
}

/// The distribution plan for a single-body-block counted loop: the
/// body's statements are partitioned into `groups` (each a list of
/// disjoint instruction ranges in original order), and the loop is
/// replaced by one sequential copy per group, each driven by its own
/// inductor copy. The last group reuses the original inductor local so
/// code after the loop observing it sees the exit value.
#[derive(Debug, Clone)]
pub(crate) struct DistributionPlan {
    /// The loop's guard (header) block.
    pub header: BlockId,
    /// The single body block (also the sole latch).
    pub body: BlockId,
    /// Per-group statement ranges `[start, end)` into the body block.
    pub groups: Vec<Vec<(u32, u32)>>,
    /// Per-group inductor local (fresh copies; last = the original).
    pub inductors: Vec<tvm::program::Local>,
    /// The original inductor local.
    pub orig_inductor: tvm::program::Local,
    /// How many fresh locals the plan introduces (`groups.len() - 1`).
    pub extra_locals: u16,
}

/// Applies a [`DistributionPlan`], producing the rewritten function
/// and an origin map.
///
/// # Errors
///
/// [`tvm::VmError`] on malformed branch structure.
pub(crate) fn apply_distribution(
    fi: u16,
    f: &Function,
    cfg: &Cfg,
    plan: &DistributionPlan,
) -> Result<(Function, Vec<Option<u32>>), tvm::VmError> {
    let mut em = Emitter::default();
    let block_labels: Vec<u32> = (0..cfg.len()).map(|_| em.new_label()).collect();
    let n_groups = plan.groups.len();
    let guard_labels: Vec<u32> = (0..n_groups).map(|_| em.new_label()).collect();

    let header_block = &cfg.blocks[plan.header.0 as usize];
    let body_block = &cfg.blocks[plan.body.0 as usize];
    // the guard is [Load i, <bound push>, IfICmp(cond, exit)]
    let guard_range = header_block.start..header_block.end;
    let exit_target = f.code[(header_block.end - 1) as usize]
        .branch_target()
        .expect("distribution guard ends in a conditional branch");
    let exit_block = cfg
        .block_of(exit_target)
        .ok_or(tvm::VmError::BadBranchTarget {
            func: fi,
            at: header_block.end - 1,
            target: exit_target,
        })?;
    // the body ends with [IInc(i, step), Goto(header)]
    let inc_instr = f.code[(body_block.end - 2) as usize];

    let subst_local = |instr: Instr, g: usize| -> Instr {
        let ind = plan.inductors[g];
        match instr {
            Instr::Load(l) if l == plan.orig_inductor => Instr::Load(ind),
            Instr::IInc(l, c) if l == plan.orig_inductor => Instr::IInc(ind, c),
            other => other,
        }
    };

    for (bi, block) in cfg.blocks.iter().enumerate() {
        let b = BlockId(bi as u32);
        if b == plan.body {
            continue; // consumed by the fission copies
        }
        em.bind(block_labels[bi]);
        if b == plan.header {
            // snapshot the inductor into each fresh copy, then emit one
            // guarded loop per group, chained in topological order
            for g in 0..n_groups {
                if plan.inductors[g] != plan.orig_inductor {
                    em.raw(Instr::Load(plan.orig_inductor));
                    em.raw(Instr::Store(plan.inductors[g]));
                }
            }
            for g in 0..n_groups {
                em.bind(guard_labels[g]);
                let next = if g + 1 < n_groups {
                    guard_labels[g + 1]
                } else {
                    block_labels[exit_block.0 as usize]
                };
                for idx in guard_range.clone() {
                    let instr = subst_local(f.code[idx as usize], g);
                    if instr.is_terminator() {
                        em.branch(instr.map_target(|_| next));
                    } else {
                        em.raw(instr);
                    }
                }
                for &(s, e) in &plan.groups[g] {
                    for idx in s..e {
                        em.raw_at(subst_local(f.code[idx as usize], g), idx);
                    }
                }
                em.raw(subst_local(inc_instr, g));
                em.branch(Instr::Goto(guard_labels[g]));
            }
            continue;
        }
        for idx in block.start..block.end {
            let instr = f.code[idx as usize];
            let is_terminator_pos = idx == block.end - 1;
            if is_terminator_pos && instr.is_terminator() {
                if let Some(t) = instr.branch_target() {
                    let tb = cfg.block_of(t).ok_or(tvm::VmError::BadBranchTarget {
                        func: fi,
                        at: idx,
                        target: t,
                    })?;
                    em.branch_at(instr.map_target(|_| block_labels[tb.0 as usize]), idx);
                } else {
                    em.raw_at(instr, idx);
                }
            } else {
                em.raw_at(instr, idx);
                if is_terminator_pos {
                    // plain fallthrough into the next block; since the
                    // body block is skipped and the header re-emitted in
                    // place, order is preserved and fallthrough stands —
                    // unless the next block is the skipped body, which
                    // has no predecessors other than its header
                    let ft = cfg.block_of(block.end);
                    if ft == Some(plan.body) {
                        return Err(tvm::VmError::Verify {
                            func: fi,
                            at: idx,
                            reason: "distribution body block has a fallthrough predecessor".into(),
                        });
                    }
                }
            }
        }
    }

    let (code, origin) = em.finish(fi)?;
    Ok((
        Function {
            name: f.name.clone(),
            n_params: f.n_params,
            n_locals: f.n_locals + plan.extra_locals,
            returns: f.returns,
            code,
        },
        origin,
    ))
}
