//! Dominator computation (Cooper–Harvey–Kennedy iterative algorithm).

use crate::cfg::{BlockId, Cfg};

/// Immediate-dominator tree for a [`Cfg`].
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `idom[b]` is the immediate dominator of block `b`; the entry
    /// block is its own idom.
    idom: Vec<BlockId>,
    /// Reverse post-order number of each block (entry = 0).
    rpo_number: Vec<u32>,
}

impl Dominators {
    /// Computes dominators with the classic "engineered" iterative
    /// algorithm over reverse post-order.
    pub fn compute(cfg: &Cfg) -> Dominators {
        let n = cfg.len();
        let rpo = cfg.reverse_postorder();
        let mut rpo_number = vec![u32::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_number[b.0 as usize] = i as u32;
        }

        let undefined = BlockId(u32::MAX);
        let mut idom = vec![undefined; n];
        if n == 0 {
            return Dominators { idom, rpo_number };
        }
        idom[0] = BlockId(0);

        let intersect = |idom: &[BlockId], rpo_number: &[u32], a: BlockId, b: BlockId| {
            let mut x = a;
            let mut y = b;
            while x != y {
                while rpo_number[x.0 as usize] > rpo_number[y.0 as usize] {
                    x = idom[x.0 as usize];
                }
                while rpo_number[y.0 as usize] > rpo_number[x.0 as usize] {
                    y = idom[y.0 as usize];
                }
            }
            x
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let preds = &cfg.blocks[b.0 as usize].preds;
                let mut new_idom: Option<BlockId> = None;
                for &p in preds {
                    if idom[p.0 as usize] == undefined {
                        continue; // not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_number, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.0 as usize] != ni {
                        idom[b.0 as usize] = ni;
                        changed = true;
                    }
                }
            }
        }

        Dominators { idom, rpo_number }
    }

    /// True if `a` dominates `b` (reflexive: every block dominates
    /// itself).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut x = b;
        loop {
            if x == a {
                return true;
            }
            let parent = self.idom[x.0 as usize];
            if parent == x {
                return false; // reached entry
            }
            x = parent;
        }
    }

    /// The immediate dominator of `b` (the entry block returns itself).
    pub fn idom(&self, b: BlockId) -> BlockId {
        self.idom[b.0 as usize]
    }

    /// Reverse post-order number of `b`.
    pub fn rpo_number(&self, b: BlockId) -> u32 {
        self.rpo_number[b.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use tvm::isa::Cond;
    use tvm::ProgramBuilder;

    fn cfg_of(body: impl FnOnce(&mut tvm::FnBuilder)) -> Cfg {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            body(f);
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        Cfg::build(&p.functions[0])
    }

    #[test]
    fn entry_dominates_everything() {
        let cfg = cfg_of(|f| {
            let i = f.local();
            f.for_in(i, 0.into(), 3.into(), |f| {
                f.if_icmp(
                    Cond::Eq,
                    |f| {
                        f.ld(i).ci(1);
                    },
                    |f| {
                        f.inc(i, 1);
                    },
                );
            });
        });
        let dom = Dominators::compute(&cfg);
        for b in 0..cfg.len() {
            assert!(dom.dominates(BlockId(0), BlockId(b as u32)));
        }
    }

    #[test]
    fn branch_arms_do_not_dominate_join() {
        let cfg = cfg_of(|f| {
            let x = f.local();
            f.ci(0).st(x);
            f.if_else_icmp(
                Cond::Gt,
                |f| {
                    f.ld(x).ci(0);
                },
                |f| {
                    f.ci(1).st(x);
                },
                |f| {
                    f.ci(2).st(x);
                },
            );
            f.ld(x).drop_top();
        });
        let dom = Dominators::compute(&cfg);
        // find the two-successor block (the branch head)
        let head = (0..cfg.len())
            .map(|i| BlockId(i as u32))
            .find(|b| cfg.blocks[b.0 as usize].succs.len() == 2)
            .unwrap();
        let [a, b] = [
            cfg.blocks[head.0 as usize].succs[0],
            cfg.blocks[head.0 as usize].succs[1],
        ];
        // the join block is a successor of both arms
        let join = cfg.blocks[a.0 as usize]
            .succs
            .iter()
            .find(|s| cfg.blocks[b.0 as usize].succs.contains(s))
            .copied()
            .unwrap();
        assert!(dom.dominates(head, join));
        assert!(!dom.dominates(a, join));
        assert!(!dom.dominates(b, join));
    }

    #[test]
    fn loop_header_dominates_latch() {
        let cfg = cfg_of(|f| {
            let i = f.local();
            f.for_in(i, 0.into(), 3.into(), |_f| {});
        });
        let dom = Dominators::compute(&cfg);
        // back edge: block whose successor has smaller or equal id
        let (latch, header) = cfg
            .blocks
            .iter()
            .enumerate()
            .find_map(|(i, b)| {
                b.succs
                    .iter()
                    .find(|s| (s.0 as usize) <= i)
                    .map(|&s| (BlockId(i as u32), s))
            })
            .unwrap();
        assert!(dom.dominates(header, latch));
    }
}
