//! Natural-loop identification and the loop-nesting forest.

use crate::cfg::{BlockId, Cfg};
use crate::dom::Dominators;
use std::collections::BTreeSet;

/// A natural loop: a CFG back edge's strongly nested body.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// The loop header (single entry block).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub blocks: BTreeSet<BlockId>,
    /// Blocks with a back edge to the header (latches).
    pub latches: Vec<BlockId>,
    /// Edges entering the loop from outside: `(pred, header)`.
    pub entry_edges: Vec<(BlockId, BlockId)>,
    /// Edges leaving the loop: `(inside, outside)`.
    pub exit_edges: Vec<(BlockId, BlockId)>,
    /// Index of the enclosing loop in the forest, if any.
    pub parent: Option<usize>,
    /// Nesting depth (1 = outermost).
    pub depth: u32,
    /// Height above the innermost loop of this nest (innermost = 1).
    pub height: u32,
}

/// All natural loops of one function, with nesting relations.
///
/// Loops are ordered outermost-first (by decreasing body size), so a
/// loop's parent always precedes it.
#[derive(Debug, Clone, Default)]
pub struct LoopForest {
    /// The loops, outermost first.
    pub loops: Vec<NaturalLoop>,
}

impl LoopForest {
    /// Finds all natural loops of `cfg`. Back edges with the same
    /// header are merged into one loop (as in classic loop analysis).
    pub fn build(cfg: &Cfg, dom: &Dominators) -> LoopForest {
        // collect back edges
        let mut back_edges: Vec<(BlockId, BlockId)> = Vec::new();
        for (bi, b) in cfg.blocks.iter().enumerate() {
            let from = BlockId(bi as u32);
            for &to in &b.succs {
                if dom.dominates(to, from) {
                    back_edges.push((from, to));
                }
            }
        }

        // group by header, gather bodies
        let mut headers: Vec<BlockId> = back_edges.iter().map(|&(_, h)| h).collect();
        headers.sort_unstable();
        headers.dedup();

        let mut loops: Vec<NaturalLoop> = Vec::new();
        for header in headers {
            let latches: Vec<BlockId> = back_edges
                .iter()
                .filter(|&&(_, h)| h == header)
                .map(|&(l, _)| l)
                .collect();
            let mut blocks: BTreeSet<BlockId> = BTreeSet::new();
            blocks.insert(header);
            // reverse reachability from each latch, not crossing header
            let mut work: Vec<BlockId> = Vec::new();
            for &l in &latches {
                if blocks.insert(l) {
                    work.push(l);
                }
            }
            while let Some(b) = work.pop() {
                for &p in &cfg.blocks[b.0 as usize].preds {
                    if blocks.insert(p) {
                        work.push(p);
                    }
                }
            }

            let mut entry_edges = Vec::new();
            for &p in &cfg.blocks[header.0 as usize].preds {
                if !blocks.contains(&p) {
                    entry_edges.push((p, header));
                }
            }
            let mut exit_edges = Vec::new();
            for &b in &blocks {
                for &s in &cfg.blocks[b.0 as usize].succs {
                    if !blocks.contains(&s) {
                        exit_edges.push((b, s));
                    }
                }
            }

            loops.push(NaturalLoop {
                header,
                blocks,
                latches,
                entry_edges,
                exit_edges,
                parent: None,
                depth: 1,
                height: 1,
            });
        }

        // outermost first: larger bodies first, ties by header order
        loops.sort_by(|a, b| {
            b.blocks
                .len()
                .cmp(&a.blocks.len())
                .then(a.header.cmp(&b.header))
        });

        // parent = smallest strict superset among earlier (larger) loops
        for i in 0..loops.len() {
            let mut best: Option<usize> = None;
            for j in 0..i {
                if loops[j].blocks.len() > loops[i].blocks.len()
                    && loops[j].blocks.is_superset(&loops[i].blocks)
                {
                    best = Some(match best {
                        None => j,
                        Some(k) if loops[j].blocks.len() < loops[k].blocks.len() => j,
                        Some(k) => k,
                    });
                }
            }
            loops[i].parent = best;
            loops[i].depth = best.map_or(1, |p| loops[p].depth + 1);
        }

        // heights: innermost = 1, bottom-up
        for i in (0..loops.len()).rev() {
            let h = 1 + loops
                .iter()
                .enumerate()
                .filter(|&(j, l)| l.parent == Some(i) && j != i)
                .map(|(_, l)| l.height)
                .max()
                .unwrap_or(0);
            loops[i].height = h;
        }

        LoopForest { loops }
    }

    /// Number of loops.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// True if the function has no loops.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// Maximum static nesting depth (0 when loop-free).
    pub fn max_depth(&self) -> u32 {
        self.loops.iter().map(|l| l.depth).max().unwrap_or(0)
    }

    /// The innermost loop containing block `b`, if any.
    pub fn innermost_containing(&self, b: BlockId) -> Option<usize> {
        self.loops
            .iter()
            .enumerate()
            .filter(|(_, l)| l.blocks.contains(&b))
            .max_by_key(|(_, l)| l.depth)
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::dom::Dominators;
    use tvm::isa::Cond;
    use tvm::ProgramBuilder;

    fn forest_of(body: impl FnOnce(&mut tvm::FnBuilder)) -> (Cfg, LoopForest) {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            body(f);
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let cfg = Cfg::build(&p.functions[0]);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::build(&cfg, &dom);
        (cfg, forest)
    }

    #[test]
    fn single_loop_found() {
        let (_, forest) = forest_of(|f| {
            let i = f.local();
            f.for_in(i, 0.into(), 10.into(), |_f| {});
        });
        assert_eq!(forest.len(), 1);
        let l = &forest.loops[0];
        assert_eq!(l.depth, 1);
        assert_eq!(l.height, 1);
        assert_eq!(l.entry_edges.len(), 1);
        assert!(!l.exit_edges.is_empty());
        assert_eq!(l.latches.len(), 1);
    }

    #[test]
    fn nested_loops_have_parent_links() {
        let (_, forest) = forest_of(|f| {
            let i = f.local();
            let j = f.local();
            f.for_in(i, 0.into(), 10.into(), |f| {
                f.for_in(j, 0.into(), 10.into(), |_f| {});
            });
        });
        assert_eq!(forest.len(), 2);
        let outer = &forest.loops[0];
        let inner = &forest.loops[1];
        assert!(outer.blocks.len() > inner.blocks.len());
        assert_eq!(inner.parent, Some(0));
        assert_eq!(outer.parent, None);
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.depth, 2);
        assert_eq!(outer.height, 2);
        assert_eq!(inner.height, 1);
        assert_eq!(forest.max_depth(), 2);
    }

    #[test]
    fn sequential_loops_are_siblings() {
        let (_, forest) = forest_of(|f| {
            let i = f.local();
            f.for_in(i, 0.into(), 10.into(), |_f| {});
            f.for_in(i, 0.into(), 10.into(), |_f| {});
        });
        assert_eq!(forest.len(), 2);
        assert!(forest.loops.iter().all(|l| l.parent.is_none()));
        assert_eq!(forest.max_depth(), 1);
    }

    #[test]
    fn triple_nest_depths() {
        let (_, forest) = forest_of(|f| {
            let (i, j, k) = (f.local(), f.local(), f.local());
            f.for_in(i, 0.into(), 3.into(), |f| {
                f.for_in(j, 0.into(), 3.into(), |f| {
                    f.for_in(k, 0.into(), 3.into(), |_f| {});
                });
            });
        });
        assert_eq!(forest.len(), 3);
        assert_eq!(forest.max_depth(), 3);
        assert_eq!(forest.loops[0].height, 3);
    }

    #[test]
    fn do_while_loop_found() {
        let (_, forest) = forest_of(|f| {
            let n = f.local();
            f.ci(0).st(n);
            f.do_while_icmp(
                |f| {
                    f.inc(n, 1);
                },
                |f| {
                    f.ld(n).ci(10);
                },
                Cond::Lt,
            );
        });
        assert_eq!(forest.len(), 1);
    }

    #[test]
    fn innermost_containing_picks_deepest() {
        let (_cfg, forest) = forest_of(|f| {
            let (i, j) = (f.local(), f.local());
            f.for_in(i, 0.into(), 3.into(), |f| {
                f.for_in(j, 0.into(), 3.into(), |_f| {});
            });
        });
        let inner_header = forest.loops[1].header;
        assert_eq!(forest.innermost_containing(inner_header), Some(1));
    }
}
