//! Static memory-dependence pre-screen for candidate STLs.
//!
//! The TEST approach (paper §3) is optimistic: the compiler proposes
//! every natural loop and lets the hardware tracer measure actual
//! memory dependences. That wastes tracer time on loops whose serial
//! nature is *statically obvious* — a running sum through a static, a
//! linked accumulator field, or an array recurrence like
//! `a[i] = a[i-1] + ...`. This module proves a small class of
//! **guaranteed cross-iteration RAW dependences** over the symbolic
//! form `base + inductor*scale + offset` of each address; loops with a
//! proven dependence are demoted before annotation so the tracing
//! pipeline never spends a profiling run on them.
//!
//! The screen only ever *demotes* with proof in hand; anything it
//! cannot model (calls, aliased bases, non-affine indices) stays a
//! candidate, preserving the paper's optimism.
//!
//! The access-site walk and the alias rules live in [`crate::access`];
//! when points-to facts ([`crate::pointsto`]) are supplied, the masking
//! rule sharpens monotonically — every newly-disjoint store pair only
//! *removes* mask edges, so strictly more loads stay provable and
//! strictly more access pairs are classified independent, never fewer.
//! [`classify_loop_pairs`] exposes the pair-level verdicts that the
//! agreement report checks against dynamic traces.

use crate::access::{
    collect_accesses, every_iteration, inductor_steps, invariant_locals, load_precedes_store,
    same_iteration_blocker, strongly_disjoint, transitive_store_effects, Access, AccessSite,
    DepWitness, Sym,
};
use crate::cfg::Cfg;
use crate::dom::Dominators;
use crate::loops::NaturalLoop;
use crate::pointsto::FnView;
use crate::scev::LoopEvolutions;
use tvm::isa::{GlobalId, Local};
use tvm::program::{Function, Program};

/// What the dependent accesses go through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepKind {
    /// Load and store of the same static variable every iteration.
    Static(GlobalId),
    /// Load and store of the same field of a loop-invariant object.
    Field {
        /// Local holding the object reference.
        base: Local,
        /// Field slot index.
        field: u16,
    },
    /// `a[i*s + o1]` read after `a[i*s + o2]` written `distance`
    /// iterations earlier.
    Array {
        /// Local holding the array reference.
        base: Local,
    },
}

/// A proven cross-iteration read-after-write dependence: every
/// iteration's load observes a value stored by an earlier iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuaranteedDep {
    /// The memory channel the dependence flows through.
    pub kind: DepKind,
    /// Instruction index of the dependent load.
    pub load_at: u32,
    /// Instruction index of the store feeding it.
    pub store_at: u32,
    /// Dependence distance in iterations (1 = loop-carried from the
    /// immediately preceding iteration).
    pub distance: u32,
}

impl GuaranteedDep {
    /// Human-readable reason used in diagnostics and lint output.
    pub fn reason(&self) -> String {
        match &self.kind {
            DepKind::Static(g) => format!(
                "static g{} is read then rewritten every iteration (distance {})",
                g.0, self.distance
            ),
            DepKind::Field { base, field } => format!(
                "field #{} of the object in local {} is read then rewritten \
                 every iteration (distance {})",
                field, base.0, self.distance
            ),
            DepKind::Array { base } => format!(
                "array in local {} has a guaranteed recurrence at distance {}",
                base.0, self.distance
            ),
        }
    }
}

/// True when some store in the loop may write `load`'s address earlier
/// in the *same* iteration. Such a store satisfies the load with
/// same-iteration data, so "the load observes an earlier iteration's
/// value" is no longer guaranteed and no dependence may be claimed
/// through it.
///
/// A store is harmless only if it provably runs after the load, or if
/// it provably writes a different address within the iteration
/// ([`same_iteration_disjoint`]). A call whose callee may transitively
/// store to memory the load can observe is an opaque store and masks
/// the same way (found by differential fuzzing: the body
/// `g = -3; g = g;` pairs the second statement's load/store as a
/// recurrence, but the load can only ever observe the same iteration's
/// `-3`).
fn load_may_be_masked(
    dom: &Dominators,
    sites: &[AccessSite],
    load: &AccessSite,
    pt: Option<&FnView<'_>>,
) -> bool {
    masking_witness(dom, sites, load, pt).is_some()
}

/// The witness form of `load_may_be_masked`: the first store that
/// may satisfy `load` within its own iteration, as a [`DepWitness`].
/// The rescue legality checker and the `TR002` lint diagnostic use
/// this to report *which* store blocked a transform without a second
/// walk over the access sites.
pub fn masking_witness(
    dom: &Dominators,
    sites: &[AccessSite],
    load: &AccessSite,
    pt: Option<&FnView<'_>>,
) -> Option<DepWitness> {
    sites.iter().find_map(|s2| {
        if !s2.access.is_store() || load_precedes_store(dom, load, s2) {
            return None;
        }
        same_iteration_blocker(load, s2, pt)
    })
}

/// Scans one loop for guaranteed cross-iteration RAW dependences.
///
/// Three shapes are proven (anything else is left alone):
///
/// 1. **static recurrence** — `GetStatic g` before `PutStatic g`, both
///    on every iteration: iteration *n* reads what *n−1* wrote;
/// 2. **field recurrence** — the same through a field of an object
///    whose reference sits in a loop-invariant local;
/// 3. **array recurrence** — `a[i*s + o_l]` read and `a[i*s + o_s]`
///    written every iteration with the same invariant base and the
///    same inductor: with step `c` per iteration, the store of
///    iteration *n* is re-read `(o_s − o_l) / (s·c)` iterations later;
///    a positive integral distance proves the RAW. Ordering within the
///    iteration is irrelevant because the two addresses differ
///    whenever the distance is nonzero.
///
/// In every shape, no *other* store may be able to write the load's
/// address earlier in the same iteration (`load_may_be_masked`).
/// Passing points-to facts (`pt`) makes masking strictly less
/// conservative — stores through provably-disjoint bases and calls to
/// callees that cannot reach the load's memory stop masking — so the
/// screen can only gain proofs, never lose them.
pub fn analyze_loop(
    program: &Program,
    f: &Function,
    cfg: &Cfg,
    dom: &Dominators,
    lp: &NaturalLoop,
    pt: Option<&FnView<'_>>,
) -> Vec<GuaranteedDep> {
    let inductors = inductor_steps(f, cfg, dom, lp);
    let invariant = invariant_locals(f, cfg, lp);
    let effects = transitive_store_effects(program);
    let sites = collect_accesses(program, f, cfg, lp, &inductors, &invariant, &effects);
    let step_of = |l: Local| {
        inductors
            .iter()
            .find(|&&(i, _)| i == l)
            .map(|&(_, c)| c)
            .unwrap_or(0)
    };

    let mut deps = Vec::new();
    for load in &sites {
        if !every_iteration(dom, lp, load) {
            continue;
        }
        if load_may_be_masked(dom, &sites, load, pt) {
            continue;
        }
        for store in &sites {
            if !every_iteration(dom, lp, store) {
                continue;
            }
            let dep = match (&load.access, &store.access) {
                (Access::StaticLoad(gl), Access::StaticStore(gs)) if gl == gs => {
                    load_precedes_store(dom, load, store).then_some(GuaranteedDep {
                        kind: DepKind::Static(*gl),
                        load_at: load.instr,
                        store_at: store.instr,
                        distance: 1,
                    })
                }
                (
                    Access::FieldLoad {
                        base: Sym::Invariant(bl),
                        field: fl,
                    },
                    Access::FieldStore {
                        base: Sym::Invariant(bs),
                        field: fs,
                    },
                ) if bl == bs && fl == fs => {
                    load_precedes_store(dom, load, store).then_some(GuaranteedDep {
                        kind: DepKind::Field {
                            base: *bl,
                            field: *fl,
                        },
                        load_at: load.instr,
                        store_at: store.instr,
                        distance: 1,
                    })
                }
                (
                    Access::ArrayLoad {
                        base: Sym::Invariant(bl),
                        index:
                            Sym::Affine {
                                ind: il,
                                scale: sl,
                                offset: ol,
                            },
                    },
                    Access::ArrayStore {
                        base: Sym::Invariant(bs),
                        index:
                            Sym::Affine {
                                ind: is_,
                                scale: ss,
                                offset: os,
                            },
                    },
                ) if bl == bs && il == is_ && sl == ss => {
                    let per_iter = sl.checked_mul(step_of(*il)).unwrap_or(0);
                    if per_iter != 0 && (os - ol) % per_iter == 0 {
                        let d = (os - ol) / per_iter;
                        (d >= 1).then_some(GuaranteedDep {
                            kind: DepKind::Array { base: *bl },
                            load_at: load.instr,
                            store_at: store.instr,
                            distance: d as u32,
                        })
                    } else {
                        None
                    }
                }
                _ => None,
            };
            if let Some(d) = dep {
                deps.push(d);
            }
        }
    }
    // one proof per channel is enough; keep the first per (kind)
    deps.dedup_by(|a, b| a.kind == b.kind);
    deps
}

/// Verdict on one (load, store) access pair of a loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairVerdict {
    /// The two accesses can never touch the same address — the
    /// agreement report's soundness invariant requires their dynamic
    /// address sets to be disjoint.
    Disjoint,
    /// Nothing proven either way; the tracer judges.
    MayAlias,
    /// Scalar evolution proved that any address both sites touch is
    /// touched at iteration distance exactly `d >= 1` (never within
    /// the same iteration) — the dependence distance of the pair. A
    /// sharpening of `MayAlias`: a distance-`d` chain still admits
    /// `d`-way speculative overlap.
    DistanceAtLeast(u32),
    /// A guaranteed cross-iteration RAW flows from the store to the
    /// load.
    GuaranteedRaw,
}

/// One classified (load, store) pair.
#[derive(Debug, Clone)]
pub struct AccessPair {
    /// Instruction index of the load (original, unannotated code).
    pub load_at: u32,
    /// Instruction index of the store — for an opaque pair, of the
    /// call.
    pub store_at: u32,
    /// True when the store side is a call with a may-store summary
    /// rather than a concrete store instruction (its dynamic events
    /// happen at callee pcs, so address-set checks skip it).
    pub opaque_store: bool,
    /// The verdict.
    pub verdict: PairVerdict,
    /// True when the pair is disjoint *only* thanks to points-to facts
    /// (the PR 1 structural rules alone would say may-alias).
    pub via_pointsto: bool,
    /// True when the verdict was sharpened by scalar evolution
    /// (`Disjoint` by a non-integral distance, or `DistanceAtLeast`).
    pub via_scev: bool,
    /// The *signed* dependence distance behind a `DistanceAtLeast`
    /// verdict: `q > 0` means the load reads what the store wrote `q`
    /// iterations earlier (a cross-iteration RAW chain — selection may
    /// floor speedup at `q`-way overlap), `q < 0` an anti-dependence
    /// (the store lands `|q|` iterations *after* the load, which TLS
    /// versioning absorbs — no floor). `None` for every other verdict.
    pub scev_distance: Option<i64>,
}

/// Classifies every (load, store) access pair of one loop body.
///
/// Running with `pt = None` reproduces the PR 1 structural alias rules
/// exactly; running with points-to facts can only turn `MayAlias` into
/// `Disjoint` (strict monotone sharpening). The delta between the two
/// is what the committed pre-screen snapshot records.
pub fn classify_loop_pairs(
    program: &Program,
    f: &Function,
    cfg: &Cfg,
    dom: &Dominators,
    lp: &NaturalLoop,
    pt: Option<&FnView<'_>>,
) -> Vec<AccessPair> {
    classify_with(program, f, cfg, dom, lp, pt, None)
}

/// [`classify_loop_pairs`] with scalar-evolution sharpening: affine
/// array pairs over the same base and inductor additionally gain a
/// dependence *distance vector*. A pair whose index offsets differ by
/// a non-multiple of the per-iteration address step can never collide
/// (`Disjoint`); one whose offsets differ by exactly `d` steps
/// collides only across iterations exactly `d` apart
/// ([`PairVerdict::DistanceAtLeast`]). Verdicts are a strict monotone
/// sharpening of [`classify_loop_pairs`]: `Disjoint` and
/// `GuaranteedRaw` never change, only `MayAlias` is refined.
pub fn classify_loop_pairs_evo(
    program: &Program,
    f: &Function,
    cfg: &Cfg,
    dom: &Dominators,
    lp: &NaturalLoop,
    pt: Option<&FnView<'_>>,
    evo: &LoopEvolutions,
) -> Vec<AccessPair> {
    classify_with(program, f, cfg, dom, lp, pt, Some(evo))
}

/// The dependence distance scalar evolution proves for two affine
/// array accesses, when they target the same (invariant) base array
/// and walk it with the same per-iteration step.
///
/// With load index `s*i + o1`, store index `s*i + o2` and inductor
/// step `k`, the element touched by the load in iteration `a` equals
/// the element touched by the store in iteration `b` iff
/// `s*k*(a - b) == o2 - o1`. The returned verdict is `Disjoint` when
/// that equation has no integer solution, `DistanceAtLeast(|q|)` when
/// the unique solution is `a - b == q != 0`, and `None` when the sites
/// can collide within one iteration (`q == 0`) or the shapes don't
/// match.
fn evo_distance(
    load: &Access,
    store: &Access,
    evo: &LoopEvolutions,
) -> Option<(PairVerdict, Option<i64>)> {
    let (lb, li, sb, si) = match (load, store) {
        (
            Access::ArrayLoad {
                base: lb,
                index: li,
            },
            Access::ArrayStore {
                base: sb,
                index: si,
            },
        ) => (lb, li, sb, si),
        _ => return None,
    };
    // Same array object: both bases are the same loop-invariant local.
    let same_base = matches!((lb, sb), (Sym::Invariant(a), Sym::Invariant(b)) if a == b);
    if !same_base {
        return None;
    }
    let (ind, scale, o1, o2) = match (li, si) {
        (
            Sym::Affine {
                ind: i1,
                scale: s1,
                offset: o1,
            },
            Sym::Affine {
                ind: i2,
                scale: s2,
                offset: o2,
            },
        ) if i1 == i2 && s1 == s2 => (*i1, *s1, *o1, *o2),
        _ => return None,
    };
    let step = evo.local_stride(ind)?;
    let per_iter = i128::from(scale).checked_mul(i128::from(step))?;
    if per_iter == 0 {
        return None;
    }
    let delta = i128::from(o2) - i128::from(o1);
    if delta % per_iter != 0 {
        return Some((PairVerdict::Disjoint, None));
    }
    let q = delta / per_iter;
    if q == 0 {
        return None;
    }
    let verdict = PairVerdict::DistanceAtLeast(u32::try_from(q.unsigned_abs()).unwrap_or(u32::MAX));
    Some((verdict, Some(i64::try_from(q).unwrap_or(i64::MAX))))
}

/// The affine array access sites of one loop body: instruction index,
/// driving inductor, and element scale. This is the site inventory
/// the value-agreement checker uses to validate an inductor slice
/// dynamically — every listed site must advance `scale * stride`
/// elements per iteration if the slice's evolution claim is true.
pub fn affine_sites(
    program: &Program,
    f: &Function,
    cfg: &Cfg,
    dom: &Dominators,
    lp: &NaturalLoop,
) -> Vec<(u32, Local, i64)> {
    let inductors = inductor_steps(f, cfg, dom, lp);
    let invariant = invariant_locals(f, cfg, lp);
    let effects = transitive_store_effects(program);
    collect_accesses(program, f, cfg, lp, &inductors, &invariant, &effects)
        .into_iter()
        .filter_map(|s| match s.access {
            Access::ArrayLoad {
                index: Sym::Affine { ind, scale, .. },
                ..
            }
            | Access::ArrayStore {
                index: Sym::Affine { ind, scale, .. },
                ..
            } => Some((s.instr, ind, scale)),
            _ => None,
        })
        .collect()
}

fn classify_with(
    program: &Program,
    f: &Function,
    cfg: &Cfg,
    dom: &Dominators,
    lp: &NaturalLoop,
    pt: Option<&FnView<'_>>,
    evo: Option<&LoopEvolutions>,
) -> Vec<AccessPair> {
    let inductors = inductor_steps(f, cfg, dom, lp);
    let invariant = invariant_locals(f, cfg, lp);
    let effects = transitive_store_effects(program);
    let sites = collect_accesses(program, f, cfg, lp, &inductors, &invariant, &effects);
    let deps = analyze_loop(program, f, cfg, dom, lp, pt);

    let mut pairs = Vec::new();
    for load in sites.iter().filter(|s| s.access.is_load()) {
        for store in sites.iter().filter(|s| s.access.is_store()) {
            let guaranteed = deps
                .iter()
                .any(|d| d.load_at == load.instr && d.store_at == store.instr);
            let mut via_scev = false;
            let mut scev_distance = None;
            let verdict = if guaranteed {
                PairVerdict::GuaranteedRaw
            } else if strongly_disjoint(&load.access, &store.access, pt) {
                PairVerdict::Disjoint
            } else if let Some((sharp, q)) =
                evo.and_then(|e| evo_distance(&load.access, &store.access, e))
            {
                via_scev = true;
                scev_distance = q;
                sharp
            } else {
                PairVerdict::MayAlias
            };
            let via_pointsto = verdict == PairVerdict::Disjoint
                && !via_scev
                && !strongly_disjoint(&load.access, &store.access, None);
            pairs.push(AccessPair {
                load_at: load.instr,
                store_at: store.instr,
                opaque_store: matches!(store.access, Access::Opaque { .. }),
                verdict,
                via_pointsto,
                via_scev,
                scev_distance,
            });
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::LoopForest;
    use crate::pointsto::PointsTo;
    use tvm::ElemKind;
    use tvm::ProgramBuilder;

    fn analyze(p: &Program) -> Vec<GuaranteedDep> {
        let f = &p.functions[0];
        let cfg = Cfg::build(f);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::build(&cfg, &dom);
        assert_eq!(forest.len(), 1, "test programs must have one loop");
        analyze_loop(p, f, &cfg, &dom, &forest.loops[0], None)
    }

    fn analyze_with_pt(p: &Program) -> Vec<GuaranteedDep> {
        let pt = PointsTo::analyze(p);
        let f = &p.functions[p.entry.0 as usize];
        let cfg = Cfg::build(f);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::build(&cfg, &dom);
        assert_eq!(forest.len(), 1, "test programs must have one loop");
        analyze_loop(p, f, &cfg, &dom, &forest.loops[0], Some(&pt.view(p.entry)))
    }

    fn classify(p: &Program, with_pt: bool) -> Vec<AccessPair> {
        let pt = PointsTo::analyze(p);
        let f = &p.functions[p.entry.0 as usize];
        let cfg = Cfg::build(f);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::build(&cfg, &dom);
        assert_eq!(forest.len(), 1);
        let view = pt.view(p.entry);
        classify_loop_pairs(p, f, &cfg, &dom, &forest.loops[0], with_pt.then_some(&view))
    }

    #[test]
    fn static_recurrence_is_proven() {
        // g = g * 5 + 1 every iteration
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, false, |f| {
            let i = f.local();
            f.for_in(i, 0.into(), 10.into(), |f| {
                f.getstatic(g).ci(5).imul().ci(1).iadd().putstatic(g);
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let deps = analyze(&p);
        assert_eq!(deps.len(), 1);
        assert!(matches!(deps[0].kind, DepKind::Static(_)));
        assert_eq!(deps[0].distance, 1);
    }

    #[test]
    fn array_recurrence_is_proven() {
        // a[i] = a[i-1] + 1
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            let a = f.local();
            let i = f.local();
            f.ci(64).newarray(ElemKind::Int).st(a);
            f.for_in(i, 1.into(), 64.into(), |f| {
                f.ld(a).ld(i); // store address a[i]
                f.ld(a).ld(i).ci(1).isub().aload(); // a[i-1]
                f.ci(1).iadd();
                f.astore();
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let deps = analyze(&p);
        assert_eq!(deps.len(), 1, "got {deps:?}");
        assert!(matches!(deps[0].kind, DepKind::Array { .. }));
        assert_eq!(deps[0].distance, 1);
    }

    #[test]
    fn independent_array_loop_is_clean() {
        // a[i] = i * 2: no cross-iteration flow
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            let a = f.local();
            let i = f.local();
            f.ci(64).newarray(ElemKind::Int).st(a);
            f.for_in(i, 0.into(), 64.into(), |f| {
                f.ld(a).ld(i).ld(i).ci(2).imul().astore();
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        assert!(analyze(&p).is_empty());
    }

    #[test]
    fn forward_distance_is_not_a_raw() {
        // a[i] = a[i+1]: reads values the loop has not yet written
        // (an anti-dependence, which speculation handles fine)
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            let a = f.local();
            let i = f.local();
            f.ci(64).newarray(ElemKind::Int).st(a);
            f.for_in(i, 0.into(), 63.into(), |f| {
                f.ld(a).ld(i);
                f.ld(a).ld(i).ci(1).iadd().aload();
                f.astore();
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        assert!(analyze(&p).is_empty());
    }

    #[test]
    fn guarded_store_is_not_guaranteed() {
        // the putstatic only happens on some iterations: no proof
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, false, |f| {
            let i = f.local();
            f.for_in(i, 0.into(), 10.into(), |f| {
                f.if_icmp(
                    tvm::isa::Cond::Gt,
                    |f| {
                        f.ld(i).ci(5);
                    },
                    |f| {
                        f.getstatic(g).ci(1).iadd().putstatic(g);
                    },
                );
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        assert!(analyze(&p).is_empty());
    }

    #[test]
    fn masked_static_recurrence_is_not_claimed() {
        // g = -3; g = g;  — the read of g is always satisfied by the
        // same iteration's unconditional store of -3, so no
        // cross-iteration dependence may be claimed (fuzzgen seed 398)
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, false, |f| {
            let i = f.local();
            f.for_in(i, 0.into(), 10.into(), |f| {
                f.ci(-3).putstatic(g);
                f.getstatic(g).putstatic(g);
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        assert!(analyze(&p).is_empty(), "got {:?}", analyze(&p));
    }

    #[test]
    fn masked_array_recurrence_is_not_claimed() {
        // a[i-1] = 7; x = a[i-1]; a[i] = x — the load's address was
        // just written this iteration, so the (load, a[i]) pair proves
        // nothing
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            let a = f.local();
            let i = f.local();
            f.ci(64).newarray(ElemKind::Int).st(a);
            f.for_in(i, 1.into(), 64.into(), |f| {
                f.ld(a).ld(i).ci(1).isub().ci(7).astore();
                f.ld(a).ld(i);
                f.ld(a).ld(i).ci(1).isub().aload();
                f.astore();
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        assert!(analyze(&p).is_empty(), "got {:?}", analyze(&p));
    }

    #[test]
    fn callee_store_masks_through_the_call() {
        // helper writes g; main's loop calls helper then runs g = g:
        // the load is satisfied by the callee's same-iteration store,
        // so no recurrence may be claimed (fuzzgen seed 1546)
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let helper = b.declare("helper", 1, true);
        b.define(helper, |f| {
            let x = f.param(0);
            f.ld(x).putstatic(g);
            f.ld(x).ret();
        });
        let main = b.function("main", 0, false, |f| {
            let i = f.local();
            f.for_in(i, 0.into(), 10.into(), |f| {
                f.ld(i).call(helper).drop_top();
                f.getstatic(g).putstatic(g);
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let f = &p.functions[main.0 as usize];
        let cfg = Cfg::build(f);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::build(&cfg, &dom);
        assert_eq!(forest.len(), 1);
        let deps = analyze_loop(&p, f, &cfg, &dom, &forest.loops[0], None);
        assert!(deps.is_empty(), "got {deps:?}");
    }

    #[test]
    fn pure_callee_does_not_mask() {
        // the callee only computes; the static recurrence proof stands
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let helper = b.declare("helper", 1, true);
        b.define(helper, |f| {
            let x = f.param(0);
            f.ld(x).ci(3).imul().ret();
        });
        let main = b.function("main", 0, false, |f| {
            let i = f.local();
            f.for_in(i, 0.into(), 10.into(), |f| {
                f.ld(i).call(helper).drop_top();
                f.getstatic(g).ci(1).iadd().putstatic(g);
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let f = &p.functions[main.0 as usize];
        let cfg = Cfg::build(f);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::build(&cfg, &dom);
        assert_eq!(forest.len(), 1);
        let deps = analyze_loop(&p, f, &cfg, &dom, &forest.loops[0], None);
        assert_eq!(deps.len(), 1, "got {deps:?}");
        assert!(matches!(deps[0].kind, DepKind::Static(_)));
    }

    #[test]
    fn store_after_the_load_does_not_mask() {
        // x = a[i-1]; a[i] = x; a[i-1] = 7 — the extra store runs
        // after the load, so the recurrence proof stands
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            let a = f.local();
            let i = f.local();
            f.ci(64).newarray(ElemKind::Int).st(a);
            f.for_in(i, 1.into(), 64.into(), |f| {
                f.ld(a).ld(i);
                f.ld(a).ld(i).ci(1).isub().aload();
                f.astore();
                f.ld(a).ld(i).ci(1).isub().ci(7).astore();
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let deps = analyze(&p);
        assert_eq!(deps.len(), 1, "got {deps:?}");
        assert!(matches!(deps[0].kind, DepKind::Array { .. }));
    }

    #[test]
    fn field_recurrence_is_proven() {
        let mut b = ProgramBuilder::new();
        let cls = b.class(&[ElemKind::Int]);
        let main = b.function("main", 0, false, |f| {
            let o = f.local();
            let i = f.local();
            f.newobject(cls).st(o);
            f.for_in(i, 0.into(), 10.into(), |f| {
                f.ld(o).dup().getfield(0).ci(1).iadd().putfield(0);
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let deps = analyze(&p);
        assert_eq!(deps.len(), 1, "got {deps:?}");
        assert!(matches!(deps[0].kind, DepKind::Field { .. }));
    }

    /// Two distinct arrays: a recurrence through one, independent
    /// stores through the other. Structurally the second array's store
    /// masks the first array's load (any two array bases may alias);
    /// points-to separates the allocation sites and recovers the
    /// proof.
    fn two_array_program() -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            let (a, c, i) = (f.local(), f.local(), f.local());
            f.ci(64).newarray(ElemKind::Int).st(a);
            f.ci(64).newarray(ElemKind::Int).st(c);
            f.for_in(i, 1.into(), 64.into(), |f| {
                // c[i] = i (independent, but masks a[...] loads
                // without points-to: the walk sees an unrelated
                // ArrayStore whose base might alias `a`)
                f.ld(c).ld(i).ld(i).astore();
                // a[i] = a[i-1] + 1 (the recurrence)
                f.ld(a).ld(i);
                f.ld(a).ld(i).ci(1).isub().aload();
                f.ci(1).iadd();
                f.astore();
            });
            f.ret_void();
        });
        b.finish(main).unwrap()
    }

    #[test]
    fn pointsto_unmasks_the_distinct_array_store() {
        let p = two_array_program();
        assert!(
            analyze(&p).is_empty(),
            "without points-to the foreign store masks the recurrence"
        );
        let deps = analyze_with_pt(&p);
        assert_eq!(deps.len(), 1, "got {deps:?}");
        assert!(matches!(deps[0].kind, DepKind::Array { .. }));
    }

    #[test]
    fn pointsto_strictly_sharpens_pair_classification() {
        let p = two_array_program();
        let base = classify(&p, false);
        let sharp = classify(&p, true);
        assert_eq!(base.len(), sharp.len(), "same pair universe");
        let count =
            |pairs: &[AccessPair], v: PairVerdict| pairs.iter().filter(|p| p.verdict == v).count();
        let (db, ds) = (
            count(&base, PairVerdict::Disjoint),
            count(&sharp, PairVerdict::Disjoint),
        );
        assert!(ds > db, "sharpened {ds} must exceed baseline {db}");
        assert!(sharp.iter().any(|p| p.via_pointsto));
        // monotone: nothing disjoint in the baseline may regress
        for (b, s) in base.iter().zip(&sharp) {
            if b.verdict == PairVerdict::Disjoint {
                assert_eq!(s.verdict, PairVerdict::Disjoint);
            }
        }
    }

    #[test]
    fn pointsto_shrinks_opaque_call_summaries() {
        // helper stores only into its own private array; main's array
        // recurrence must survive the call with points-to facts.
        let mut b = ProgramBuilder::new();
        let helper = b.declare("helper", 1, true);
        b.define(helper, |f| {
            let x = f.param(0);
            let t = f.local();
            f.ci(4).newarray(ElemKind::Int).st(t);
            f.ld(t).ci(0).ld(x).astore();
            f.ld(t).ci(0).aload().ret();
        });
        let main = b.function("main", 0, false, |f| {
            let (a, i) = (f.local(), f.local());
            f.ci(64).newarray(ElemKind::Int).st(a);
            f.for_in(i, 1.into(), 64.into(), |f| {
                f.ld(i).call(helper).drop_top();
                // a[i] = a[i-1] + 1
                f.ld(a).ld(i);
                f.ld(a).ld(i).ci(1).isub().aload();
                f.ci(1).iadd();
                f.astore();
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let f = &p.functions[p.entry.0 as usize];
        let cfg = Cfg::build(f);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::build(&cfg, &dom);
        assert_eq!(forest.len(), 1);
        let without = analyze_loop(&p, f, &cfg, &dom, &forest.loops[0], None);
        assert!(without.is_empty(), "opaque call masks structurally");
        let pt = PointsTo::analyze(&p);
        let with = analyze_loop(&p, f, &cfg, &dom, &forest.loops[0], Some(&pt.view(p.entry)));
        assert_eq!(with.len(), 1, "got {with:?}");
        assert!(matches!(with[0].kind, DepKind::Array { .. }));
    }

    fn classify_evo(p: &Program, with_pt: bool) -> Vec<AccessPair> {
        let pt = PointsTo::analyze(p);
        let f = &p.functions[p.entry.0 as usize];
        let cfg = Cfg::build(f);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::build(&cfg, &dom);
        assert_eq!(forest.len(), 1);
        let view = pt.view(p.entry);
        let evo = crate::scev::analyze_loop(p, f, &cfg, &forest.loops[0]);
        classify_loop_pairs_evo(
            p,
            f,
            &cfg,
            &dom,
            &forest.loops[0],
            with_pt.then_some(&view),
            &evo,
        )
    }

    /// `a[i] = a[i+1]` — points-to leaves the pair may-alias, but the
    /// distance vector pins the collision at exactly one iteration
    /// apart.
    fn stencil_program(load_off: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            let a = f.local();
            let i = f.local();
            f.ci(64).newarray(ElemKind::Int).st(a);
            f.for_in(i, 0.into(), 62.into(), |f| {
                f.ld(a).ld(i);
                f.ld(a).ld(i).ci(load_off).iadd().aload();
                f.astore();
            });
            f.ret_void();
        });
        b.finish(main).unwrap()
    }

    #[test]
    fn scev_distance_vector_sharpens_stencil() {
        let p = stencil_program(1);
        let base = classify(&p, true);
        let sharp = classify_evo(&p, true);
        assert_eq!(base.len(), sharp.len(), "same pair universe");
        let stencil_base = base
            .iter()
            .find(|pr| pr.verdict == PairVerdict::MayAlias)
            .expect("prescreen leaves the a[i+1]/a[i] pair unknown");
        let stencil_sharp = sharp
            .iter()
            .find(|pr| pr.load_at == stencil_base.load_at && pr.store_at == stencil_base.store_at)
            .unwrap();
        assert_eq!(stencil_sharp.verdict, PairVerdict::DistanceAtLeast(1));
        assert!(stencil_sharp.via_scev);
    }

    #[test]
    fn scev_sharpening_is_monotone() {
        let p = stencil_program(1);
        let base = classify(&p, true);
        let sharp = classify_evo(&p, true);
        for (b, s) in base.iter().zip(&sharp) {
            match b.verdict {
                // proofs may only be added, never lost
                PairVerdict::Disjoint => assert_eq!(s.verdict, PairVerdict::Disjoint),
                PairVerdict::GuaranteedRaw => assert_eq!(s.verdict, PairVerdict::GuaranteedRaw),
                PairVerdict::MayAlias => assert!(
                    matches!(
                        s.verdict,
                        PairVerdict::MayAlias
                            | PairVerdict::Disjoint
                            | PairVerdict::DistanceAtLeast(_)
                    ),
                    "may-alias can only be refined, got {:?}",
                    s.verdict
                ),
                PairVerdict::DistanceAtLeast(_) => unreachable!("baseline never emits distances"),
            }
        }
    }

    #[test]
    fn scev_non_integral_offset_is_disjoint() {
        // a[2i] = a[2i+1] + ...: odd vs even elements never meet.
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            let a = f.local();
            let i = f.local();
            f.ci(64).newarray(ElemKind::Int).st(a);
            f.for_in(i, 0.into(), 31.into(), |f| {
                f.ld(a).ld(i).ci(2).imul();
                f.ld(a).ld(i).ci(2).imul().ci(1).iadd().aload();
                f.astore();
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let base = classify(&p, true);
        let sharp = classify_evo(&p, true);
        let was_unknown = base
            .iter()
            .find(|pr| pr.verdict == PairVerdict::MayAlias)
            .expect("prescreen cannot separate odd/even strides");
        let now = sharp
            .iter()
            .find(|pr| pr.load_at == was_unknown.load_at && pr.store_at == was_unknown.store_at)
            .unwrap();
        assert_eq!(now.verdict, PairVerdict::Disjoint);
        assert!(now.via_scev && !now.via_pointsto);
    }

    #[test]
    fn scev_same_iteration_collision_stays_may_alias() {
        // load a[i] / store a[i]... via distinct shapes the prescreen
        // cannot prove: offset delta 0 must NOT claim a distance.
        let p = stencil_program(0);
        let sharp = classify_evo(&p, true);
        assert!(
            sharp
                .iter()
                .all(|pr| !matches!(pr.verdict, PairVerdict::DistanceAtLeast(_))),
            "q == 0 admits a same-iteration collision: {sharp:?}"
        );
    }
}
