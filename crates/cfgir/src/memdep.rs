//! Static memory-dependence pre-screen for candidate STLs.
//!
//! The TEST approach (paper §3) is optimistic: the compiler proposes
//! every natural loop and lets the hardware tracer measure actual
//! memory dependences. That wastes tracer time on loops whose serial
//! nature is *statically obvious* — a running sum through a static, a
//! linked accumulator field, or an array recurrence like
//! `a[i] = a[i-1] + ...`. This module proves a small class of
//! **guaranteed cross-iteration RAW dependences** over the symbolic
//! form `base + inductor*scale + offset` of each address; loops with a
//! proven dependence are demoted before annotation so the tracing
//! pipeline never spends a profiling run on them.
//!
//! The screen only ever *demotes* with proof in hand; anything it
//! cannot model (calls, aliased bases, non-affine indices) stays a
//! candidate, preserving the paper's optimism.

use crate::cfg::{BlockId, Cfg};
use crate::dom::Dominators;
use crate::loops::NaturalLoop;
use tvm::isa::{GlobalId, Instr, Local};
use tvm::program::{Function, Program};
use tvm::verify::stack_effect;

/// Symbolic value of one operand-stack slot, relative to a loop
/// iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sym {
    /// Not representable in this domain.
    Unknown,
    /// A compile-time integer constant.
    Const(i64),
    /// The value of a local with no definition inside the loop.
    Invariant(Local),
    /// `inductor * scale + offset`, the affine form of array indices.
    Affine { ind: Local, scale: i64, offset: i64 },
}

impl Sym {
    fn add(self, other: Sym) -> Sym {
        match (self, other) {
            (Sym::Const(a), Sym::Const(b)) => Sym::Const(a.wrapping_add(b)),
            (Sym::Affine { ind, scale, offset }, Sym::Const(c))
            | (Sym::Const(c), Sym::Affine { ind, scale, offset }) => Sym::Affine {
                ind,
                scale,
                offset: offset.wrapping_add(c),
            },
            _ => Sym::Unknown,
        }
    }

    fn sub(self, other: Sym) -> Sym {
        match (self, other) {
            (Sym::Const(a), Sym::Const(b)) => Sym::Const(a.wrapping_sub(b)),
            (Sym::Affine { ind, scale, offset }, Sym::Const(c)) => Sym::Affine {
                ind,
                scale,
                offset: offset.wrapping_sub(c),
            },
            _ => Sym::Unknown,
        }
    }

    fn mul(self, other: Sym) -> Sym {
        match (self, other) {
            (Sym::Const(a), Sym::Const(b)) => Sym::Const(a.wrapping_mul(b)),
            (Sym::Affine { ind, scale, offset }, Sym::Const(c))
            | (Sym::Const(c), Sym::Affine { ind, scale, offset }) => Sym::Affine {
                ind,
                scale: scale.wrapping_mul(c),
                offset: offset.wrapping_mul(c),
            },
            _ => Sym::Unknown,
        }
    }
}

/// What the dependent accesses go through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepKind {
    /// Load and store of the same static variable every iteration.
    Static(GlobalId),
    /// Load and store of the same field of a loop-invariant object.
    Field {
        /// Local holding the object reference.
        base: Local,
        /// Field slot index.
        field: u16,
    },
    /// `a[i*s + o1]` read after `a[i*s + o2]` written `distance`
    /// iterations earlier.
    Array {
        /// Local holding the array reference.
        base: Local,
    },
}

/// A proven cross-iteration read-after-write dependence: every
/// iteration's load observes a value stored by an earlier iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuaranteedDep {
    /// The memory channel the dependence flows through.
    pub kind: DepKind,
    /// Instruction index of the dependent load.
    pub load_at: u32,
    /// Instruction index of the store feeding it.
    pub store_at: u32,
    /// Dependence distance in iterations (1 = loop-carried from the
    /// immediately preceding iteration).
    pub distance: u32,
}

impl GuaranteedDep {
    /// Human-readable reason used in diagnostics and lint output.
    pub fn reason(&self) -> String {
        match &self.kind {
            DepKind::Static(g) => format!(
                "static g{} is read then rewritten every iteration (distance {})",
                g.0, self.distance
            ),
            DepKind::Field { base, field } => format!(
                "field #{} of the object in local {} is read then rewritten \
                 every iteration (distance {})",
                field, base.0, self.distance
            ),
            DepKind::Array { base } => format!(
                "array in local {} has a guaranteed recurrence at distance {}",
                base.0, self.distance
            ),
        }
    }
}

/// One memory access observed with symbolic operands.
#[derive(Debug, Clone)]
enum Access {
    StaticLoad(GlobalId),
    StaticStore(GlobalId),
    FieldLoad {
        base: Sym,
        field: u16,
    },
    FieldStore {
        base: Sym,
        field: u16,
    },
    ArrayLoad {
        base: Sym,
        index: Sym,
    },
    ArrayStore {
        base: Sym,
        index: Sym,
    },
    /// A call whose callee may (transitively) store to the flagged
    /// memory categories — an opaque potential store for masking.
    Opaque {
        statics: bool,
        fields: bool,
        arrays: bool,
    },
}

/// Which memory categories each function may (transitively, through
/// further calls) store to. Indexed by function id.
fn transitive_store_effects(program: &Program) -> Vec<[bool; 3]> {
    let n = program.functions.len();
    let mut effects = vec![[false; 3]; n];
    let mut calls: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (fi, f) in program.functions.iter().enumerate() {
        for instr in &f.code {
            match instr {
                Instr::PutStatic(_) => effects[fi][0] = true,
                Instr::PutField(_) => effects[fi][1] = true,
                Instr::AStore => effects[fi][2] = true,
                Instr::Call(callee) => calls[fi].push(callee.0 as usize),
                _ => {}
            }
        }
    }
    // propagate to fixpoint (call graphs here are tiny; recursion is
    // handled by iterating until nothing changes)
    loop {
        let mut changed = false;
        for (fi, callees) in calls.iter().enumerate() {
            for &callee in callees {
                let callee_effects = effects[callee];
                for (k, &on) in callee_effects.iter().enumerate() {
                    if on && !effects[fi][k] {
                        effects[fi][k] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return effects;
        }
    }
}

#[derive(Debug, Clone)]
struct AccessSite {
    block: BlockId,
    instr: u32,
    access: Access,
}

/// Finds locals acting as inductors of `lp` and their net step per
/// iteration: every in-loop definition must be an `IInc` whose block
/// dominates all latches (so it executes exactly once per iteration).
fn inductor_steps(
    f: &Function,
    cfg: &Cfg,
    dom: &Dominators,
    lp: &NaturalLoop,
) -> Vec<(Local, i64)> {
    let n_locals = usize::from(f.n_locals);
    let mut incs: Vec<Vec<(BlockId, i64)>> = vec![Vec::new(); n_locals];
    let mut disqualified = vec![false; n_locals];
    for &b in &lp.blocks {
        for i in cfg.instrs_of(b) {
            match &f.code[i as usize] {
                Instr::Store(l) => disqualified[usize::from(l.0)] = true,
                Instr::IInc(l, c) => incs[usize::from(l.0)].push((b, i64::from(*c))),
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    for (l, sites) in incs.iter().enumerate() {
        if disqualified[l] || sites.is_empty() {
            continue;
        }
        let every_iteration = sites
            .iter()
            .all(|&(b, _)| lp.latches.iter().all(|&latch| dom.dominates(b, latch)));
        if every_iteration {
            let step: i64 = sites.iter().map(|&(_, c)| c).sum();
            out.push((Local(l as u16), step));
        }
    }
    out
}

/// Locals never written inside `lp`.
fn invariant_locals(f: &Function, cfg: &Cfg, lp: &NaturalLoop) -> Vec<bool> {
    let mut invariant = vec![true; usize::from(f.n_locals)];
    for &b in &lp.blocks {
        for i in cfg.instrs_of(b) {
            if let Instr::Store(l) | Instr::IInc(l, _) = &f.code[i as usize] {
                invariant[usize::from(l.0)] = false;
            }
        }
    }
    invariant
}

/// Symbolically executes every block of the loop (entry stack unknown)
/// and records each memory access with its operands' symbolic values.
fn collect_accesses(
    program: &Program,
    f: &Function,
    cfg: &Cfg,
    lp: &NaturalLoop,
    inductors: &[(Local, i64)],
    invariant: &[bool],
    effects: &[[bool; 3]],
) -> Vec<AccessSite> {
    let is_inductor = |l: Local| inductors.iter().any(|&(i, _)| i == l);
    let mut sites = Vec::new();
    for &b in &lp.blocks {
        let mut stack: Vec<Sym> = Vec::new();
        let pop = |stack: &mut Vec<Sym>| stack.pop().unwrap_or(Sym::Unknown);
        for i in cfg.instrs_of(b) {
            let instr = &f.code[i as usize];
            match instr {
                Instr::IConst(c) => stack.push(Sym::Const(*c)),
                Instr::Load(l) => {
                    let v = if is_inductor(*l) {
                        Sym::Affine {
                            ind: *l,
                            scale: 1,
                            offset: 0,
                        }
                    } else if invariant.get(usize::from(l.0)).copied().unwrap_or(false) {
                        Sym::Invariant(*l)
                    } else {
                        Sym::Unknown
                    };
                    stack.push(v);
                }
                Instr::Store(_) => {
                    pop(&mut stack);
                }
                Instr::IAdd => {
                    let (y, x) = (pop(&mut stack), pop(&mut stack));
                    stack.push(x.add(y));
                }
                Instr::ISub => {
                    let (y, x) = (pop(&mut stack), pop(&mut stack));
                    stack.push(x.sub(y));
                }
                Instr::IMul => {
                    let (y, x) = (pop(&mut stack), pop(&mut stack));
                    stack.push(x.mul(y));
                }
                Instr::Dup => {
                    let t = stack.last().copied().unwrap_or(Sym::Unknown);
                    stack.push(t);
                }
                Instr::Swap => {
                    let (y, x) = (pop(&mut stack), pop(&mut stack));
                    stack.push(y);
                    stack.push(x);
                }
                Instr::GetStatic(g) => {
                    sites.push(AccessSite {
                        block: b,
                        instr: i,
                        access: Access::StaticLoad(*g),
                    });
                    stack.push(Sym::Unknown);
                }
                Instr::PutStatic(g) => {
                    pop(&mut stack);
                    sites.push(AccessSite {
                        block: b,
                        instr: i,
                        access: Access::StaticStore(*g),
                    });
                }
                Instr::GetField(fi) => {
                    let base = pop(&mut stack);
                    sites.push(AccessSite {
                        block: b,
                        instr: i,
                        access: Access::FieldLoad { base, field: *fi },
                    });
                    stack.push(Sym::Unknown);
                }
                Instr::PutField(fi) => {
                    pop(&mut stack); // value
                    let base = pop(&mut stack);
                    sites.push(AccessSite {
                        block: b,
                        instr: i,
                        access: Access::FieldStore { base, field: *fi },
                    });
                }
                Instr::ALoad => {
                    let index = pop(&mut stack);
                    let base = pop(&mut stack);
                    sites.push(AccessSite {
                        block: b,
                        instr: i,
                        access: Access::ArrayLoad { base, index },
                    });
                    stack.push(Sym::Unknown);
                }
                Instr::AStore => {
                    pop(&mut stack); // value
                    let index = pop(&mut stack);
                    let base = pop(&mut stack);
                    sites.push(AccessSite {
                        block: b,
                        instr: i,
                        access: Access::ArrayStore { base, index },
                    });
                }
                Instr::Call(callee) => {
                    for _ in 0..program.functions[callee.0 as usize].n_params {
                        pop(&mut stack);
                    }
                    if program.functions[callee.0 as usize].returns {
                        stack.push(Sym::Unknown);
                    }
                    let [statics, fields, arrays] =
                        effects.get(callee.0 as usize).copied().unwrap_or([true; 3]);
                    if statics || fields || arrays {
                        sites.push(AccessSite {
                            block: b,
                            instr: i,
                            access: Access::Opaque {
                                statics,
                                fields,
                                arrays,
                            },
                        });
                    }
                }
                other => {
                    // generic fallback: apply the instruction's stack
                    // arity, producing unknowns
                    if let Ok((pops, pushes)) = stack_effect(program, other) {
                        for _ in 0..pops {
                            pop(&mut stack);
                        }
                        for _ in 0..pushes {
                            stack.push(Sym::Unknown);
                        }
                    } else {
                        stack.clear();
                    }
                }
            }
        }
    }
    sites
}

/// True when `load` is guaranteed to execute before `store` within a
/// single iteration (same block with smaller index, or in a block that
/// strictly dominates the store's block).
fn load_precedes_store(dom: &Dominators, load: &AccessSite, store: &AccessSite) -> bool {
    if load.block == store.block {
        load.instr < store.instr
    } else {
        dom.dominates(load.block, store.block)
    }
}

/// True when `site` executes on every iteration (its block dominates
/// every latch of the loop).
fn every_iteration(dom: &Dominators, lp: &NaturalLoop, site: &AccessSite) -> bool {
    lp.latches
        .iter()
        .all(|&latch| dom.dominates(site.block, latch))
}

/// True when some store in the loop may write `load`'s address earlier
/// in the *same* iteration. Such a store satisfies the load with
/// same-iteration data, so "the load observes an earlier iteration's
/// value" is no longer guaranteed and no dependence may be claimed
/// through it.
///
/// A store is harmless only if it provably runs after the load, or if
/// it provably writes a different address within the iteration (same
/// invariant array base, same affine shape, different offset). Statics
/// alias exactly by [`GlobalId`]; object fields can only collide on the
/// same slot index (distinct objects occupy disjoint storage); arrays
/// may alias through any base local, so everything not provably
/// disjoint masks. A call whose callee may transitively store to the
/// load's memory category is an opaque store and masks the same way.
fn load_may_be_masked(dom: &Dominators, sites: &[AccessSite], load: &AccessSite) -> bool {
    sites.iter().any(|s2| match (&load.access, &s2.access) {
        (Access::StaticLoad(gl), Access::StaticStore(gs)) => {
            gl == gs && !load_precedes_store(dom, load, s2)
        }
        (Access::StaticLoad(_), Access::Opaque { statics: true, .. })
        | (Access::FieldLoad { .. }, Access::Opaque { fields: true, .. })
        | (Access::ArrayLoad { .. }, Access::Opaque { arrays: true, .. }) => {
            !load_precedes_store(dom, load, s2)
        }
        (Access::FieldLoad { field: fl, .. }, Access::FieldStore { field: fs, .. }) => {
            fl == fs && !load_precedes_store(dom, load, s2)
        }
        (
            Access::ArrayLoad {
                base: bl,
                index: il,
            },
            Access::ArrayStore {
                base: bs,
                index: is_,
            },
        ) => {
            if load_precedes_store(dom, load, s2) {
                return false;
            }
            let provably_disjoint = match (bl, il, bs, is_) {
                (
                    Sym::Invariant(bl),
                    Sym::Affine {
                        ind: il,
                        scale: sl,
                        offset: ol,
                    },
                    Sym::Invariant(bs),
                    Sym::Affine {
                        ind: is_,
                        scale: ss,
                        offset: os,
                    },
                ) => bl == bs && il == is_ && sl == ss && ol != os,
                _ => false,
            };
            !provably_disjoint
        }
        _ => false,
    })
}

/// Scans one loop for guaranteed cross-iteration RAW dependences.
///
/// Three shapes are proven (anything else is left alone):
///
/// 1. **static recurrence** — `GetStatic g` before `PutStatic g`, both
///    on every iteration: iteration *n* reads what *n−1* wrote;
/// 2. **field recurrence** — the same through a field of an object
///    whose reference sits in a loop-invariant local;
/// 3. **array recurrence** — `a[i*s + o_l]` read and `a[i*s + o_s]`
///    written every iteration with the same invariant base and the
///    same inductor: with step `c` per iteration, the store of
///    iteration *n* is re-read `(o_s − o_l) / (s·c)` iterations later;
///    a positive integral distance proves the RAW. Ordering within the
///    iteration is irrelevant because the two addresses differ
///    whenever the distance is nonzero.
///
/// In every shape, no *other* store may be able to write the load's
/// address earlier in the same iteration ([`load_may_be_masked`]): such
/// a store would satisfy the load with same-iteration data and void the
/// cross-iteration guarantee (found by differential fuzzing: the body
/// `g = -3; g = g;` pairs the second statement's load/store as a
/// recurrence, but the load can only ever observe the same iteration's
/// `-3`).
pub fn analyze_loop(
    program: &Program,
    f: &Function,
    cfg: &Cfg,
    dom: &Dominators,
    lp: &NaturalLoop,
) -> Vec<GuaranteedDep> {
    let inductors = inductor_steps(f, cfg, dom, lp);
    let invariant = invariant_locals(f, cfg, lp);
    let effects = transitive_store_effects(program);
    let sites = collect_accesses(program, f, cfg, lp, &inductors, &invariant, &effects);
    let step_of = |l: Local| {
        inductors
            .iter()
            .find(|&&(i, _)| i == l)
            .map(|&(_, c)| c)
            .unwrap_or(0)
    };

    let mut deps = Vec::new();
    for load in &sites {
        if !every_iteration(dom, lp, load) {
            continue;
        }
        if load_may_be_masked(dom, &sites, load) {
            continue;
        }
        for store in &sites {
            if !every_iteration(dom, lp, store) {
                continue;
            }
            let dep = match (&load.access, &store.access) {
                (Access::StaticLoad(gl), Access::StaticStore(gs)) if gl == gs => {
                    load_precedes_store(dom, load, store).then_some(GuaranteedDep {
                        kind: DepKind::Static(*gl),
                        load_at: load.instr,
                        store_at: store.instr,
                        distance: 1,
                    })
                }
                (
                    Access::FieldLoad {
                        base: Sym::Invariant(bl),
                        field: fl,
                    },
                    Access::FieldStore {
                        base: Sym::Invariant(bs),
                        field: fs,
                    },
                ) if bl == bs && fl == fs => {
                    load_precedes_store(dom, load, store).then_some(GuaranteedDep {
                        kind: DepKind::Field {
                            base: *bl,
                            field: *fl,
                        },
                        load_at: load.instr,
                        store_at: store.instr,
                        distance: 1,
                    })
                }
                (
                    Access::ArrayLoad {
                        base: Sym::Invariant(bl),
                        index:
                            Sym::Affine {
                                ind: il,
                                scale: sl,
                                offset: ol,
                            },
                    },
                    Access::ArrayStore {
                        base: Sym::Invariant(bs),
                        index:
                            Sym::Affine {
                                ind: is_,
                                scale: ss,
                                offset: os,
                            },
                    },
                ) if bl == bs && il == is_ && sl == ss => {
                    let per_iter = sl.checked_mul(step_of(*il)).unwrap_or(0);
                    if per_iter != 0 && (os - ol) % per_iter == 0 {
                        let d = (os - ol) / per_iter;
                        (d >= 1).then_some(GuaranteedDep {
                            kind: DepKind::Array { base: *bl },
                            load_at: load.instr,
                            store_at: store.instr,
                            distance: d as u32,
                        })
                    } else {
                        None
                    }
                }
                _ => None,
            };
            if let Some(d) = dep {
                deps.push(d);
            }
        }
    }
    // one proof per channel is enough; keep the first per (kind)
    deps.dedup_by(|a, b| a.kind == b.kind);
    deps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::LoopForest;
    use tvm::ElemKind;
    use tvm::ProgramBuilder;

    fn analyze(p: &Program) -> Vec<GuaranteedDep> {
        let f = &p.functions[0];
        let cfg = Cfg::build(f);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::build(&cfg, &dom);
        assert_eq!(forest.len(), 1, "test programs must have one loop");
        analyze_loop(p, f, &cfg, &dom, &forest.loops[0])
    }

    #[test]
    fn static_recurrence_is_proven() {
        // g = g * 5 + 1 every iteration
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, false, |f| {
            let i = f.local();
            f.for_in(i, 0.into(), 10.into(), |f| {
                f.getstatic(g).ci(5).imul().ci(1).iadd().putstatic(g);
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let deps = analyze(&p);
        assert_eq!(deps.len(), 1);
        assert!(matches!(deps[0].kind, DepKind::Static(_)));
        assert_eq!(deps[0].distance, 1);
    }

    #[test]
    fn array_recurrence_is_proven() {
        // a[i] = a[i-1] + 1
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            let a = f.local();
            let i = f.local();
            f.ci(64).newarray(ElemKind::Int).st(a);
            f.for_in(i, 1.into(), 64.into(), |f| {
                f.ld(a).ld(i); // store address a[i]
                f.ld(a).ld(i).ci(1).isub().aload(); // a[i-1]
                f.ci(1).iadd();
                f.astore();
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let deps = analyze(&p);
        assert_eq!(deps.len(), 1, "got {deps:?}");
        assert!(matches!(deps[0].kind, DepKind::Array { .. }));
        assert_eq!(deps[0].distance, 1);
    }

    #[test]
    fn independent_array_loop_is_clean() {
        // a[i] = i * 2: no cross-iteration flow
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            let a = f.local();
            let i = f.local();
            f.ci(64).newarray(ElemKind::Int).st(a);
            f.for_in(i, 0.into(), 64.into(), |f| {
                f.ld(a).ld(i).ld(i).ci(2).imul().astore();
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        assert!(analyze(&p).is_empty());
    }

    #[test]
    fn forward_distance_is_not_a_raw() {
        // a[i] = a[i+1]: reads values the loop has not yet written
        // (an anti-dependence, which speculation handles fine)
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            let a = f.local();
            let i = f.local();
            f.ci(64).newarray(ElemKind::Int).st(a);
            f.for_in(i, 0.into(), 63.into(), |f| {
                f.ld(a).ld(i);
                f.ld(a).ld(i).ci(1).iadd().aload();
                f.astore();
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        assert!(analyze(&p).is_empty());
    }

    #[test]
    fn guarded_store_is_not_guaranteed() {
        // the putstatic only happens on some iterations: no proof
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, false, |f| {
            let i = f.local();
            f.for_in(i, 0.into(), 10.into(), |f| {
                f.if_icmp(
                    tvm::isa::Cond::Gt,
                    |f| {
                        f.ld(i).ci(5);
                    },
                    |f| {
                        f.getstatic(g).ci(1).iadd().putstatic(g);
                    },
                );
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        assert!(analyze(&p).is_empty());
    }

    #[test]
    fn masked_static_recurrence_is_not_claimed() {
        // g = -3; g = g;  — the read of g is always satisfied by the
        // same iteration's unconditional store of -3, so no
        // cross-iteration dependence may be claimed (fuzzgen seed 398)
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, false, |f| {
            let i = f.local();
            f.for_in(i, 0.into(), 10.into(), |f| {
                f.ci(-3).putstatic(g);
                f.getstatic(g).putstatic(g);
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        assert!(analyze(&p).is_empty(), "got {:?}", analyze(&p));
    }

    #[test]
    fn masked_array_recurrence_is_not_claimed() {
        // a[i-1] = 7; x = a[i-1]; a[i] = x — the load's address was
        // just written this iteration, so the (load, a[i]) pair proves
        // nothing
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            let a = f.local();
            let i = f.local();
            f.ci(64).newarray(ElemKind::Int).st(a);
            f.for_in(i, 1.into(), 64.into(), |f| {
                f.ld(a).ld(i).ci(1).isub().ci(7).astore();
                f.ld(a).ld(i);
                f.ld(a).ld(i).ci(1).isub().aload();
                f.astore();
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        assert!(analyze(&p).is_empty(), "got {:?}", analyze(&p));
    }

    #[test]
    fn callee_store_masks_through_the_call() {
        // helper writes g; main's loop calls helper then runs g = g:
        // the load is satisfied by the callee's same-iteration store,
        // so no recurrence may be claimed (fuzzgen seed 1546)
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let helper = b.declare("helper", 1, true);
        b.define(helper, |f| {
            let x = f.param(0);
            f.ld(x).putstatic(g);
            f.ld(x).ret();
        });
        let main = b.function("main", 0, false, |f| {
            let i = f.local();
            f.for_in(i, 0.into(), 10.into(), |f| {
                f.ld(i).call(helper).drop_top();
                f.getstatic(g).putstatic(g);
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let f = &p.functions[main.0 as usize];
        let cfg = Cfg::build(f);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::build(&cfg, &dom);
        assert_eq!(forest.len(), 1);
        let deps = analyze_loop(&p, f, &cfg, &dom, &forest.loops[0]);
        assert!(deps.is_empty(), "got {deps:?}");
    }

    #[test]
    fn pure_callee_does_not_mask() {
        // the callee only computes; the static recurrence proof stands
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let helper = b.declare("helper", 1, true);
        b.define(helper, |f| {
            let x = f.param(0);
            f.ld(x).ci(3).imul().ret();
        });
        let main = b.function("main", 0, false, |f| {
            let i = f.local();
            f.for_in(i, 0.into(), 10.into(), |f| {
                f.ld(i).call(helper).drop_top();
                f.getstatic(g).ci(1).iadd().putstatic(g);
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let f = &p.functions[main.0 as usize];
        let cfg = Cfg::build(f);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::build(&cfg, &dom);
        assert_eq!(forest.len(), 1);
        let deps = analyze_loop(&p, f, &cfg, &dom, &forest.loops[0]);
        assert_eq!(deps.len(), 1, "got {deps:?}");
        assert!(matches!(deps[0].kind, DepKind::Static(_)));
    }

    #[test]
    fn store_after_the_load_does_not_mask() {
        // x = a[i-1]; a[i] = x; a[i-1] = 7 — the extra store runs
        // after the load, so the recurrence proof stands
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            let a = f.local();
            let i = f.local();
            f.ci(64).newarray(ElemKind::Int).st(a);
            f.for_in(i, 1.into(), 64.into(), |f| {
                f.ld(a).ld(i);
                f.ld(a).ld(i).ci(1).isub().aload();
                f.astore();
                f.ld(a).ld(i).ci(1).isub().ci(7).astore();
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let deps = analyze(&p);
        assert_eq!(deps.len(), 1, "got {deps:?}");
        assert!(matches!(deps[0].kind, DepKind::Array { .. }));
    }

    #[test]
    fn field_recurrence_is_proven() {
        let mut b = ProgramBuilder::new();
        let cls = b.class(&[ElemKind::Int]);
        let main = b.function("main", 0, false, |f| {
            let o = f.local();
            let i = f.local();
            f.newobject(cls).st(o);
            f.for_in(i, 0.into(), 10.into(), |f| {
                f.ld(o).dup().getfield(0).ci(1).iadd().putfield(0);
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let deps = analyze(&p);
        assert_eq!(deps.len(), 1, "got {deps:?}");
        assert!(matches!(deps[0].kind, DepKind::Field { .. }));
    }
}
