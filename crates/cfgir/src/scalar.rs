//! Scalar (local-variable) analysis of loops.
//!
//! The paper (§4.1) deliberately keeps compiler dependence analysis
//! *simple*: only scalar locals are examined, and only three questions
//! are asked of each candidate loop:
//!
//! 1. Which locals are **inductors** (`i += c` once or more per
//!    iteration, no other definitions)? The speculative compiler
//!    replaces these with non-violating loop inductors, so they are
//!    ignored — both when disqualifying loops and when annotating.
//! 2. Which locals are **reductions** (`s = s op expr` accumulators)?
//!    These are transformed at loop shutdown (Table 2) and likewise
//!    must not hide parallelism.
//! 3. Does an **obvious serializing dependency** remain — a
//!    start-of-loop load of a non-inductor local that is stored at the
//!    end of every iteration (e.g. `node = node.next` list walks)?
//!    Such loops cannot speed up and are not candidates.
//!
//! Everything subtler is left to the TEST hardware to measure.

use crate::cfg::{BlockId, Cfg};
use crate::dataflow::{upward_exposed_in_loop, ReachingDefs};
use crate::dom::Dominators;
use crate::loops::LoopForest;
use std::collections::{BTreeSet, HashMap};
use tvm::isa::Instr;
use tvm::program::{Function, Local, Program};
use tvm::verify::stack_effect;

/// Classification of the locals accessed by one loop.
#[derive(Debug, Clone, Default)]
pub struct LocalClasses {
    /// Locals read anywhere in the loop.
    pub loaded: BTreeSet<Local>,
    /// Locals written anywhere in the loop.
    pub stored: BTreeSet<Local>,
    /// Recognized loop inductors.
    pub inductors: BTreeSet<Local>,
    /// Recognized reduction accumulators.
    pub reductions: BTreeSet<Local>,
    /// Locals whose every loop use is preceded by a same-block
    /// definition (block-local temporaries; never annotated).
    pub block_local: BTreeSet<Local>,
    /// Locals overwritten by a dominating store before any use in
    /// every iteration (iteration-private; the speculative compiler
    /// privatizes them, so they carry no loop arc and need no
    /// annotation for this loop).
    pub iteration_private: BTreeSet<Local>,
    /// Locals with an obvious fully serializing loop-carried
    /// dependency.
    pub serializing: BTreeSet<Local>,
}

impl LocalClasses {
    /// The locals the annotation pass must track with `lwl`/`swl`:
    /// both read and written in the loop (an intra-loop dependency is
    /// only possible then — loads of loop invariants hit pre-entry
    /// stores, which the bank's entry timestamp filters out), and not
    /// inductors, reductions or block-local temporaries.
    pub fn tracked(&self) -> BTreeSet<Local> {
        self.loaded
            .intersection(&self.stored)
            .copied()
            .filter(|v| {
                !self.inductors.contains(v)
                    && !self.reductions.contains(v)
                    && !self.block_local.contains(v)
                    && !self.iteration_private.contains(v)
            })
            .collect()
    }

    /// True when the loop should be rejected as a candidate STL.
    pub fn has_serializing_dependency(&self) -> bool {
        !self.serializing.is_empty()
    }
}

/// Ops that terminate a reduction pattern `Load v; …; op; Store v`.
fn is_accumulating_op(i: &Instr) -> bool {
    matches!(
        i,
        Instr::IAdd
            | Instr::ISub
            | Instr::IMul
            | Instr::IMin
            | Instr::IMax
            | Instr::IAnd
            | Instr::IOr
            | Instr::IXor
            | Instr::FAdd
            | Instr::FSub
            | Instr::FMul
            | Instr::FMin
            | Instr::FMax
    )
}

/// Classifies the locals of loop `forest.loops[loop_idx]` in function
/// `f`.
///
/// The dominator tree and the loop forest are needed to decide which
/// `IInc` sites are *eliminable* inductors: only increments that
/// structurally execute a fixed number of times per iteration (their
/// block dominates every latch and lies in no nested loop) can be
/// replaced by non-violating loop inductors. A counter bumped
/// conditionally — or a data-dependent number of times inside an inner
/// loop, like Huffman's bit cursor in the paper's Figure 3 — is a real
/// loop-carried dependency and must be tracked.
pub fn classify(
    program: &Program,
    f: &Function,
    cfg: &Cfg,
    dom: &Dominators,
    forest: &LoopForest,
    loop_idx: usize,
) -> LocalClasses {
    let l = &forest.loops[loop_idx];
    let mut c = LocalClasses::default();

    // gather accesses
    let mut def_sites: Vec<(Local, BlockId, u32)> = Vec::new(); // Store only
    let mut inc_sites: Vec<(Local, BlockId, u32)> = Vec::new();
    let mut load_sites: Vec<(Local, BlockId, u32)> = Vec::new();
    for &b in &l.blocks {
        for idx in cfg.instrs_of(b) {
            match f.code[idx as usize] {
                Instr::Load(v) => {
                    c.loaded.insert(v);
                    load_sites.push((v, b, idx));
                }
                Instr::Store(v) => {
                    c.stored.insert(v);
                    def_sites.push((v, b, idx));
                }
                Instr::IInc(v, _) => {
                    c.stored.insert(v);
                    inc_sites.push((v, b, idx));
                }
                _ => {}
            }
        }
    }

    // inductors: all definitions are IInc sites that execute a fixed
    // number of times per iteration — the block dominates every latch
    // of this loop and is not inside a nested loop
    let fixed_per_iteration = |b: BlockId| -> bool {
        let in_nested = forest.loops.iter().enumerate().any(|(mi, m)| {
            mi != loop_idx
                && m.blocks.len() < l.blocks.len()
                && l.blocks.contains(&m.header)
                && m.blocks.is_subset(&l.blocks)
                && m.blocks.contains(&b)
        });
        if in_nested {
            return false;
        }
        l.latches.iter().all(|&latch| dom.dominates(b, latch))
    };
    let inc_vars: BTreeSet<Local> = inc_sites.iter().map(|&(v, _, _)| v).collect();
    for &v in &inc_vars {
        let plain_store = def_sites.iter().any(|&(w, _, _)| w == v);
        let all_fixed = inc_sites
            .iter()
            .filter(|&&(w, _, _)| w == v)
            .all(|&(_, b, _)| fixed_per_iteration(b));
        if !plain_store && all_fixed {
            c.inductors.insert(v);
        }
    }

    // Per-block provenance dataflow: for each Store, which instruction
    // produced the stored value; for each accumulating op, which
    // instructions produced its operands. Blocks are straight-line so
    // this is exact (stack entries live at block entry are Unknown).
    let mut store_producer: HashMap<u32, Option<u32>> = HashMap::new();
    let mut accop_operands: HashMap<u32, [Option<u32>; 2]> = HashMap::new();
    for &b in &l.blocks {
        let mut stack: Vec<Option<u32>> = Vec::new();
        for idx in cfg.instrs_of(b) {
            let instr = &f.code[idx as usize];
            let (pops, pushes) = stack_effect(program, instr).unwrap_or((0, 0));
            let mut popped: Vec<Option<u32>> = Vec::with_capacity(pops as usize);
            for _ in 0..pops {
                popped.push(stack.pop().flatten());
            }
            // popped[0] is the topmost (second) operand
            if matches!(instr, Instr::Store(_)) {
                store_producer.insert(idx, popped.first().copied().flatten());
            }
            if is_accumulating_op(instr) {
                accop_operands.insert(
                    idx,
                    [
                        popped.get(1).copied().flatten(),
                        popped.first().copied().flatten(),
                    ],
                );
            }
            for _ in 0..pushes {
                stack.push(Some(idx));
            }
        }
    }

    // reductions: every Store(v) stores the result of an accumulating
    // op with `Load v` as one operand, and every load of v in the loop
    // is such a reduction load
    let stored_vars: BTreeSet<Local> = def_sites.iter().map(|&(v, _, _)| v).collect();
    'vars: for &v in &stored_vars {
        if c.inductors.contains(&v) || inc_sites.iter().any(|&(w, _, _)| w == v) {
            continue;
        }
        let mut reduction_loads: BTreeSet<u32> = BTreeSet::new();
        for &(w, _, k) in &def_sites {
            if w != v {
                continue;
            }
            let Some(Some(m)) = store_producer.get(&k) else {
                continue 'vars;
            };
            let Some(operands) = accop_operands.get(m) else {
                continue 'vars;
            };
            let load_operand = operands
                .iter()
                .flatten()
                .copied()
                .find(|&p| matches!(f.code[p as usize], Instr::Load(w2) if w2 == v));
            match load_operand {
                Some(p) => {
                    reduction_loads.insert(p);
                }
                None => continue 'vars,
            }
        }
        // all loop loads of v must be the reduction loads
        let all_loads: BTreeSet<u32> = load_sites
            .iter()
            .filter(|&&(w, _, _)| w == v)
            .map(|&(_, _, i)| i)
            .collect();
        if !all_loads.is_empty() && all_loads == reduction_loads {
            c.reductions.insert(v);
        }
    }

    // block-local temporaries: every in-loop load sees only defs from
    // earlier in the same block. Decided with reaching definitions so
    // the property holds along *all* paths, not just textual order.
    let reaching = ReachingDefs::compute(f, cfg);
    let candidates: BTreeSet<Local> = c.loaded.union(&c.stored).copied().collect();
    'outer: for &v in &candidates {
        if c.inductors.contains(&v) || c.reductions.contains(&v) {
            continue;
        }
        if !c.loaded.contains(&v) {
            // stored-only in the loop: treat as block-local temp (it can
            // never be the consumer of a loop-carried arc within the loop)
            c.block_local.insert(v);
            continue;
        }
        for &(w, b, idx) in &load_sites {
            if w != v {
                continue;
            }
            let defs = reaching.reaching_defs_of(cfg, b, idx, v);
            let all_same_block = !defs.is_empty()
                && defs
                    .iter()
                    .all(|d| d.site.is_some_and(|s| cfg.block_of(s) == Some(b)));
            if !all_same_block {
                continue 'outer; // a def from outside the block reaches
            }
        }
        c.block_local.insert(v);
    }

    // iteration-private locals: not upward-exposed within the loop —
    // every path from the header writes the local before reading it,
    // so no cross-iteration arc can exist and the speculative compiler
    // privatizes the variable. (Liveness restricted to the loop body
    // with back edges cut; strictly more precise than the former
    // single-dominating-store rule.)
    let exposed = upward_exposed_in_loop(f, cfg, l);
    for &v in &candidates {
        if c.inductors.contains(&v)
            || c.reductions.contains(&v)
            || c.block_local.contains(&v)
            || !c.loaded.contains(&v)
            || !c.stored.contains(&v)
        {
            continue;
        }
        if !exposed.contains(usize::from(v.0)) {
            c.iteration_private.insert(v);
        }
    }

    // obvious serializing dependency: loaded in the header before any
    // store to it there, and stored in every latch block
    let header = l.header;
    let header_start = cfg.blocks[header.0 as usize].start;
    for &v in &candidates {
        if c.inductors.contains(&v) || c.reductions.contains(&v) || c.block_local.contains(&v) {
            continue;
        }
        let first_load_in_header = load_sites
            .iter()
            .filter(|&&(w, b, _)| w == v && b == header)
            .map(|&(_, _, i)| i)
            .min();
        let Some(first_load) = first_load_in_header else {
            continue;
        };
        let stored_before_in_header = (header_start..first_load).any(|j| {
            matches!(f.code[j as usize],
                Instr::Store(w2) | Instr::IInc(w2, _) if w2 == v)
        });
        if stored_before_in_header {
            continue;
        }
        let stored_in_every_latch = l.latches.iter().all(|&latch| {
            def_sites
                .iter()
                .chain(inc_sites.iter())
                .any(|&(w, b, _)| w == v && b == latch)
        });
        if stored_in_every_latch && !l.latches.is_empty() {
            c.serializing.insert(v);
        }
    }

    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::dom::Dominators;
    use crate::loops::LoopForest;
    use tvm::isa::Cond;
    use tvm::ProgramBuilder;

    fn analyze(body: impl FnOnce(&mut tvm::FnBuilder)) -> (Vec<LocalClasses>, LoopForest) {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            body(f);
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let f = &p.functions[0];
        let cfg = Cfg::build(f);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::build(&cfg, &dom);
        let classes = (0..forest.len())
            .map(|li| classify(&p, f, &cfg, &dom, &forest, li))
            .collect();
        (classes, forest)
    }

    #[test]
    fn for_loop_inductor_is_recognized() {
        let (classes, _) = analyze(|f| {
            let (s, i) = (f.local(), f.local());
            f.ci(0).st(s);
            f.for_in(i, 0.into(), 10.into(), |f| {
                f.ld(s).ld(i).iadd().st(s);
            });
        });
        let c = &classes[0];
        assert!(c.inductors.contains(&Local(1))); // i
        assert!(c.reductions.contains(&Local(0))); // s
        assert!(c.tracked().is_empty());
        assert!(!c.has_serializing_dependency());
    }

    #[test]
    fn pointer_chase_is_serializing() {
        // while (x > 0) { x = x/2 } — header loads x, latch stores x
        let (classes, forest) = analyze(|f| {
            let x = f.local();
            f.ci(1000).st(x);
            f.while_icmp(
                Cond::Gt,
                |f| {
                    f.ld(x).ci(0);
                },
                |f| {
                    f.ld(x).ci(2).idiv().st(x);
                },
            );
        });
        assert_eq!(forest.len(), 1);
        assert!(classes[0].has_serializing_dependency());
        assert!(classes[0].serializing.contains(&Local(0)));
    }

    #[test]
    fn block_local_temporaries_are_excluded() {
        let (classes, _) = analyze(|f| {
            let (i, t, g) = (f.local(), f.local(), f.local());
            f.ci(5).st(g);
            f.for_in(i, 0.into(), 10.into(), |f| {
                // t defined then used within one block: block-local
                f.ld(i).ci(3).imul().st(t);
                f.ld(t).ld(g).iadd().st(g);
            });
        });
        let c = &classes[0];
        assert!(c.block_local.contains(&Local(1))); // t
        assert!(c.reductions.contains(&Local(2))); // g
        assert!(c.tracked().is_empty());
    }

    #[test]
    fn cross_iteration_local_is_tracked() {
        // prev used before being redefined -> genuinely loop-carried
        let (classes, _) = analyze(|f| {
            let (i, prev, a) = (f.local(), f.local(), f.local());
            f.ci(64).newarray(tvm::ElemKind::Int).st(a);
            f.ci(0).st(prev);
            f.for_in(i, 0.into(), 10.into(), |f| {
                f.arr_set(
                    a,
                    |f| {
                        f.ld(i);
                    },
                    |f| {
                        f.ld(prev);
                    },
                );
                f.arr_get(a, |f| {
                    f.ld(i);
                })
                .st(prev);
            });
        });
        let c = &classes[0];
        assert!(c.tracked().contains(&Local(1))); // prev
        assert!(!c.has_serializing_dependency()); // store not in header path
    }

    #[test]
    fn min_reduction_is_recognized() {
        let (classes, _) = analyze(|f| {
            let (i, m) = (f.local(), f.local());
            f.ci(i64::MAX).st(m);
            f.for_in(i, 0.into(), 10.into(), |f| {
                f.ld(m).ld(i).imin().st(m);
            });
        });
        assert!(classes[0].reductions.contains(&Local(1)));
    }

    #[test]
    fn non_reduction_store_is_tracked() {
        // x = i*2 each iteration, and x is read at loop top first:
        // loaded before stored -> tracked, and serializing (stored in
        // latch since single-block body)
        let (classes, _) = analyze(|f| {
            let (i, x, g) = (f.local(), f.local(), f.local());
            f.ci(0).st(x);
            f.for_in(i, 0.into(), 10.into(), |f| {
                f.ld(x).ci(1).iadd().st(g);
                f.ld(i).ci(2).imul().st(x);
            });
        });
        let c = &classes[0];
        assert!(c.tracked().contains(&Local(1))); // x
    }
}
