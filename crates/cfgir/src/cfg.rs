//! Basic-block control-flow graph construction.

use tvm::program::Function;

/// Index of a basic block within a [`Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// A basic block: a maximal straight-line instruction range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// First instruction index (inclusive).
    pub start: u32,
    /// One past the last instruction index (exclusive).
    pub end: u32,
    /// Successor blocks in CFG order (branch target first, then
    /// fallthrough).
    pub succs: Vec<BlockId>,
    /// Predecessor blocks.
    pub preds: Vec<BlockId>,
}

impl Block {
    /// Index of the block's terminator (its last instruction).
    pub fn terminator_idx(&self) -> u32 {
        self.end - 1
    }
}

/// A control-flow graph over a function body.
///
/// Block 0 is the entry block. Unreachable instructions get no block.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Blocks in ascending `start` order.
    pub blocks: Vec<Block>,
    /// For every instruction index, the containing block (or `None` for
    /// unreachable code).
    pub block_of_instr: Vec<Option<BlockId>>,
}

impl Cfg {
    /// Builds the CFG of `f`.
    ///
    /// Leaders are: instruction 0, every branch target, and every
    /// instruction following a terminator. Blocks end at terminators or
    /// before the next leader.
    pub fn build(f: &Function) -> Cfg {
        let code = &f.code;
        let n = code.len();
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        for (i, instr) in code.iter().enumerate() {
            if let Some(t) = instr.branch_target() {
                leader[t as usize] = true;
            }
            if instr.is_terminator() && i + 1 < n {
                leader[i + 1] = true;
            }
        }

        let mut blocks: Vec<Block> = Vec::new();
        let mut block_of_instr: Vec<Option<BlockId>> = vec![None; n];
        let mut start = 0usize;
        for i in 0..n {
            let is_last = i + 1 == n || leader[i + 1];
            let ends_block = code[i].is_terminator() || is_last;
            if ends_block {
                let id = BlockId(blocks.len() as u32);
                for slot in block_of_instr.iter_mut().take(i + 1).skip(start) {
                    *slot = Some(id);
                }
                blocks.push(Block {
                    start: start as u32,
                    end: (i + 1) as u32,
                    succs: Vec::new(),
                    preds: Vec::new(),
                });
                start = i + 1;
            }
        }

        // successor edges
        let block_at = |instr_idx: u32| -> BlockId {
            block_of_instr[instr_idx as usize].expect("target instruction must be in a block")
        };
        let mut edges: Vec<(BlockId, BlockId)> = Vec::new();
        for (bi, b) in blocks.iter().enumerate() {
            let term = &code[b.terminator_idx() as usize];
            let from = BlockId(bi as u32);
            if let Some(t) = term.branch_target() {
                edges.push((from, block_at(t)));
            }
            if term.falls_through() && (b.end as usize) < n {
                edges.push((from, block_at(b.end)));
            }
        }
        for (from, to) in edges {
            blocks[from.0 as usize].succs.push(to);
            blocks[to.0 as usize].preds.push(from);
        }

        // drop duplicate pred entries from conditional branches whose
        // both edges reach the same block (keep multiplicity: natural
        // loop detection does not care, and duplicates are rare). We
        // de-duplicate to keep algorithms simple.
        for b in &mut blocks {
            b.succs.dedup();
            b.preds.sort_unstable();
            b.preds.dedup();
        }

        let mut cfg = Cfg {
            blocks,
            block_of_instr,
        };
        cfg.prune_unreachable();
        cfg
    }

    /// Removes blocks unreachable from the entry (they confuse the
    /// dominator computation). Block ids are re-compacted.
    fn prune_unreachable(&mut self) {
        let n = self.blocks.len();
        if n == 0 {
            return;
        }
        let mut seen = vec![false; n];
        let mut work = vec![BlockId(0)];
        seen[0] = true;
        while let Some(b) = work.pop() {
            for &s in &self.blocks[b.0 as usize].succs {
                if !seen[s.0 as usize] {
                    seen[s.0 as usize] = true;
                    work.push(s);
                }
            }
        }
        if seen.iter().all(|&s| s) {
            return;
        }
        let mut remap: Vec<Option<BlockId>> = vec![None; n];
        let mut kept: Vec<Block> = Vec::new();
        for (i, block) in self.blocks.iter().enumerate() {
            if seen[i] {
                remap[i] = Some(BlockId(kept.len() as u32));
                kept.push(block.clone());
            }
        }
        for b in &mut kept {
            b.succs = b.succs.iter().filter_map(|s| remap[s.0 as usize]).collect();
            b.preds = b.preds.iter().filter_map(|s| remap[s.0 as usize]).collect();
        }
        for slot in &mut self.block_of_instr {
            *slot = slot.and_then(|b| remap[b.0 as usize]);
        }
        self.blocks = kept;
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when the function body produced no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The block containing instruction `idx`, if reachable.
    pub fn block_of(&self, idx: u32) -> Option<BlockId> {
        self.block_of_instr.get(idx as usize).copied().flatten()
    }

    /// Iterates the instruction indices of block `b`.
    pub fn instrs_of(&self, b: BlockId) -> impl Iterator<Item = u32> {
        let block = &self.blocks[b.0 as usize];
        block.start..block.end
    }

    /// A reverse post-order over blocks (entry first).
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let n = self.blocks.len();
        let mut visited = vec![false; n];
        let mut post: Vec<BlockId> = Vec::with_capacity(n);
        // iterative DFS with explicit stack of (block, next-succ-index)
        let mut stack: Vec<(BlockId, usize)> = Vec::new();
        if n > 0 {
            visited[0] = true;
            stack.push((BlockId(0), 0));
        }
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            let succs = &self.blocks[b.0 as usize].succs;
            if *i < succs.len() {
                let s = succs[*i];
                *i += 1;
                if !visited[s.0 as usize] {
                    visited[s.0 as usize] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::isa::Cond;
    use tvm::ProgramBuilder;

    fn build_main(body: impl FnOnce(&mut tvm::FnBuilder)) -> tvm::Program {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            body(f);
            f.ret_void();
        });
        b.finish(main).unwrap()
    }

    #[test]
    fn straight_line_is_one_block() {
        let p = build_main(|f| {
            f.ci(1).ci(2).iadd().drop_top();
        });
        let cfg = Cfg::build(&p.functions[0]);
        assert_eq!(cfg.len(), 1);
        assert!(cfg.blocks[0].succs.is_empty());
    }

    #[test]
    fn loop_produces_back_edge() {
        let p = build_main(|f| {
            let i = f.local();
            f.for_in(i, 0.into(), 10.into(), |_f| {});
        });
        let cfg = Cfg::build(&p.functions[0]);
        // some block has a successor that appears earlier (the back edge)
        let has_back_edge = cfg
            .blocks
            .iter()
            .enumerate()
            .any(|(i, b)| b.succs.iter().any(|s| (s.0 as usize) <= i));
        assert!(has_back_edge);
        // every reachable instruction belongs to a block
        for (i, slot) in cfg.block_of_instr.iter().enumerate() {
            assert!(slot.is_some(), "instr {i} unassigned");
        }
    }

    #[test]
    fn diamond_has_four_blocks() {
        let p = build_main(|f| {
            let x = f.local();
            f.ci(1).st(x);
            f.if_else_icmp(
                Cond::Gt,
                |f| {
                    f.ld(x).ci(0);
                },
                |f| {
                    f.ci(1).st(x);
                },
                |f| {
                    f.ci(2).st(x);
                },
            );
            f.ld(x).drop_top();
        });
        let cfg = Cfg::build(&p.functions[0]);
        // entry, then, else, join  (join may merge with trailing code)
        assert!(cfg.len() >= 4, "got {} blocks", cfg.len());
        let entry = &cfg.blocks[0];
        assert_eq!(entry.succs.len(), 2);
    }

    #[test]
    fn unreachable_code_is_pruned() {
        use tvm::isa::Instr;
        use tvm::program::{Function, Program};
        use tvm::FuncId;
        let f = Function {
            name: "f".into(),
            n_params: 0,
            n_locals: 0,
            returns: false,
            code: vec![
                Instr::Goto(2),
                Instr::IConst(1), // unreachable (and not a leader target)
                Instr::ReturnVoid,
            ],
        };
        let _p = Program {
            functions: vec![f.clone()],
            classes: vec![],
            globals: vec![],
            entry: FuncId(0),
        };
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.block_of(1), None);
        assert!(cfg.block_of(2).is_some());
    }

    #[test]
    fn reverse_postorder_starts_at_entry() {
        let p = build_main(|f| {
            let i = f.local();
            f.for_in(i, 0.into(), 3.into(), |_f| {});
        });
        let cfg = Cfg::build(&p.functions[0]);
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), cfg.len());
    }
}
