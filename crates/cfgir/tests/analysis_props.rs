//! Property tests for the CFG analyses: the iterative dominator
//! computation is checked against a brute-force reachability oracle on
//! randomly generated structured programs, and the natural-loop
//! invariants are verified structurally.

use cfgir::{Cfg, Dominators, LoopForest};
use proptest::prelude::*;
use tvm::{Cond, FnBuilder, Program, ProgramBuilder};

/// Random structured control flow: sequences, ifs, loops.
#[derive(Debug, Clone)]
enum Shape {
    Work(u8),
    If(Vec<Shape>, Vec<Shape>),
    Loop(Vec<Shape>),
    Break,
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    let leaf = prop_oneof![(1u8..4).prop_map(Shape::Work), Just(Shape::Break),];
    leaf.prop_recursive(3, 20, 3, |inner| {
        prop_oneof![
            (
                prop::collection::vec(inner.clone(), 0..3),
                prop::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(a, b)| Shape::If(a, b)),
            prop::collection::vec(inner, 1..3).prop_map(Shape::Loop),
        ]
    })
}

fn emit(f: &mut FnBuilder, x: tvm::Local, shapes: &[Shape], break_to: Option<tvm::Label>) {
    for s in shapes {
        match s {
            Shape::Work(n) => {
                for _ in 0..*n {
                    f.ld(x).ci(1).iadd().st(x);
                }
            }
            Shape::Break => {
                if let Some(l) = break_to {
                    // conditional break so code after stays reachable
                    f.if_icmp(
                        Cond::Gt,
                        |f| {
                            f.ld(x).ci(1_000_000);
                        },
                        |f| {
                            f.goto(l);
                        },
                    );
                }
            }
            Shape::If(a, b) => {
                let else_l = f.new_label();
                let end = f.new_label();
                f.ld(x).ci(7).br_icmp(Cond::Lt, else_l);
                emit(f, x, a, break_to);
                f.goto(end);
                f.bind(else_l);
                emit(f, x, b, break_to);
                f.bind(end);
            }
            Shape::Loop(body) => {
                let i = f.local();
                let exit = f.new_label();
                let head = f.new_label();
                f.ci(0).st(i);
                f.bind(head);
                f.ld(i).ci(3).br_icmp(Cond::Ge, exit);
                emit(f, x, body, Some(exit));
                f.inc(i, 1);
                f.goto(head);
                f.bind(exit);
            }
        }
    }
}

fn compile(shapes: &[Shape]) -> Program {
    let mut b = ProgramBuilder::new();
    let main = b.function("main", 0, true, |f| {
        let x = f.local();
        emit(f, x, shapes, None);
        f.ld(x).ret();
    });
    b.finish(main).expect("generated structure verifies")
}

/// Brute force: A dominates B iff B is unreachable from entry when A
/// is removed (and both are reachable).
fn dominates_brute(cfg: &Cfg, a: usize, b: usize) -> bool {
    if a == b {
        return true;
    }
    if a == 0 {
        // the entry dominates every (reachable) block, and Cfg::build
        // prunes unreachable ones
        return true;
    }
    let n = cfg.len();
    let mut seen = vec![false; n];
    let mut work = vec![0usize];
    seen[0] = true;
    while let Some(v) = work.pop() {
        for s in &cfg.blocks[v].succs {
            let si = s.0 as usize;
            if si != a && !seen[si] {
                seen[si] = true;
                work.push(si);
            }
        }
    }
    !seen[b]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dominators_match_brute_force(shapes in prop::collection::vec(arb_shape(), 1..4)) {
        let p = compile(&shapes);
        let cfg = Cfg::build(&p.functions[0]);
        let dom = Dominators::compute(&cfg);
        let n = cfg.len().min(24); // bound the O(n^3) oracle
        for a in 0..n {
            for b in 0..n {
                let fast = dom.dominates(cfgir::BlockId(a as u32), cfgir::BlockId(b as u32));
                let slow = dominates_brute(&cfg, a, b);
                prop_assert_eq!(fast, slow, "a={} b={}", a, b);
            }
        }
    }

    #[test]
    fn loop_forest_invariants(shapes in prop::collection::vec(arb_shape(), 1..4)) {
        let p = compile(&shapes);
        let cfg = Cfg::build(&p.functions[0]);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::build(&cfg, &dom);
        for (i, l) in forest.loops.iter().enumerate() {
            // header is in the loop and dominates every member
            prop_assert!(l.blocks.contains(&l.header));
            for &b in &l.blocks {
                prop_assert!(dom.dominates(l.header, b), "header must dominate {b:?}");
            }
            // latches branch to the header
            for &latch in &l.latches {
                prop_assert!(cfg.blocks[latch.0 as usize].succs.contains(&l.header));
                prop_assert!(l.blocks.contains(&latch));
            }
            // parent strictly contains the child
            if let Some(pi) = l.parent {
                prop_assert!(forest.loops[pi].blocks.is_superset(&l.blocks));
                prop_assert!(forest.loops[pi].blocks.len() > l.blocks.len());
                prop_assert_eq!(forest.loops[pi].depth + 1, l.depth);
            } else {
                prop_assert_eq!(l.depth, 1);
            }
            // exit edges leave the loop, entry edges come from outside
            for &(from, to) in &l.exit_edges {
                prop_assert!(l.blocks.contains(&from) && !l.blocks.contains(&to));
            }
            for &(from, to) in &l.entry_edges {
                prop_assert!(!l.blocks.contains(&from));
                prop_assert_eq!(to, l.header);
            }
            let _ = i;
        }
    }

    #[test]
    fn generated_structures_execute(shapes in prop::collection::vec(arb_shape(), 1..4)) {
        let p = compile(&shapes);
        let r = tvm::Interp::run(&p, &mut tvm::NullSink).unwrap();
        prop_assert!(r.ret.unwrap().as_int().unwrap() >= 0);
    }
}
