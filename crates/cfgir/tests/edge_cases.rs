//! Structural edge cases for the CFG, dominator and loop analyses:
//! self-loops, several back edges sharing one header, and unreachable
//! code. The bodies are hand-written instruction sequences so the
//! shapes are exact, not whatever the builder happens to emit.

use cfgir::{BlockId, Cfg, Dominators, LoopForest};
use tvm::isa::{Cond, Instr, Local};
use tvm::program::Function;

fn func(code: Vec<Instr>, n_locals: u16) -> Function {
    Function {
        name: "edge".into(),
        n_params: 0,
        n_locals,
        returns: false,
        code,
    }
}

fn analyze(f: &Function) -> (Cfg, Dominators, LoopForest) {
    let cfg = Cfg::build(f);
    let dom = Dominators::compute(&cfg);
    let forest = LoopForest::build(&cfg, &dom);
    (cfg, dom, forest)
}

/// A single block that branches to itself: the tightest possible loop.
/// Its header is its own latch, and it must dominate itself.
#[test]
fn self_loop_is_a_one_block_natural_loop() {
    let f = func(
        vec![
            Instr::IConst(1),       // 0: leader, in-loop work
            Instr::If(Cond::Ne, 0), // 1: back edge to instruction 0
            Instr::ReturnVoid,      // 2
        ],
        0,
    );
    let (cfg, dom, forest) = analyze(&f);

    assert_eq!(forest.len(), 1);
    let l = &forest.loops[0];
    assert_eq!(l.blocks.len(), 1, "self-loop spans exactly one block");
    assert_eq!(l.latches, vec![l.header], "header is its own latch");
    assert!(dom.dominates(l.header, l.header));
    // the loop body must contain the branch instruction itself
    let (start, end) = {
        let b = &cfg.blocks[l.header.0 as usize];
        (b.start, b.end)
    };
    assert!((start..end).contains(&1));
}

/// Two distinct latches branching back to the same header must merge
/// into ONE natural loop with two latch blocks, not two loops.
#[test]
fn two_back_edges_one_header_merge_into_one_loop() {
    let v = Local(0);
    let f = func(
        vec![
            Instr::IConst(10),       // 0: entry
            Instr::Store(v),         // 1
            Instr::Load(v),          // 2: header
            Instr::If(Cond::Le, 10), // 3: v <= 0 -> exit
            Instr::Load(v),          // 4: body
            Instr::If(Cond::Gt, 8),  // 5: v > 0 -> latch B
            Instr::IInc(v, -1),      // 6: latch A
            Instr::Goto(2),          // 7: back edge A
            Instr::IInc(v, -2),      // 8: latch B
            Instr::Goto(2),          // 9: back edge B
            Instr::ReturnVoid,       // 10: exit
        ],
        1,
    );
    let (_cfg, dom, forest) = analyze(&f);

    assert_eq!(forest.len(), 1, "both back edges form one loop");
    let l = &forest.loops[0];
    assert_eq!(l.latches.len(), 2, "two distinct latch blocks");
    for latch in &l.latches {
        assert!(dom.dominates(l.header, *latch), "header dominates latches");
        assert!(l.blocks.contains(latch));
    }
    // both IInc blocks are inside the loop body
    assert!(l.blocks.len() >= 4, "header + body + 2 latches");
}

/// A loop that only exists in unreachable code must not appear in the
/// forest: `prune_unreachable` removes it before loop discovery.
#[test]
fn unreachable_loop_is_not_discovered() {
    let f = func(
        vec![
            Instr::Goto(4),         // 0: jump straight to the return
            Instr::IConst(1),       // 1: dead loop header
            Instr::If(Cond::Gt, 1), // 2: dead back edge
            Instr::Goto(1),         // 3: dead
            Instr::ReturnVoid,      // 4: the only reachable exit
        ],
        0,
    );
    let (cfg, _dom, forest) = analyze(&f);

    assert!(forest.is_empty(), "dead loops must not be discovered");
    // only the entry block and the return survive pruning
    assert_eq!(cfg.len(), 2);
    assert!(cfg.block_of(1).is_none(), "dead instruction has no block");
    assert!(cfg.block_of(4).is_some());
}

/// An entry block that is itself a loop header (back edge to block 0)
/// still dominates everything, including its own latch.
#[test]
fn entry_block_as_loop_header() {
    let v = Local(0);
    let f = func(
        vec![
            Instr::IInc(v, 1),      // 0: header IS the entry
            Instr::Load(v),         // 1
            Instr::If(Cond::Lt, 0), // 2: back edge to entry
            Instr::ReturnVoid,      // 3
        ],
        1,
    );
    let (_cfg, dom, forest) = analyze(&f);

    assert_eq!(forest.len(), 1);
    let l = &forest.loops[0];
    assert_eq!(l.header, BlockId(0));
    assert!(dom.dominates(BlockId(0), l.latches[0]));
    assert_eq!(dom.idom(BlockId(0)), BlockId(0), "entry is its own idom");
}
