//! The TEST comparator-bank array (paper §4.2, §5.2, Figure 7).
//!
//! [`TestTracer`] consumes the trace-event stream of a sequentially
//! executing annotated program and runs two analyses per active STL:
//!
//! * **Load dependency analysis** (§4.2.1, Figure 3): every load looks
//!   up the previous store timestamp for its word; the unique
//!   comparator bank for which that store lies in an *earlier thread of
//!   the same loop entry* records a dependency arc, binned `t-1` /
//!   `<t-1`, keeping only the shortest (critical) arc per thread.
//! * **Speculative-state overflow analysis** (§4.2.2, Figure 4): every
//!   heap access consults a direct-mapped cache-line timestamp table;
//!   lines not yet touched by the current thread bump per-bank line
//!   counters, which are checked against the Table 1 buffer limits.
//!
//! Banks are allocated at `sloop` (outermost loops win by arriving
//! first) and freed at `eloop`; when no bank — or no room in the
//! local-variable timestamp table — is available, the loop entry goes
//! untraced, exactly as the paper's hardware degrades (§5.2).

use crate::buffers::{LineTimestampTable, LocalVarTimestamps, StoreTimestampFifo};
use crate::config::TracerConfig;
use crate::pcbins::PcBins;
use crate::stats::{Profile, StlStats};
use obs::{Trace as ObsTrace, TrackId};
use std::collections::BTreeMap;
use std::sync::Arc;
use tvm::bus::EventBatch;
use tvm::isa::{LoopId, Pc};
use tvm::line_of;
use tvm::record::Event;
use tvm::trace::{Addr, Cycles, TraceSink};

/// Per-STL-activation comparator-bank state (Figure 7).
#[derive(Debug, Clone)]
struct Bank {
    loop_id: LoopId,
    /// Which `lwl`/`swl` slots belong to *this* loop's tracked set.
    /// A variable can be a privatizable inductor or reduction for an
    /// inner loop while being a genuine dependency for an enclosing
    /// one; the annotation stream is shared, so the compiler installs
    /// a per-loop slot mask when it creates the annotated code and the
    /// bank ignores foreign slots. Defaults to all-ones when the
    /// runtime provides no mask.
    local_mask: u64,
    /// Thread start timestamp (0): the loop entry time. Stores older
    /// than this are loop-invariant inputs, not inter-thread arcs.
    entry_start: Cycles,
    /// Thread start timestamp (t).
    thread_start: Cycles,
    /// Thread start timestamp (t-1).
    prev_thread_start: Cycles,
    // ---- per-thread state, reset at every eoi ----
    min_arc_t1: Option<Cycles>,
    min_arc_lt: Option<Cycles>,
    ld_lines: u32,
    st_lines: u32,
    overflowed: bool,
    /// consecutive overflowing threads (adaptive release policy)
    consecutive_overflows: u64,
}

impl Bank {
    fn new(loop_id: LoopId, now: Cycles, local_mask: u64) -> Bank {
        Bank {
            loop_id,
            local_mask,
            entry_start: now,
            thread_start: now,
            prev_thread_start: now,
            min_arc_t1: None,
            min_arc_lt: None,
            ld_lines: 0,
            st_lines: 0,
            overflowed: false,
            consecutive_overflows: 0,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct StackEntry {
    loop_id: LoopId,
    bank: Option<usize>,
    activation: u32,
    /// set when the adaptive policy released this entry's bank: the
    /// runtime still knows the `sloop` time, so the loop's inclusive
    /// cycles are accounted at `eloop` as usual
    released_entry: Option<Cycles>,
}

/// Self-profiling sample stream (see [`TestTracer::set_obs`]).
#[derive(Debug)]
struct ObsHook {
    trace: Arc<ObsTrace>,
    track: TrackId,
    sample_every: u64,
}

/// The counter-series name for one attribution key.
fn attr_series(l: Option<LoopId>) -> String {
    match l {
        Some(l) => format!("analyzer.{l}"),
        None => "analyzer.outside".to_string(),
    }
}

/// The hardware tracer. Implements [`TraceSink`]; feed it by running an
/// annotated program through [`tvm::Interp`], then harvest results with
/// [`TestTracer::into_profile`].
#[derive(Debug)]
pub struct TestTracer {
    cfg: TracerConfig,
    fifo: StoreTimestampFifo,
    ld_table: LineTimestampTable,
    st_table: LineTimestampTable,
    locals: LocalVarTimestamps,
    banks: Vec<Option<Bank>>,
    stack: Vec<StackEntry>,
    /// Bank indices of the stack entries that still hold a live bank,
    /// in stack order — the dependency/overflow walks iterate this
    /// instead of scanning (and skipping) the full loop stack.
    /// Invariant: `banked == stack.iter().filter_map(|e| e.bank)`.
    banked: Vec<usize>,
    /// Occupancy bitmap over the first 64 comparator banks (bit i set
    /// = `banks[i]` is live); lets `loop_enter` find the lowest free
    /// bank with one bit scan instead of a linear probe.
    bank_occ: u64,
    local_masks: BTreeMap<LoopId, u64>,
    stl: BTreeMap<LoopId, StlStats>,
    forest_edges: BTreeMap<(Option<LoopId>, LoopId), u64>,
    pc_bins: PcBins,
    max_dynamic_depth: u32,
    events: u64,
    end_time: Cycles,
    last_ld_line: Option<u32>,
    last_st_line: Option<u32>,
    // ---- self-profiling ----
    /// attribution key of the innermost active loop (`None` = outside)
    cur_loop: Option<LoopId>,
    /// events attributed to `cur_loop` since the last stack change;
    /// flushed to `analyzer_events` whenever the innermost loop changes
    /// so the per-event cost stays a plain increment
    cur_attr: u64,
    analyzer_events: BTreeMap<Option<LoopId>, u64>,
    fifo_depth_watermark: u64,
    bank_watermark: u64,
    obs: Option<ObsHook>,
}

impl TestTracer {
    /// Creates a tracer with the given hardware configuration.
    pub fn new(cfg: TracerConfig) -> TestTracer {
        TestTracer {
            cfg,
            fifo: StoreTimestampFifo::new(cfg.store_ts_lines),
            ld_table: LineTimestampTable::new(cfg.ld_table_entries),
            st_table: LineTimestampTable::new(cfg.st_table_entries),
            locals: LocalVarTimestamps::new(cfg.local_var_capacity),
            banks: vec![None; cfg.n_banks],
            stack: Vec::new(),
            banked: Vec::new(),
            bank_occ: 0,
            local_masks: BTreeMap::new(),
            stl: BTreeMap::new(),
            forest_edges: BTreeMap::new(),
            pc_bins: PcBins::new(cfg.pc_bin_capacity),
            max_dynamic_depth: 0,
            events: 0,
            end_time: 0,
            last_ld_line: None,
            last_st_line: None,
            cur_loop: None,
            cur_attr: 0,
            analyzer_events: BTreeMap::new(),
            fifo_depth_watermark: 0,
            bank_watermark: 0,
            obs: None,
        }
    }

    /// Streams self-profiling samples into `trace` on a cycle-domain
    /// track named `tracer`: every `sample_every`-th event emits
    /// `fifo_depth`, `banks_in_use`, and the cumulative
    /// `analyzer.<loop>` count of the innermost active candidate;
    /// every predicted buffer overflow emits an `overflow <loop>`
    /// instant. [`TestTracer::into_profile`] flushes the final
    /// per-candidate `analyzer.*` counters at the profile end time, so
    /// their last samples sum to the profile's total event count.
    pub fn set_obs(&mut self, trace: Arc<ObsTrace>, sample_every: u64) {
        let track = trace.cycle_track("tracer");
        self.obs = Some(ObsHook {
            trace,
            track,
            sample_every: sample_every.max(1),
        });
    }

    /// Creates a tracer with the per-loop tracked-variable slot masks
    /// already installed (see [`TestTracer::set_local_masks`]).
    pub fn with_masks(
        cfg: TracerConfig,
        masks: impl IntoIterator<Item = (LoopId, u64)>,
    ) -> TestTracer {
        let mut t = TestTracer::new(cfg);
        t.set_local_masks(masks);
        t
    }

    /// Finalizes the run and returns everything collected.
    ///
    /// Any still-active loops (a program that halted mid-loop) are
    /// closed at the last observed event time.
    pub fn into_profile(mut self) -> Profile {
        let end = self.end_time;
        while let Some(top) = self.stack.last().copied() {
            self.close_loop(top.loop_id, end);
        }
        self.flush_attr();
        if let Some(hook) = &self.obs {
            for (&key, &count) in &self.analyzer_events {
                hook.trace
                    .counter_at(hook.track, &attr_series(key), end, count);
            }
        }
        Profile {
            stl: self.stl,
            forest_edges: self.forest_edges,
            pc_bins: self.pc_bins,
            max_dynamic_depth: self.max_dynamic_depth,
            fifo_evictions: self.fifo.evictions(),
            events: self.events,
            end_time: end,
            analyzer_events: self.analyzer_events,
            fifo_depth_watermark: self.fifo_depth_watermark,
            bank_watermark: self.bank_watermark,
        }
    }

    /// Banks currently holding a live loop entry.
    fn banks_in_use(&self) -> u64 {
        self.banked.len() as u64
    }

    /// Lowest free comparator-bank index, via the occupancy bitmap for
    /// the first 64 banks and a linear probe past them. Matches the
    /// order of a full `position(|b| b.is_none())` scan exactly.
    fn free_bank(&self) -> Option<usize> {
        let n = self.banks.len();
        let small = n.min(64);
        let mask = if small == 64 {
            u64::MAX
        } else {
            (1u64 << small) - 1
        };
        let free = !self.bank_occ & mask;
        if free != 0 {
            return Some(free.trailing_zeros() as usize);
        }
        if n > 64 {
            return self.banks[64..]
                .iter()
                .position(|b| b.is_none())
                .map(|i| i + 64);
        }
        None
    }

    /// Keeps the occupancy bitmap in sync with `banks[idx]`.
    #[inline]
    fn mark_bank(&mut self, idx: usize, occupied: bool) {
        if idx < 64 {
            if occupied {
                self.bank_occ |= 1u64 << idx;
            } else {
                self.bank_occ &= !(1u64 << idx);
            }
        }
    }

    /// Drops the released bank `bi` — which must be the innermost live
    /// bank — from the banked-stack list and the occupancy bitmap.
    #[inline]
    fn unbank_top(&mut self, bi: usize) {
        let popped = self.banked.pop();
        debug_assert_eq!(popped, Some(bi), "released bank is the innermost");
        self.mark_bank(bi, false);
    }

    /// Moves the pending attribution count into the per-loop map.
    fn flush_attr(&mut self) {
        if self.cur_attr > 0 {
            *self.analyzer_events.entry(self.cur_loop).or_insert(0) += self.cur_attr;
            self.cur_attr = 0;
        }
    }

    /// Statistics for one loop, if it was ever traced.
    pub fn stats(&self, loop_id: LoopId) -> Option<&StlStats> {
        self.stl.get(&loop_id)
    }

    /// Installs the per-loop tracked-variable slot mask the JIT
    /// computes when compiling annotations: bit `i` set means `lwl`/
    /// `swl` slot `i` belongs to this loop's own tracked set (it is
    /// not a privatizable inductor/reduction of the loop). Banks for
    /// loops without a mask consider every slot.
    pub fn set_local_mask(&mut self, loop_id: LoopId, mask: u64) {
        self.local_masks.insert(loop_id, mask);
    }

    /// Installs masks in bulk (see [`TestTracer::set_local_mask`]).
    pub fn set_local_masks(&mut self, masks: impl IntoIterator<Item = (LoopId, u64)>) {
        self.local_masks.extend(masks);
    }

    fn tick(&mut self, now: Cycles) {
        self.events += 1;
        self.end_time = self.end_time.max(now);
        self.cur_attr += 1;
        if let Some(hook) = &self.obs {
            if self.events.is_multiple_of(hook.sample_every) {
                let cum = self
                    .analyzer_events
                    .get(&self.cur_loop)
                    .copied()
                    .unwrap_or(0)
                    + self.cur_attr;
                hook.trace
                    .counter_at(hook.track, "fifo_depth", now, self.fifo.len() as u64);
                hook.trace
                    .counter_at(hook.track, "banks_in_use", now, self.banks_in_use());
                hook.trace
                    .counter_at(hook.track, &attr_series(self.cur_loop), now, cum);
            }
        }
    }

    /// Load dependency analysis (§4.2.1): finds the unique active bank
    /// for which `ts` lies in an earlier thread of the current entry.
    /// For local-variable loads, `slot` carries the `lwl` operand so
    /// banks can skip variables outside their tracked mask.
    fn dependency_check(&mut self, ts: Cycles, now: Cycles, pc: Pc, slot: Option<u16>) {
        debug_assert!(self
            .banked
            .iter()
            .copied()
            .eq(self.stack.iter().filter_map(|e| e.bank)));
        for i in (0..self.banked.len()).rev() {
            let bi = self.banked[i];
            let bank = self.banks[bi].as_mut().expect("banked index is live");
            if let Some(v) = slot {
                if v < 64 && bank.local_mask & (1u64 << v) == 0 {
                    continue; // not this loop's variable
                }
            }
            if ts >= bank.thread_start {
                // same thread; enclosing loops see it intra-thread too
                return;
            }
            if ts >= bank.entry_start {
                let len = now - ts;
                let distant = ts < bank.prev_thread_start;
                let slot = if distant {
                    &mut bank.min_arc_lt
                } else {
                    &mut bank.min_arc_t1
                };
                *slot = Some(slot.map_or(len, |m: Cycles| m.min(len)));
                self.pc_bins.record(bank.loop_id, pc, len, distant);
                return;
            }
            // predates this loop entry: try the enclosing loop
        }
    }

    /// Overflow analysis, load side (§4.2.2).
    fn overflow_load(&mut self, addr: Addr, now: Cycles) {
        let line = line_of(addr);
        if self.last_ld_line == Some(line) {
            return; // Figure 7's last-line register fast path
        }
        self.last_ld_line = Some(line);
        let old = self.ld_table.swap(line, now);
        for i in 0..self.banked.len() {
            let bi = self.banked[i];
            let bank = self.banks[bi].as_mut().expect("banked index is live");
            if old.is_none_or(|t| t < bank.thread_start) {
                bank.ld_lines += 1;
                if bank.ld_lines > self.cfg.ld_line_limit {
                    bank.overflowed = true;
                }
            }
        }
    }

    /// Overflow analysis, store side.
    fn overflow_store(&mut self, addr: Addr, now: Cycles) {
        let line = line_of(addr);
        if self.last_st_line == Some(line) {
            return;
        }
        self.last_st_line = Some(line);
        let old = self.st_table.swap(line, now);
        for i in 0..self.banked.len() {
            let bi = self.banked[i];
            let bank = self.banks[bi].as_mut().expect("banked index is live");
            if old.is_none_or(|t| t < bank.thread_start) {
                bank.st_lines += 1;
                if bank.st_lines > self.cfg.st_line_limit {
                    bank.overflowed = true;
                }
            }
        }
    }

    /// Completes the current thread of a bank. Returns `true` when the
    /// adaptive policy decides the bank should be released (it
    /// consistently predicts buffer overflows, so deeper loops deserve
    /// the hardware — paper §5.2).
    fn finish_thread(&mut self, bank_idx: usize, now: Cycles) -> bool {
        let cfg_release = self.cfg.overflow_release_threads;
        let bank = self.banks[bank_idx].as_mut().expect("bank is live");
        let s = self
            .stl
            .get_mut(&bank.loop_id)
            .expect("bank loops always have stats");
        s.threads += 1;
        if let Some(a) = bank.min_arc_t1.take() {
            s.arcs_t1 += 1;
            s.arc_len_sum_t1 += a;
        }
        if let Some(a) = bank.min_arc_lt.take() {
            s.arcs_lt += 1;
            s.arc_len_sum_lt += a;
        }
        if bank.overflowed {
            s.overflow_threads += 1;
            bank.consecutive_overflows += 1;
            if let Some(hook) = &self.obs {
                hook.trace
                    .instant_at(hook.track, &format!("overflow {}", bank.loop_id), now);
            }
        } else {
            bank.consecutive_overflows = 0;
        }
        s.max_ld_lines = s.max_ld_lines.max(bank.ld_lines);
        s.max_st_lines = s.max_st_lines.max(bank.st_lines);
        let size = now.saturating_sub(bank.thread_start);
        s.thread_size_sum += size;
        s.thread_size_sq_sum += u128::from(size) * u128::from(size);
        bank.prev_thread_start = bank.thread_start;
        bank.thread_start = now;
        bank.ld_lines = 0;
        bank.st_lines = 0;
        bank.overflowed = false;
        let release = cfg_release != 0 && bank.consecutive_overflows >= cfg_release;
        self.last_ld_line = None;
        self.last_st_line = None;
        release
    }

    fn close_loop(&mut self, loop_id: LoopId, now: Cycles) {
        while let Some(top) = self.stack.pop() {
            let entry_start = if let Some(bi) = top.bank {
                let bank = self.banks[bi].take().expect("stack bank is live");
                self.unbank_top(bi);
                self.locals.release(top.activation);
                Some(bank.entry_start)
            } else {
                top.released_entry
            };
            if let Some(start) = entry_start {
                let s = self
                    .stl
                    .get_mut(&top.loop_id)
                    .expect("traced loops always have stats");
                s.cycles += now.saturating_sub(start);
            }
            if top.loop_id == loop_id {
                break;
            }
        }
        self.last_ld_line = None;
        self.last_st_line = None;
        self.flush_attr();
        self.cur_loop = self.stack.last().map(|e| e.loop_id);
    }
}

impl TraceSink for TestTracer {
    fn heap_load(&mut self, addr: Addr, now: Cycles, pc: Pc) {
        self.tick(now);
        if self.stack.is_empty() {
            return;
        }
        if let Some(ts) = self.fifo.lookup(addr) {
            self.dependency_check(ts, now, pc, None);
        }
        self.overflow_load(addr, now);
    }

    fn heap_store(&mut self, addr: Addr, now: Cycles, pc: Pc) {
        self.tick(now);
        let _ = pc;
        // timestamps must be recorded even outside loops: a load in a
        // later-entered loop may consult them (and be filtered by its
        // entry timestamp)
        self.fifo.record(addr, now);
        self.fifo_depth_watermark = self.fifo_depth_watermark.max(self.fifo.len() as u64);
        if self.stack.is_empty() {
            return;
        }
        self.overflow_store(addr, now);
    }

    fn local_load(&mut self, var: u16, activation: u32, now: Cycles, pc: Pc) {
        self.tick(now);
        if let Some(ts) = self.locals.lookup(activation, var) {
            self.dependency_check(ts, now, pc, Some(var));
        }
    }

    fn local_store(&mut self, var: u16, activation: u32, now: Cycles, pc: Pc) {
        self.tick(now);
        let _ = pc;
        self.locals.record(activation, var, now);
    }

    fn loop_enter(&mut self, loop_id: LoopId, n_locals: u16, activation: u32, now: Cycles) {
        self.tick(now);
        // dynamic forest edge: nearest traced enclosing loop = the
        // innermost live bank
        let parent = self.banked.last().map(|&bi| {
            self.banks[bi]
                .as_ref()
                .expect("banked index is live")
                .loop_id
        });
        *self.forest_edges.entry((parent, loop_id)).or_insert(0) += 1;

        // adaptive annotation policy: enough data collected already
        let sufficient = self.cfg.sufficient_threads != 0
            && self
                .stl
                .get(&loop_id)
                .is_some_and(|s| s.threads >= self.cfg.sufficient_threads);
        let free = if sufficient { None } else { self.free_bank() };
        let bank = match free {
            Some(slot) if self.locals.reserve(activation, n_locals) => {
                let mask = self.local_masks.get(&loop_id).copied().unwrap_or(u64::MAX);
                self.banks[slot] = Some(Bank::new(loop_id, now, mask));
                self.banked.push(slot);
                self.mark_bank(slot, true);
                let s = self.stl.entry(loop_id).or_default();
                s.entries += 1;
                Some(slot)
            }
            _ => {
                self.stl.entry(loop_id).or_default().untraced_entries += 1;
                None
            }
        };
        self.stack.push(StackEntry {
            loop_id,
            bank,
            activation,
            released_entry: None,
        });
        self.max_dynamic_depth = self.max_dynamic_depth.max(self.stack.len() as u32);
        self.last_ld_line = None;
        self.last_st_line = None;
        self.bank_watermark = self.bank_watermark.max(self.banks_in_use());
        self.flush_attr();
        self.cur_loop = Some(loop_id);
    }

    fn loop_iter(&mut self, loop_id: LoopId, now: Cycles) {
        self.tick(now);
        let Some(top) = self.stack.last().copied() else {
            return;
        };
        if top.loop_id != loop_id {
            return; // stray eoi from an untraced structure; ignore
        }
        if let Some(bi) = top.bank {
            if self.finish_thread(bi, now) {
                // release the bank for deeper loops; the runtime keeps
                // the sloop time so the loop's inclusive cycles are
                // still accounted at eloop
                let bank = self.banks[bi].take().expect("bank is live");
                self.unbank_top(bi);
                let entry = self.stack.last_mut().expect("top exists");
                entry.bank = None;
                entry.released_entry = Some(bank.entry_start);
                self.locals.release(entry.activation);
            }
        }
    }

    fn loop_exit(&mut self, loop_id: LoopId, now: Cycles) {
        self.tick(now);
        if self.stack.iter().any(|e| e.loop_id == loop_id) {
            self.close_loop(loop_id, now);
        }
    }

    fn stats_read(&mut self, _loop_id: LoopId, now: Cycles) {
        self.tick(now);
    }

    /// Batch-granularity delivery: one concrete dispatch loop over the
    /// batch instead of one virtual call per event. Semantically
    /// identical to the default (`replay_into`) — same events, same
    /// order — so transport bit-identity is preserved; only the call
    /// overhead changes.
    fn consume_batch(&mut self, batch: &EventBatch) {
        for e in batch.iter() {
            match e {
                Event::HeapLoad(a, t, pc) => self.heap_load(a, t, pc),
                Event::HeapStore(a, t, pc) => self.heap_store(a, t, pc),
                Event::LocalLoad(v, act, t, pc) => self.local_load(v, act, t, pc),
                Event::LocalStore(v, act, t, pc) => self.local_store(v, act, t, pc),
                Event::LoopEnter(l, n, act, t) => self.loop_enter(l, n, act, t),
                Event::LoopIter(l, t) => self.loop_iter(l, t),
                Event::LoopExit(l, t) => self.loop_exit(l, t),
                Event::StatsRead(l, t) => self.stats_read(l, t),
                Event::CallEnter(pc, act, t) => self.call_enter(pc, act, t),
                Event::CallExit(pc, t) => self.call_exit(pc, t),
                Event::CallResultUse(pc, t) => self.call_result_use(pc, t),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::isa::FuncId;

    const L0: LoopId = LoopId(0);
    const L1: LoopId = LoopId(1);

    fn pc(idx: u32) -> Pc {
        Pc {
            func: FuncId(0),
            idx,
        }
    }

    fn tracer() -> TestTracer {
        TestTracer::new(TracerConfig::default())
    }

    #[test]
    fn critical_arc_keeps_shortest() {
        let mut t = tracer();
        t.loop_enter(L0, 0, 0, 0);
        t.heap_store(0x100, 10, pc(1));
        t.heap_store(0x200, 30, pc(2));
        t.loop_iter(L0, 40);
        // two arcs into thread 2: lengths 40 (0x100) and 25 (0x200)
        t.heap_load(0x100, 50, pc(3));
        t.heap_load(0x200, 55, pc(4));
        t.loop_iter(L0, 60);
        t.loop_exit(L0, 61);
        let p = t.into_profile();
        let s = &p.stl[&L0];
        assert_eq!(s.threads, 2);
        assert_eq!(s.arcs_t1, 1, "one critical arc for the thread");
        assert_eq!(s.arc_len_sum_t1, 25, "the shorter arc wins");
    }

    #[test]
    fn pre_entry_stores_are_not_arcs() {
        let mut t = tracer();
        t.heap_store(0x100, 5, pc(0)); // before the loop
        t.loop_enter(L0, 0, 0, 10);
        t.loop_iter(L0, 20);
        t.heap_load(0x100, 25, pc(1)); // loop-invariant input
        t.loop_iter(L0, 30);
        t.loop_exit(L0, 31);
        let p = t.into_profile();
        let s = &p.stl[&L0];
        assert_eq!(s.arcs_t1 + s.arcs_lt, 0);
    }

    #[test]
    fn same_thread_store_load_is_not_an_arc() {
        let mut t = tracer();
        t.loop_enter(L0, 0, 0, 0);
        t.loop_iter(L0, 10);
        t.heap_store(0x100, 12, pc(0));
        t.heap_load(0x100, 15, pc(1)); // same thread
        t.loop_iter(L0, 20);
        t.loop_exit(L0, 21);
        let p = t.into_profile();
        assert_eq!(p.stl[&L0].arcs_t1, 0);
    }

    #[test]
    fn distant_arcs_go_to_the_lt_bin() {
        let mut t = tracer();
        t.loop_enter(L0, 0, 0, 0);
        t.heap_store(0x100, 5, pc(0)); // thread 1
        t.loop_iter(L0, 10);
        t.loop_iter(L0, 20); // thread 2: empty
        t.heap_load(0x100, 25, pc(1)); // thread 3 reads thread 1
        t.loop_iter(L0, 30);
        t.loop_exit(L0, 31);
        let p = t.into_profile();
        let s = &p.stl[&L0];
        assert_eq!(s.arcs_lt, 1);
        assert_eq!(s.arc_len_sum_lt, 20);
        assert_eq!(s.arcs_t1, 0);
    }

    #[test]
    fn local_variable_arcs_are_detected() {
        let mut t = tracer();
        t.loop_enter(L0, 2, 7, 0);
        t.local_store(1, 7, 8, pc(0));
        t.loop_iter(L0, 10);
        t.local_load(1, 7, 14, pc(1));
        t.loop_iter(L0, 20);
        t.loop_exit(L0, 21);
        let p = t.into_profile();
        let s = &p.stl[&L0];
        assert_eq!(s.arcs_t1, 1);
        assert_eq!(s.arc_len_sum_t1, 6);
    }

    #[test]
    fn nested_loops_attribute_arcs_to_the_unique_bank() {
        // store in outer iteration i (outside inner loop), load inside
        // inner loop of iteration i+1: the arc belongs to the OUTER loop
        let mut t = tracer();
        t.loop_enter(L0, 0, 0, 0);
        t.heap_store(0x300, 5, pc(0));
        t.loop_iter(L0, 10); // outer thread boundary
        t.loop_enter(L1, 0, 0, 12);
        t.heap_load(0x300, 15, pc(1));
        t.loop_iter(L1, 18);
        t.loop_exit(L1, 20);
        t.loop_iter(L0, 22);
        t.loop_exit(L0, 25);
        let p = t.into_profile();
        assert_eq!(p.stl[&L0].arcs_t1, 1);
        assert_eq!(p.stl[&L1].arcs_t1, 0);
        // and the dynamic forest saw the nesting
        assert_eq!(p.forest_edges[&(Some(L0), L1)], 1);
        assert_eq!(p.max_dynamic_depth, 2);
    }

    #[test]
    fn inner_loop_arc_is_intra_thread_for_outer() {
        let mut t = tracer();
        t.loop_enter(L0, 0, 0, 0);
        t.loop_enter(L1, 0, 0, 5);
        t.heap_store(0x300, 8, pc(0));
        t.loop_iter(L1, 10);
        t.heap_load(0x300, 12, pc(1)); // inner-loop carried
        t.loop_iter(L1, 15);
        t.loop_exit(L1, 16);
        t.loop_iter(L0, 20);
        t.loop_exit(L0, 22);
        let p = t.into_profile();
        assert_eq!(p.stl[&L1].arcs_t1, 1);
        assert_eq!(p.stl[&L0].arcs_t1, 0);
    }

    #[test]
    fn store_line_counting_and_overflow() {
        let cfg = TracerConfig {
            st_line_limit: 2,
            ..TracerConfig::default()
        };
        let mut t = TestTracer::new(cfg);
        t.loop_enter(L0, 0, 0, 0);
        t.loop_iter(L0, 1);
        // three distinct lines stored by one thread: exceeds limit 2
        t.heap_store(0x000, 2, pc(0));
        t.heap_store(0x020, 3, pc(0));
        t.heap_store(0x040, 4, pc(0));
        t.loop_iter(L0, 10);
        // one line only: fits
        t.heap_store(0x060, 12, pc(0));
        t.loop_iter(L0, 20);
        t.loop_exit(L0, 21);
        let p = t.into_profile();
        let s = &p.stl[&L0];
        assert_eq!(s.overflow_threads, 1);
        assert_eq!(s.max_st_lines, 3);
        assert_eq!(s.threads, 3);
    }

    #[test]
    fn repeated_access_to_one_line_counts_once() {
        let mut t = tracer();
        t.loop_enter(L0, 0, 0, 0);
        t.loop_iter(L0, 1);
        t.heap_load(0x100, 2, pc(0));
        t.heap_load(0x108, 3, pc(0)); // same line
        t.heap_load(0x118, 4, pc(0)); // same line
        t.loop_iter(L0, 10);
        t.loop_exit(L0, 11);
        let p = t.into_profile();
        assert_eq!(p.stl[&L0].max_ld_lines, 1);
    }

    #[test]
    fn line_reaccessed_across_threads_counts_again() {
        let mut t = tracer();
        t.loop_enter(L0, 0, 0, 0);
        t.heap_load(0x100, 2, pc(0));
        t.loop_iter(L0, 10);
        t.heap_load(0x100, 12, pc(0)); // new thread: counts anew
        t.loop_iter(L0, 20);
        t.loop_exit(L0, 21);
        let p = t.into_profile();
        assert_eq!(p.stl[&L0].max_ld_lines, 1);
        assert_eq!(p.stl[&L0].threads, 2);
    }

    #[test]
    fn bank_exhaustion_leaves_deep_loops_untraced() {
        let cfg = TracerConfig {
            n_banks: 1,
            ..TracerConfig::default()
        };
        let mut t = TestTracer::new(cfg);
        t.loop_enter(L0, 0, 0, 0);
        t.loop_enter(L1, 0, 0, 5); // no bank left
        t.loop_iter(L1, 8);
        t.loop_exit(L1, 10);
        t.loop_iter(L0, 12);
        t.loop_exit(L0, 15);
        let p = t.into_profile();
        assert_eq!(p.stl[&L0].entries, 1);
        assert_eq!(p.stl[&L1].entries, 0);
        assert_eq!(p.stl[&L1].untraced_entries, 1);
        assert_eq!(p.stl[&L1].threads, 0);
    }

    #[test]
    fn local_capacity_exhaustion_leaves_loop_untraced() {
        let cfg = TracerConfig {
            local_var_capacity: 2,
            ..TracerConfig::default()
        };
        let mut t = TestTracer::new(cfg);
        t.loop_enter(L0, 2, 1, 0); // fits exactly
        t.loop_enter(L1, 2, 9, 5); // different activation: no room
        t.loop_iter(L1, 8);
        t.loop_exit(L1, 10);
        t.loop_iter(L0, 12);
        t.loop_exit(L0, 15);
        let p = t.into_profile();
        assert_eq!(p.stl[&L0].entries, 1);
        assert_eq!(p.stl[&L1].untraced_entries, 1);
    }

    #[test]
    fn loop_cycles_accumulate_across_entries() {
        let mut t = tracer();
        t.loop_enter(L0, 0, 0, 0);
        t.loop_iter(L0, 10);
        t.loop_exit(L0, 12);
        t.loop_enter(L0, 0, 0, 100);
        t.loop_iter(L0, 130);
        t.loop_exit(L0, 134);
        let p = t.into_profile();
        let s = &p.stl[&L0];
        assert_eq!(s.entries, 2);
        assert_eq!(s.cycles, 12 + 34);
        assert_eq!(s.threads, 2);
    }

    #[test]
    fn unterminated_loop_is_closed_at_profile_end() {
        let mut t = tracer();
        t.loop_enter(L0, 0, 0, 0);
        t.loop_iter(L0, 50);
        // no eloop: program halted inside the loop
        let p = t.into_profile();
        assert_eq!(p.stl[&L0].cycles, 50);
    }

    #[test]
    fn fifo_eviction_hides_distant_dependencies() {
        // store history smaller than the working set: the arc is lost
        let cfg = TracerConfig {
            store_ts_lines: 2,
            ..TracerConfig::default()
        };
        let mut t = TestTracer::new(cfg);
        t.loop_enter(L0, 0, 0, 0);
        t.heap_store(0x100, 2, pc(0));
        t.heap_store(0x200, 3, pc(0));
        t.heap_store(0x300, 4, pc(0)); // evicts 0x100's line
        t.loop_iter(L0, 10);
        t.heap_load(0x100, 12, pc(1)); // real dep, invisible
        t.loop_iter(L0, 20);
        t.loop_exit(L0, 21);
        let p = t.into_profile();
        assert_eq!(p.stl[&L0].arcs_t1, 0);
        assert!(p.fifo_evictions > 0);
    }

    #[test]
    fn overflowing_bank_is_released_for_deeper_loops() {
        // one bank, outer loop overflowing every thread: after the
        // release threshold the inner loop finally gets traced
        let cfg = TracerConfig {
            n_banks: 1,
            st_line_limit: 1,
            overflow_release_threads: 2,
            ..TracerConfig::default()
        };
        let mut t = TestTracer::new(cfg);
        t.loop_enter(L0, 0, 0, 0);
        let mut now = 1;
        // two consecutive overflowing outer threads
        for _ in 0..2 {
            t.heap_store(0x000, now, pc(0));
            t.heap_store(0x020, now + 1, pc(0));
            t.heap_store(0x040, now + 2, pc(0));
            now += 10;
            t.loop_iter(L0, now);
        }
        // the bank is now free: a nested loop can claim it
        t.loop_enter(L1, 0, 0, now + 1);
        t.loop_iter(L1, now + 5);
        t.loop_exit(L1, now + 6);
        t.loop_iter(L0, now + 8);
        t.loop_exit(L0, now + 10);
        let p = t.into_profile();
        assert_eq!(p.stl[&L0].overflow_threads, 2);
        assert_eq!(p.stl[&L1].entries, 1, "inner loop must be traced");
        assert_eq!(p.stl[&L1].threads, 1);
    }

    #[test]
    fn sufficient_threads_stops_reallocation() {
        let cfg = TracerConfig {
            sufficient_threads: 2,
            ..TracerConfig::default()
        };
        let mut t = TestTracer::new(cfg);
        // first entry: two threads recorded
        t.loop_enter(L0, 0, 0, 0);
        t.loop_iter(L0, 10);
        t.loop_iter(L0, 20);
        t.loop_exit(L0, 21);
        // second entry: enough data, no bank allocated
        t.loop_enter(L0, 0, 0, 100);
        t.loop_iter(L0, 110);
        t.loop_exit(L0, 111);
        let p = t.into_profile();
        assert_eq!(p.stl[&L0].entries, 1);
        assert_eq!(p.stl[&L0].untraced_entries, 1);
        assert_eq!(p.stl[&L0].threads, 2);
    }

    #[test]
    fn analyzer_events_attribute_to_the_innermost_loop_and_sum_to_total() {
        let mut t = tracer();
        t.heap_store(0x500, 1, pc(0)); // outside any loop
        t.loop_enter(L0, 0, 0, 2); // sloop itself: still "outside"
        t.heap_store(0x100, 5, pc(1));
        t.loop_enter(L1, 0, 1, 6); // attributed to L0
        t.heap_load(0x100, 8, pc(2));
        t.loop_iter(L1, 9);
        t.loop_exit(L1, 10); // attributed to L1 (still on stack)
        t.loop_iter(L0, 12);
        t.loop_exit(L0, 14);
        t.heap_load(0x500, 20, pc(3)); // outside again
        let p = t.into_profile();
        let total: u64 = p.analyzer_events.values().sum();
        assert_eq!(total, p.events, "attribution partitions the stream");
        // sloop L0, first eloop fragment, and both pre/post events
        assert_eq!(p.analyzer_events[&None], 3);
        assert_eq!(p.analyzer_events[&Some(L0)], 4); // store, sloop L1, eoi, eloop L0
        assert_eq!(p.analyzer_events[&Some(L1)], 3); // load, eoi, eloop L1
    }

    #[test]
    fn watermarks_track_peak_structure_occupancy() {
        let mut t = tracer();
        t.loop_enter(L0, 0, 0, 0);
        t.loop_enter(L1, 0, 1, 1);
        t.heap_store(0x000, 2, pc(0));
        t.heap_store(0x100, 3, pc(0));
        t.loop_exit(L1, 5);
        t.loop_iter(L0, 6);
        t.loop_exit(L0, 8);
        let p = t.into_profile();
        assert_eq!(p.bank_watermark, 2, "both nested banks were live at once");
        assert_eq!(p.fifo_depth_watermark, 2, "two store lines buffered");
    }

    #[test]
    fn obs_hook_emits_samples_and_final_attribution_counters() {
        use obs::TrackEventKind;
        let trace = std::sync::Arc::new(obs::Trace::new());
        let mut t = tracer();
        t.set_obs(std::sync::Arc::clone(&trace), 2);
        t.loop_enter(L0, 0, 0, 0);
        t.heap_store(0x100, 2, pc(0));
        t.loop_iter(L0, 4);
        t.heap_load(0x100, 6, pc(1));
        t.loop_iter(L0, 8);
        t.loop_exit(L0, 9);
        let p = t.into_profile();

        let tracks = trace.tracks();
        assert_eq!(tracks.len(), 1);
        let track = &tracks[0];
        assert_eq!(track.name, "tracer");
        assert_eq!(track.domain, obs::TimeDomain::Cycles);
        let fifo_samples = track
            .events
            .iter()
            .filter(|e| matches!(&e.kind, TrackEventKind::Counter(n, _) if n == "fifo_depth"))
            .count();
        assert!(fifo_samples >= 2, "every 2nd event sampled");

        // the last analyzer.* counter per series matches the profile
        // and together they sum to the total event count
        let mut finals: BTreeMap<String, u64> = BTreeMap::new();
        for e in &track.events {
            if let TrackEventKind::Counter(name, v) = &e.kind {
                if name.starts_with("analyzer.") {
                    finals.insert(name.clone(), *v);
                }
            }
        }
        assert_eq!(finals.values().sum::<u64>(), p.events);
        assert_eq!(finals["analyzer.L0"], p.analyzer_events[&Some(L0)]);
    }

    #[test]
    fn self_profiling_does_not_perturb_analysis_results() {
        let feed = |t: &mut TestTracer| {
            t.loop_enter(L0, 0, 0, 0);
            t.heap_store(0x100, 10, pc(1));
            t.loop_iter(L0, 40);
            t.heap_load(0x100, 50, pc(3));
            t.loop_iter(L0, 60);
            t.loop_exit(L0, 61);
        };
        let mut plain = tracer();
        feed(&mut plain);
        let mut observed = tracer();
        observed.set_obs(std::sync::Arc::new(obs::Trace::new()), 1);
        feed(&mut observed);
        assert_eq!(plain.into_profile(), observed.into_profile());
    }

    #[test]
    fn consume_batch_matches_per_event_delivery() {
        // nested loops, releases, local vars and calls — every event
        // kind crosses the batch boundary at least once
        let events = vec![
            Event::LoopEnter(L0, 2, 7, 0),
            Event::LocalStore(0, 7, 2, pc(1)),
            Event::HeapStore(0x100, 10, pc(2)),
            Event::LoopEnter(L1, 0, 7, 12),
            Event::HeapStore(0x200, 14, pc(3)),
            Event::LoopIter(L1, 20),
            Event::HeapLoad(0x200, 22, pc(4)),
            Event::LoopIter(L1, 30),
            Event::LoopExit(L1, 31),
            Event::CallEnter(pc(5), 7, 32),
            Event::CallExit(pc(5), 35),
            Event::CallResultUse(pc(5), 36),
            Event::LoopIter(L0, 40),
            Event::HeapLoad(0x100, 50, pc(6)),
            Event::LocalLoad(0, 7, 52, pc(7)),
            Event::StatsRead(L0, 55),
            Event::LoopIter(L0, 60),
            Event::LoopExit(L0, 61),
        ];
        // split across two batches to exercise batch boundaries
        let (first, second) = events.split_at(events.len() / 2);
        let mut batches = Vec::new();
        for chunk in [first, second] {
            let mut b = EventBatch::with_capacity(chunk.len());
            for &e in chunk {
                b.push(e);
            }
            batches.push(b);
        }
        let mut via_default = tracer();
        for b in &batches {
            b.replay_into(&mut via_default);
        }
        let mut via_override = tracer();
        for b in &batches {
            via_override.consume_batch(b);
        }
        assert_eq!(via_default.into_profile(), via_override.into_profile());
    }

    #[test]
    fn pc_bins_record_consumer_sites() {
        let mut t = tracer();
        t.loop_enter(L0, 0, 0, 0);
        t.heap_store(0x100, 5, pc(3));
        t.loop_iter(L0, 10);
        t.heap_load(0x100, 12, pc(7));
        t.loop_iter(L0, 20);
        t.loop_exit(L0, 21);
        let p = t.into_profile();
        let hot = p.pc_bins.hottest(L0);
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].0, pc(7));
        assert_eq!(hot[0].1.count, 1);
    }
}
