//! Method-call-return decomposition analysis (paper §4.1's alternative
//! thread shape).
//!
//! "Speculative threads can be composed from loops, method call
//! returns, and general regions. … Our experiments so far have not
//! found many method call return or general region decompositions
//! that are either not covered by similar loop decompositions or have
//! significant coverage to impact total execution time."
//!
//! [`MethodTracer`] quantifies that claim for our workloads. A
//! method-call-return decomposition forks at a call: the callee runs
//! as one thread while the *continuation* (the code after the call)
//! speculates alongside it. The fork succeeds to the extent the
//! continuation's loads of callee-written data arrive late:
//!
//! * on `call`, the fork time is recorded (the analogue of a thread
//!   start timestamp);
//! * on return, a *continuation window* opens for as long as the
//!   callee ran — the span the continuation would overlap in
//!   speculative execution;
//! * loads inside the window whose producing store came from the
//!   callee interval form dependency arcs, and the first *use of the
//!   return value* forms an arc anchored at the return; the shortest
//!   arc per invocation is the critical one, exactly as in the loop
//!   analysis.
//!
//! The same comparator-bank hardware serves this analysis (the bank's
//! timestamps are just anchored at a call instead of `sloop`), so the
//! model shares the capacity limits of [`crate::tracer::TestTracer`]'s
//! structures where relevant (the store-timestamp FIFO).

use crate::buffers::StoreTimestampFifo;
use std::collections::BTreeMap;
use tvm::isa::Pc;
use tvm::trace::{Addr, Cycles, TraceSink};

/// Accumulated statistics for one call site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MethodStats {
    /// Completed invocations observed.
    pub invocations: u64,
    /// Total callee cycles.
    pub callee_cycles: u64,
    /// Invocations whose continuation window carried a dependency arc.
    pub dependent_invocations: u64,
    /// Sum of the critical (shortest) arc per dependent invocation.
    pub arc_len_sum: u64,
}

impl MethodStats {
    /// Mean callee duration.
    pub fn avg_callee_cycles(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.callee_cycles as f64 / self.invocations as f64
        }
    }

    /// Fraction of invocations with a callee→continuation dependency.
    pub fn dependence_freq(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.dependent_invocations as f64 / self.invocations as f64
        }
    }

    /// Mean critical arc length over dependent invocations.
    pub fn avg_arc_len(&self) -> f64 {
        if self.dependent_invocations == 0 {
            0.0
        } else {
            self.arc_len_sum as f64 / self.dependent_invocations as f64
        }
    }

    /// Estimated speedup of forking this site, over the
    /// callee + continuation-window span. With callee duration `D` and
    /// critical arc `d`, the continuation can start `min(d, D)` early:
    /// sequential `2D` shrinks to `2D − overlap + C` when dependent,
    /// where independent invocations overlap fully.
    pub fn estimated_speedup(&self, comm_delay: u64) -> f64 {
        let d_callee = self.avg_callee_cycles();
        if d_callee <= 0.0 {
            return 1.0;
        }
        let seq = 2.0 * d_callee;
        let freq = self.dependence_freq();
        let overlap_dep = self.avg_arc_len().min(d_callee);
        let spec_dep = (seq - overlap_dep + comm_delay as f64).max(d_callee);
        let spec_free = d_callee.max(seq / 2.0); // full overlap
        let spec = freq * spec_dep + (1.0 - freq) * spec_free;
        (seq / spec).max(1.0)
    }

    /// Cycles this site's forks could overlap in total (its coverage
    /// numerator: one callee-duration per invocation).
    pub fn overlap_cycles(&self) -> u64 {
        self.callee_cycles
    }
}

/// An open continuation window (fork candidate being measured).
#[derive(Debug, Clone, Copy)]
struct Window {
    site: Pc,
    t_call: Cycles,
    t_ret: Cycles,
    /// window end: t_ret + callee duration
    end: Cycles,
    min_arc: Option<Cycles>,
}

/// The method-decomposition profiler. Drive it exactly like the loop
/// tracer (it is a [`TraceSink`]); no annotations are required — call
/// events come from the call/return units.
#[derive(Debug)]
pub struct MethodTracer {
    fifo: StoreTimestampFifo,
    /// call stack of (site, activation, t_call)
    calls: Vec<(Pc, u32, Cycles)>,
    /// continuation windows being measured (bounded, like banks)
    windows: Vec<Window>,
    max_windows: usize,
    stats: BTreeMap<Pc, MethodStats>,
    end_time: Cycles,
}

impl Default for MethodTracer {
    fn default() -> Self {
        Self::new()
    }
}

impl MethodTracer {
    /// Creates a tracer with the paper's store-timestamp history (192
    /// lines) and one window per comparator bank (8).
    pub fn new() -> MethodTracer {
        MethodTracer {
            fifo: StoreTimestampFifo::new(192),
            calls: Vec::new(),
            windows: Vec::new(),
            max_windows: 8,
            stats: BTreeMap::new(),
            end_time: 0,
        }
    }

    fn expire(&mut self, now: Cycles) {
        let mut i = 0;
        while i < self.windows.len() {
            if self.windows[i].end <= now {
                let w = self.windows.swap_remove(i);
                let s = self.stats.entry(w.site).or_default();
                s.invocations += 1;
                s.callee_cycles += w.t_ret - w.t_call;
                if let Some(a) = w.min_arc {
                    s.dependent_invocations += 1;
                    s.arc_len_sum += a;
                }
            } else {
                i += 1;
            }
        }
    }

    /// Finalizes the analysis and returns per-site statistics.
    pub fn into_stats(mut self) -> BTreeMap<Pc, MethodStats> {
        let end = self.end_time;
        self.expire(end.saturating_add(u64::MAX / 2));
        self.stats
    }
}

impl TraceSink for MethodTracer {
    fn heap_load(&mut self, addr: Addr, now: Cycles, _pc: Pc) {
        self.end_time = self.end_time.max(now);
        self.expire(now);
        if self.windows.is_empty() {
            return;
        }
        let Some(ts) = self.fifo.lookup(addr) else {
            return;
        };
        for w in &mut self.windows {
            // producer inside the callee, consumer inside the window
            if ts >= w.t_call && ts <= w.t_ret && now > w.t_ret {
                let arc = now - ts;
                w.min_arc = Some(w.min_arc.map_or(arc, |m| m.min(arc)));
            }
        }
    }

    fn heap_store(&mut self, addr: Addr, now: Cycles, _pc: Pc) {
        self.end_time = self.end_time.max(now);
        self.expire(now);
        self.fifo.record(addr, now);
    }

    fn call_enter(&mut self, site: Pc, activation: u32, now: Cycles) {
        self.end_time = self.end_time.max(now);
        self.expire(now);
        self.calls.push((site, activation, now));
    }

    fn call_result_use(&mut self, site: Pc, now: Cycles) {
        self.end_time = self.end_time.max(now);
        self.expire(now);
        // the continuation needs the return value `now - t_ret` cycles
        // into its window: that slack is the overlap ceiling, exactly
        // like a heap arc of the same length anchored at the return
        for w in self.windows.iter_mut().rev() {
            if w.site == site && now > w.t_ret && now <= w.end {
                let arc = now - w.t_ret;
                w.min_arc = Some(w.min_arc.map_or(arc, |m| m.min(arc)));
                break;
            }
        }
    }

    fn call_exit(&mut self, site: Pc, now: Cycles) {
        self.end_time = self.end_time.max(now);
        self.expire(now);
        // unwind to the matching site (robust against halts mid-call)
        while let Some((s, _, t_call)) = self.calls.pop() {
            if s != site {
                continue;
            }
            let dur = now.saturating_sub(t_call);
            if dur == 0 {
                return;
            }
            if self.windows.len() < self.max_windows {
                self.windows.push(Window {
                    site,
                    t_call,
                    t_ret: now,
                    end: now + dur,
                    min_arc: None,
                });
            }
            return;
        }
    }
}

/// A ranked report row for the §4.1 comparison.
#[derive(Debug, Clone, Copy)]
pub struct MethodSite {
    /// The call instruction.
    pub site: Pc,
    /// Its statistics.
    pub stats: MethodStats,
    /// Estimated fork speedup.
    pub speedup: f64,
    /// Fraction of program cycles its forks could overlap.
    pub coverage: f64,
}

/// Ranks call sites by potential saved cycles
/// (`coverage × (1 − 1/speedup)`), the §4.1 comparison criterion.
pub fn rank_sites(
    stats: &BTreeMap<Pc, MethodStats>,
    total_cycles: u64,
    comm_delay: u64,
) -> Vec<MethodSite> {
    let mut v: Vec<MethodSite> = stats
        .iter()
        .map(|(&site, &s)| {
            let speedup = s.estimated_speedup(comm_delay);
            MethodSite {
                site,
                stats: s,
                speedup,
                coverage: if total_cycles == 0 {
                    0.0
                } else {
                    s.overlap_cycles() as f64 / total_cycles as f64
                },
            }
        })
        .collect();
    v.sort_by(|a, b| {
        let ka = a.coverage * (1.0 - 1.0 / a.speedup);
        let kb = b.coverage * (1.0 - 1.0 / b.speedup);
        kb.partial_cmp(&ka).unwrap_or(std::cmp::Ordering::Equal)
    });
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::isa::FuncId;

    fn pc(idx: u32) -> Pc {
        Pc {
            func: FuncId(0),
            idx,
        }
    }

    #[test]
    fn independent_callee_forks_at_two_x() {
        let mut t = MethodTracer::new();
        // 10 invocations of a 100-cycle callee; continuation never
        // touches callee data
        let mut now = 0;
        for _ in 0..10 {
            t.call_enter(pc(5), 1, now);
            t.heap_store(0x100, now + 50, pc(6));
            now += 100;
            t.call_exit(pc(5), now);
            // continuation reads unrelated data
            t.heap_load(0x900, now + 10, pc(7));
            now += 100;
        }
        // force the last window closed
        t.heap_store(0xF00, now + 1000, pc(8));
        let stats = t.into_stats();
        let s = &stats[&pc(5)];
        assert_eq!(s.invocations, 10);
        assert_eq!(s.dependent_invocations, 0);
        assert!((s.avg_callee_cycles() - 100.0).abs() < 1e-9);
        assert!((s.estimated_speedup(10) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dependent_continuation_limits_the_fork() {
        let mut t = MethodTracer::new();
        let mut now = 0;
        for _ in 0..10 {
            t.call_enter(pc(5), 1, now);
            now += 100;
            // callee stores its result at the very end
            t.heap_store(0x100, now - 1, pc(6));
            t.call_exit(pc(5), now);
            // continuation reads it immediately
            t.heap_load(0x100, now + 2, pc(7));
            now += 100;
        }
        t.heap_store(0xF00, now + 1000, pc(8));
        let stats = t.into_stats();
        let s = &stats[&pc(5)];
        assert_eq!(s.invocations, 10);
        assert_eq!(s.dependent_invocations, 10);
        assert!(s.avg_arc_len() < 10.0);
        assert!(s.estimated_speedup(10) < 1.1, "{}", s.estimated_speedup(10));
    }

    #[test]
    fn late_continuation_reads_keep_overlap() {
        let mut t = MethodTracer::new();
        let mut now = 0;
        for _ in 0..5 {
            t.call_enter(pc(5), 1, now);
            t.heap_store(0x100, now + 5, pc(6)); // stored early
            now += 100;
            t.call_exit(pc(5), now);
            t.heap_load(0x100, now + 90, pc(7)); // read late
            now += 100;
        }
        t.heap_store(0xF00, now + 1000, pc(8));
        let stats = t.into_stats();
        let s = &stats[&pc(5)];
        assert_eq!(s.dependent_invocations, 5);
        // arc ~185 cycles on a 100-cycle callee: nearly full overlap
        assert!(s.estimated_speedup(10) > 1.8, "{}", s.estimated_speedup(10));
    }

    #[test]
    fn return_value_use_forms_an_arc() {
        let mut t = MethodTracer::new();
        let mut now = 0;
        for _ in 0..5 {
            t.call_enter(pc(5), 1, now);
            now += 100;
            t.call_exit(pc(5), now);
            // the return value is consumed 80 cycles into the window
            t.call_result_use(pc(5), now + 80);
            now += 100;
        }
        t.heap_store(0xF00, now + 1000, pc(9));
        let stats = t.into_stats();
        let s = &stats[&pc(5)];
        assert_eq!(s.dependent_invocations, 5);
        assert!((s.avg_arc_len() - 80.0).abs() < 1e-9);
        // 80 of 100 cycles overlap: close to the 2x ceiling
        assert!(s.estimated_speedup(10) > 1.5, "{}", s.estimated_speedup(10));
    }

    #[test]
    fn result_use_beyond_the_window_is_free() {
        let mut t = MethodTracer::new();
        t.call_enter(pc(5), 1, 0);
        t.call_exit(pc(5), 100);
        // consumed long after the window [100, 200] closed
        t.call_result_use(pc(5), 900);
        t.heap_store(0xF00, 5000, pc(9));
        let stats = t.into_stats();
        assert_eq!(stats[&pc(5)].dependent_invocations, 0);
    }

    #[test]
    fn nested_calls_are_tracked_independently() {
        let mut t = MethodTracer::new();
        t.call_enter(pc(1), 1, 0);
        t.call_enter(pc(2), 2, 10);
        t.call_exit(pc(2), 40); // inner: 30 cycles
        t.call_exit(pc(1), 100); // outer: 100 cycles
        t.heap_store(0xF00, 5000, pc(9));
        let stats = t.into_stats();
        assert_eq!(stats[&pc(1)].invocations, 1);
        assert_eq!(stats[&pc(2)].invocations, 1);
        assert_eq!(stats[&pc(2)].callee_cycles, 30);
        assert_eq!(stats[&pc(1)].callee_cycles, 100);
    }

    #[test]
    fn ranking_prefers_covering_parallel_sites() {
        let mut stats = BTreeMap::new();
        stats.insert(
            pc(1),
            MethodStats {
                invocations: 100,
                callee_cycles: 50_000,
                dependent_invocations: 0,
                arc_len_sum: 0,
            },
        );
        stats.insert(
            pc(2),
            MethodStats {
                invocations: 100,
                callee_cycles: 80_000,
                dependent_invocations: 100,
                arc_len_sum: 100, // immediate dependence
            },
        );
        let ranked = rank_sites(&stats, 1_000_000, 10);
        assert_eq!(ranked[0].site, pc(1));
        assert!(ranked[0].speedup > ranked[1].speedup);
    }

    #[test]
    fn replayed_call_events_reproduce_direct_stats() {
        use tvm::record::{Event, Recording};
        use tvm::TraceSink;

        // a call-heavy stream with result uses, as the interpreter
        // would emit it
        let mut events = Vec::new();
        let mut now = 0;
        for i in 0..8 {
            events.push(Event::CallEnter(pc(5), i, now));
            events.push(Event::HeapStore(0x100 + 8 * i, now + 40, pc(6)));
            now += 90;
            events.push(Event::CallExit(pc(5), now));
            events.push(Event::HeapLoad(0x100 + 8 * i, now + 5, pc(7)));
            events.push(Event::CallResultUse(pc(5), now + 7));
            now += 90;
        }
        events.push(Event::HeapStore(0xF00, now + 1000, pc(8)));
        let recording = Recording { events };

        let mut direct = MethodTracer::new();
        for e in &recording.events {
            match *e {
                Event::CallEnter(s, a, t) => direct.call_enter(s, a, t),
                Event::CallExit(s, t) => direct.call_exit(s, t),
                Event::CallResultUse(s, t) => direct.call_result_use(s, t),
                Event::HeapLoad(a, t, p) => direct.heap_load(a, t, p),
                Event::HeapStore(a, t, p) => direct.heap_store(a, t, p),
                _ => unreachable!(),
            }
        }

        // whole-recording replay and batched bus replay must both
        // produce identical method statistics
        let mut replayed = MethodTracer::new();
        recording.replay(&mut replayed);
        let mut batched = MethodTracer::new();
        for b in recording.to_batches(3) {
            b.replay_into(&mut batched);
        }

        let want = direct.into_stats();
        assert!(want[&pc(5)].invocations == 8);
        assert_eq!(replayed.into_stats(), want);
        assert_eq!(batched.into_stats(), want);
    }
}
