//! # test-tracer — the Tracer for Extracting Speculative Threads
//!
//! A functional, cycle-faithful model of **TEST**, the hardware profiler
//! of *TEST: A Tracer for Extracting Speculative Threads* (Chen &
//! Olukotun, CGO 2003). TEST watches a sequentially executing program
//! and, for every candidate speculative thread loop (STL), estimates how
//! it would perform under thread-level speculation on the 4-CPU Hydra
//! chip-multiprocessor.
//!
//! The model reproduces the hardware structures of the paper's §5 with
//! their real capacities and indexing, *including their imprecision* —
//! limited store-timestamp history, direct-mapped aliasing, and two-bin
//! dependency history are part of what the paper evaluates:
//!
//! * [`buffers::StoreTimestampFifo`] — the speculation store buffers
//!   repurposed during profiling as a 192-line FIFO of heap store
//!   timestamps (§5.3);
//! * [`buffers::LineTimestampTable`] — direct-mapped cache-line
//!   timestamp tables for the speculative-state overflow analysis
//!   (Figure 4's bit slices: 512 entries for load state, 64 for store
//!   state);
//! * [`buffers::LocalVarTimestamps`] — the 64-entry local-variable
//!   store-timestamp table reserved/freed by `sloop`/`eloop`;
//! * [`tracer::TestTracer`] — the comparator-bank array (Figure 7)
//!   implementing the load dependency analysis (§4.2.1) and the
//!   speculative state overflow analysis (§4.2.2), plus the extended
//!   per-PC dependency binning of Figure 8b;
//! * [`mod@estimate`] — the STL speedup estimator (Equation 1);
//! * [`mod@select`] — optimal decomposition selection over the dynamic
//!   loop forest (Equation 2);
//! * [`software::SoftwareTracer`] — the software-only profiling
//!   baseline the paper compares against (>100× modelled slowdown),
//!   which doubles as an exact oracle for testing the hardware model;
//! * [`hwcost`] — the transistor-budget model behind Table 5's "<1 %
//!   of the CMP" claim.
//!
//! The tracer consumes the [`tvm::TraceSink`] event stream produced by
//! running annotated bytecode on the TraceVM interpreter.
//!
//! ```
//! use test_tracer::tracer::TestTracer;
//! use test_tracer::config::TracerConfig;
//! use tvm::TraceSink;
//! use tvm::isa::{LoopId, Pc, FuncId};
//!
//! let mut t = TestTracer::new(TracerConfig::default());
//! let pc = Pc { func: FuncId(0), idx: 0 };
//! // one STL entry with two iterations and a loop-carried dependency
//! t.loop_enter(LoopId(0), 0, 0, 100);
//! t.heap_store(0x1000, 110, pc);
//! t.loop_iter(LoopId(0), 120); // thread boundary
//! t.heap_load(0x1000, 130, pc); // reads previous iteration's store
//! t.loop_iter(LoopId(0), 140);
//! t.loop_exit(LoopId(0), 150);
//! let profile = t.into_profile();
//! let stats = &profile.stl[&LoopId(0)];
//! assert_eq!(stats.threads, 2);
//! assert_eq!(stats.arcs_t1, 1);
//! assert_eq!(stats.arc_len_sum_t1, 20); // 130 - 110
//! ```

pub mod buffers;
pub mod config;
pub mod estimate;
pub mod hwcost;
pub mod methods;
pub mod pcbins;
pub mod select;
pub mod software;
pub mod stats;
pub mod tracer;
pub mod window;

pub use config::TracerConfig;
pub use estimate::{estimate, Estimate, EstimatorParams};
pub use methods::{rank_sites, MethodStats, MethodTracer};
pub use select::{select, select_with_distances, select_with_priors, ChosenStl, SelectionResult};
pub use software::SoftwareTracer;
pub use stats::{Profile, StlStats};
pub use tracer::TestTracer;
pub use window::SelectionWindow;
