//! Extended TEST implementation: per-PC dependency binning.
//!
//! The base comparator bank only accumulates aggregate critical-arc
//! counters. The extended implementation (Figure 8b) replaces the
//! critical-arc registers with a content-addressable SRAM so that arc
//! lengths and counts can be *binned by the load instruction's PC* —
//! the statistics §6.3 uses to point compilers and programmers at the
//! one or two accesses that serialize a loop.

use std::collections::BTreeMap;
use tvm::isa::{LoopId, Pc};
use tvm::trace::Cycles;

/// Aggregated dependency-arc statistics for one load site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcBin {
    /// Number of dependency arcs whose consumer was this load.
    pub count: u64,
    /// Sum of arc lengths (cycles).
    pub len_sum: u64,
    /// Shortest arc observed.
    pub min_len: Cycles,
    /// Arcs that crossed more than one thread boundary (< t-1).
    pub distant: u64,
}

impl PcBin {
    /// Mean arc length.
    pub fn avg_len(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.len_sum as f64 / self.count as f64
        }
    }
}

/// The CAM/SRAM bin table. Capacity-limited like the hardware: once
/// full, arcs at unseen PCs are dropped (and counted).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PcBins {
    bins: BTreeMap<(LoopId, Pc), PcBin>,
    capacity: usize,
    /// Arcs dropped because the table was full.
    pub dropped: u64,
}

impl PcBins {
    /// Creates a table with room for `capacity` distinct
    /// (loop, load-PC) bins. Capacity 0 disables binning.
    pub fn new(capacity: usize) -> Self {
        PcBins {
            bins: BTreeMap::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records one dependency arc observed at `pc` for `loop_id`.
    pub fn record(&mut self, loop_id: LoopId, pc: Pc, len: Cycles, distant: bool) {
        if self.capacity == 0 {
            return;
        }
        let key = (loop_id, pc);
        if !self.bins.contains_key(&key) && self.bins.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        let bin = self.bins.entry(key).or_insert(PcBin {
            count: 0,
            len_sum: 0,
            min_len: Cycles::MAX,
            distant: 0,
        });
        bin.count += 1;
        bin.len_sum += len;
        bin.min_len = bin.min_len.min(len);
        if distant {
            bin.distant += 1;
        }
    }

    /// The bin for a specific load site, if any arc was recorded.
    pub fn bin(&self, loop_id: LoopId, pc: Pc) -> Option<&PcBin> {
        self.bins.get(&(loop_id, pc))
    }

    /// All bins for one loop, most frequent first — the "which access
    /// serializes this loop" report of §6.3.
    pub fn hottest(&self, loop_id: LoopId) -> Vec<(Pc, PcBin)> {
        let mut v: Vec<(Pc, PcBin)> = self
            .bins
            .iter()
            .filter(|((l, _), _)| *l == loop_id)
            .map(|((_, pc), bin)| (*pc, *bin))
            .collect();
        v.sort_by_key(|(_, bin)| std::cmp::Reverse(bin.count));
        v
    }

    /// Number of live bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::isa::FuncId;

    fn pc(idx: u32) -> Pc {
        Pc {
            func: FuncId(0),
            idx,
        }
    }

    #[test]
    fn record_aggregates_per_site() {
        let mut b = PcBins::new(4);
        b.record(LoopId(0), pc(5), 100, false);
        b.record(LoopId(0), pc(5), 50, true);
        let bin = b.bin(LoopId(0), pc(5)).unwrap();
        assert_eq!(bin.count, 2);
        assert_eq!(bin.len_sum, 150);
        assert_eq!(bin.min_len, 50);
        assert_eq!(bin.distant, 1);
        assert_eq!(bin.avg_len(), 75.0);
    }

    #[test]
    fn capacity_drops_new_sites_only() {
        let mut b = PcBins::new(1);
        b.record(LoopId(0), pc(1), 10, false);
        b.record(LoopId(0), pc(2), 20, false); // dropped
        b.record(LoopId(0), pc(1), 30, false); // existing site still updates
        assert_eq!(b.len(), 1);
        assert_eq!(b.dropped, 1);
        assert_eq!(b.bin(LoopId(0), pc(1)).unwrap().count, 2);
    }

    #[test]
    fn hottest_sorts_by_count() {
        let mut b = PcBins::new(8);
        b.record(LoopId(3), pc(1), 10, false);
        b.record(LoopId(3), pc(2), 10, false);
        b.record(LoopId(3), pc(2), 10, false);
        b.record(LoopId(4), pc(9), 10, false);
        let h = b.hottest(LoopId(3));
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].0, pc(2));
    }

    #[test]
    fn zero_capacity_disables() {
        let mut b = PcBins::new(0);
        b.record(LoopId(0), pc(1), 10, false);
        assert!(b.is_empty());
        assert_eq!(b.dropped, 0);
    }
}
