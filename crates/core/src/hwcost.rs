//! Transistor-budget model — the paper's Table 5 and the "<1 % of the
//! CMP" claim.
//!
//! The paper estimates that TEST adds less than one percent to the
//! transistor count of the Hydra CMP with TLS support. This module
//! reproduces that estimate parametrically: SRAM arrays at 6T/bit, CAM
//! arrays at ~10T/bit, and registers, comparators, counters and adders
//! from standard-cell gate counts, composed into the same structures
//! the paper lists (CPU cores, L1/L2 caches, write buffers, comparator
//! banks).

/// Transistor-count constants for the building blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostParams {
    /// Transistors per SRAM bit (6T cell).
    pub sram_bit: u64,
    /// Transistors per CAM bit (match logic included).
    pub cam_bit: u64,
    /// Transistors per register (flip-flop) bit.
    pub reg_bit: u64,
    /// Transistors per comparator bit (XOR + carry chain).
    pub comparator_bit: u64,
    /// Transistors per counter bit (flop + increment logic).
    pub counter_bit: u64,
    /// Transistors per adder bit.
    pub adder_bit: u64,
    /// Fixed control/decode overhead per structured block.
    pub control_overhead: u64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            sram_bit: 6,
            cam_bit: 10,
            reg_bit: 24,
            comparator_bit: 8,
            counter_bit: 30,
            adder_bit: 28,
            control_overhead: 5_000,
        }
    }
}

/// One row of the Table 5 reproduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructureCost {
    /// Structure name as in the paper's table.
    pub name: &'static str,
    /// Instances on the die.
    pub count: u64,
    /// Transistors per instance.
    pub each: u64,
}

impl StructureCost {
    /// Total transistors contributed by this structure.
    pub fn total(&self) -> u64 {
        self.count * self.each
    }
}

/// The full Table 5 breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmpBudget {
    /// All structures, in the paper's row order.
    pub rows: Vec<StructureCost>,
}

impl CmpBudget {
    /// Grand total transistor count.
    pub fn total(&self) -> u64 {
        self.rows.iter().map(StructureCost::total).sum()
    }

    /// Fraction of the total contributed by a named structure.
    pub fn share(&self, name: &str) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        self.rows
            .iter()
            .filter(|r| r.name == name)
            .map(StructureCost::total)
            .sum::<u64>() as f64
            / t as f64
    }
}

/// Transistors for an SRAM array of `bytes` bytes.
fn sram(params: &CostParams, bytes: u64) -> u64 {
    bytes * 8 * params.sram_bit
}

/// One speculation write buffer: 2 kB of line SRAM plus fully
/// associative tags (64 entries × ~22-bit tags in CAM) plus per-word
/// valid/modified bits and control.
pub fn write_buffer_transistors(params: &CostParams) -> u64 {
    let data = sram(params, 2 * 1024);
    let tags = 64 * 22 * params.cam_bit;
    let state_bits = 64 * (4 * 2) * params.reg_bit; // valid+dirty per word
    let priority_encoders = 40_000; // drain/forwarding match logic
    data + tags + state_bits + priority_encoders + params.control_overhead
}

/// One TEST comparator bank (Figure 7): thread-start registers, the
/// comparator column, the critical-arc calculation block and the
/// statistics counters.
pub fn comparator_bank_transistors(params: &CostParams) -> u64 {
    let ts_bits = 32;
    // thread start timestamps (0, t-1, t), last-line LD/ST registers,
    // last store timestamp
    let regs = 6 * ts_bits * params.reg_bit;
    // Figure 7 shows 8 comparators per bank
    let comparators = 8 * ts_bits * params.comparator_bit;
    // counters: # cycles, threads, entries, arcs ×2, accum lengths ×2,
    // loaded/stored lines, overflows, plus the two buffer-limit checks
    let counters = 12 * ts_bits * params.counter_bit;
    // arc-length subtract/accumulate datapath
    let adders = 3 * ts_bits * params.adder_bit;
    // critical-arc calculation block: pipeline registers, result muxing
    // and the CAM/SRAM access path it shares across banks (Figure 8)
    let arc_block = 11_000;
    regs + comparators + counters + adders + arc_block + params.control_overhead
}

/// Builds the Table 5 budget for the default Hydra configuration:
/// 4 CPUs with FP (a given constant, as in the paper), 4 × (16 kB I +
/// 16 kB D) L1, one 2 MB L2, 5 write buffers, and `n_banks` comparator
/// banks.
pub fn hydra_budget(params: &CostParams, n_banks: u64) -> CmpBudget {
    let l1_per_cpu = sram(params, 32 * 1024) + 2 * params.control_overhead;
    CmpBudget {
        rows: vec![
            StructureCost {
                name: "CPU + FP core",
                count: 4,
                each: 2_500_000,
            },
            StructureCost {
                name: "16kB I / 16kB D cache",
                count: 4,
                each: l1_per_cpu,
            },
            StructureCost {
                name: "2MB L2 cache",
                count: 1,
                each: sram(params, 2 * 1024 * 1024),
            },
            StructureCost {
                name: "Write buffer",
                count: 5,
                each: write_buffer_transistors(params),
            },
            StructureCost {
                name: "Comparator bank",
                count: n_banks,
                each: comparator_bank_transistors(params),
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_and_l2_match_paper_values() {
        let p = CostParams::default();
        let b = hydra_budget(&p, 8);
        let l1 = b.rows.iter().find(|r| r.name.contains("16kB")).unwrap();
        let l2 = b.rows.iter().find(|r| r.name.contains("L2")).unwrap();
        // paper: 1573K per L1 pair, 98304K (K=1024) for L2
        assert!(
            (l1.each as i64 - 1_573_000).unsigned_abs() < 30_000,
            "{}",
            l1.each
        );
        assert_eq!(l2.each, 2 * 1024 * 1024 * 8 * 6);
        assert_eq!(l2.each, 98_304 * 1024);
    }

    #[test]
    fn write_buffer_is_near_paper_estimate() {
        let p = CostParams::default();
        let wb = write_buffer_transistors(&p);
        // paper: 172K each
        assert!((wb as i64 - 172_000).unsigned_abs() < 30_000, "{wb}");
    }

    #[test]
    fn comparator_bank_is_near_paper_estimate() {
        let p = CostParams::default();
        let cb = comparator_bank_transistors(&p);
        // paper: 39K each
        assert!((cb as i64 - 39_000).unsigned_abs() < 10_000, "{cb}");
    }

    #[test]
    fn test_hardware_is_under_one_percent() {
        let p = CostParams::default();
        let b = hydra_budget(&p, 8);
        // the paper's headline claim
        assert!(b.share("Comparator bank") < 0.01);
        // and the overall total is in the paper's ballpark (115.8M)
        let total = b.total();
        assert!((100_000_000..130_000_000).contains(&total), "{total}");
    }

    #[test]
    fn shares_sum_to_one() {
        let p = CostParams::default();
        let b = hydra_budget(&p, 8);
        let sum: f64 = [
            "CPU + FP core",
            "16kB I / 16kB D cache",
            "2MB L2 cache",
            "Write buffer",
            "Comparator bank",
        ]
        .iter()
        .map(|n| b.share(n))
        .sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
