//! Tracer hardware configuration (paper §5, Tables 1 and 5).

/// Capacities of the TEST hardware structures.
///
/// Defaults reproduce the paper's implementation: eight comparator
/// banks; the five 2 kB speculation store buffers statically
/// partitioned into three buffers of heap store timestamps (192 lines),
/// one of cache-line timestamps and one of local-variable timestamps
/// (64 entries); and the Table 1 speculative buffer limits the overflow
/// analysis checks against (512 load lines in L1, 64 store-buffer
/// lines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracerConfig {
    /// Number of comparator banks (concurrently traceable STLs).
    pub n_banks: usize,
    /// Heap store-timestamp FIFO capacity, in 32 B lines (3 × 2 kB
    /// buffers = 192 lines, §5.3).
    pub store_ts_lines: usize,
    /// Entries in the direct-mapped load-side cache-line timestamp
    /// table (Figure 4 indexes loads with address bits 13:5 → 512).
    pub ld_table_entries: usize,
    /// Entries in the direct-mapped store-side table (bits 10:5 → 64).
    pub st_table_entries: usize,
    /// Local-variable store-timestamp slots (one 2 kB buffer, 64
    /// entries).
    pub local_var_capacity: usize,
    /// Per-thread speculative load state limit in lines (Table 1:
    /// 16 kB / 32 B = 512).
    pub ld_line_limit: u32,
    /// Per-thread store buffer limit in lines (Table 1: 2 kB / 32 B =
    /// 64).
    pub st_line_limit: u32,
    /// Capacity of the extended implementation's per-PC dependency
    /// bins (the CAM/SRAM of Figure 8b). `0` disables the extension.
    pub pc_bin_capacity: usize,
    /// Adaptive bank policy (§5.2): free a bank after this many
    /// *consecutive* overflowing threads, so it can serve loops deeper
    /// in the nest ("when a comparator bank consistently predicts
    /// speculative buffer overflows for an outer STL, it can be freed
    /// to be used deeper in a loop nest"). `0` disables the policy.
    pub overflow_release_threads: u64,
    /// Adaptive annotation policy (§5.2): once a loop has this many
    /// recorded threads, stop allocating banks for it (the runtime
    /// would overwrite its annotations with `nop`s), guaranteeing
    /// deeply nested decompositions eventually get analyzed. `0`
    /// disables the policy.
    pub sufficient_threads: u64,
}

impl Default for TracerConfig {
    fn default() -> Self {
        TracerConfig {
            n_banks: 8,
            store_ts_lines: 192,
            ld_table_entries: 512,
            st_table_entries: 64,
            local_var_capacity: 64,
            ld_line_limit: 512,
            st_line_limit: 64,
            pc_bin_capacity: 256,
            overflow_release_threads: 16,
            sufficient_threads: 0,
        }
    }
}

impl TracerConfig {
    /// A configuration with effectively unbounded structures — the
    /// "ideal hardware" used to quantify how much precision the real
    /// capacities give up (paper §6.2).
    pub fn unbounded() -> Self {
        TracerConfig {
            n_banks: 64,
            store_ts_lines: usize::MAX / 2,
            ld_table_entries: 1 << 20,
            st_table_entries: 1 << 20,
            local_var_capacity: usize::MAX / 2,
            ld_line_limit: 512,
            st_line_limit: 64,
            pc_bin_capacity: 1 << 16,
            overflow_release_threads: 0,
            sufficient_threads: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = TracerConfig::default();
        assert_eq!(c.n_banks, 8);
        assert_eq!(c.store_ts_lines, 192); // 6 kB of 32 B lines
        assert_eq!(c.ld_table_entries, 512);
        assert_eq!(c.st_table_entries, 64);
        assert_eq!(c.local_var_capacity, 64);
        // Table 1: 16 kB load buffer, 2 kB store buffer, 32 B lines
        assert_eq!(c.ld_line_limit * 32, 16 * 1024);
        assert_eq!(c.st_line_limit * 32, 2 * 1024);
    }

    #[test]
    fn tables_are_powers_of_two() {
        let c = TracerConfig::default();
        assert!(c.ld_table_entries.is_power_of_two());
        assert!(c.st_table_entries.is_power_of_two());
    }
}
