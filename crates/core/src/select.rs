//! Optimal decomposition selection — the paper's Equation 2 (§4.3).
//!
//! Only one thread decomposition can be active at a time: selecting a
//! loop as an STL forbids speculating on any loop nested (dynamically)
//! inside it. Equation 2 therefore compares, for every loop, its own
//! estimated TLS time against the best achievable by its nested
//! decompositions plus the serial remainder:
//!
//! ```text
//! best(l) = min( est_tls(l),
//!                cycles(l) − Σ_c cycles(c) + Σ_c best(c),
//!                cycles(l) )                        // run it serially
//! ```
//!
//! computed bottom-up over the *dynamic* loop forest TEST observed
//! (nesting across method calls included). A loop entered from several
//! contexts is attached to its most frequent parent — a documented
//! approximation of the runtime system's behavior.

use crate::estimate::{estimate, Estimate, EstimatorParams};
use crate::stats::Profile;
use std::collections::{BTreeMap, BTreeSet};
use tvm::isa::LoopId;

/// One selected decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChosenStl {
    /// The loop to recompile speculatively.
    pub loop_id: LoopId,
    /// Its Equation 1 estimate.
    pub estimate: Estimate,
    /// Sequential cycles it covered during profiling.
    pub cycles: u64,
    /// Fraction of total program cycles it covered.
    pub coverage: f64,
}

/// The outcome of Equation 2 over a whole profile.
#[derive(Debug, Clone, Default)]
pub struct SelectionResult {
    /// Selected STLs, by decreasing coverage.
    pub chosen: Vec<ChosenStl>,
    /// Total sequential cycles of the profiled run.
    pub total_cycles: u64,
    /// Predicted whole-program cycles with the chosen STLs running
    /// speculatively and everything else serial.
    pub predicted_cycles: u64,
    /// Per-loop estimates for every traced loop (reporting).
    pub estimates: BTreeMap<LoopId, Estimate>,
}

impl SelectionResult {
    /// Predicted whole-program speedup.
    pub fn predicted_speedup(&self) -> f64 {
        if self.predicted_cycles == 0 {
            1.0
        } else {
            self.total_cycles as f64 / self.predicted_cycles as f64
        }
    }

    /// Fraction of program time covered by selected STLs.
    pub fn coverage(&self) -> f64 {
        self.chosen.iter().map(|c| c.coverage).sum()
    }

    /// Selected loops with at least `threshold` coverage (the paper's
    /// tables report loops with > 0.5 % coverage).
    pub fn chosen_above(&self, threshold: f64) -> Vec<&ChosenStl> {
        self.chosen
            .iter()
            .filter(|c| c.coverage >= threshold)
            .collect()
    }
}

/// Applies Equation 2: picks the set of non-nested STLs minimizing
/// predicted execution time.
///
/// `total_cycles` is the sequential duration of the profiled run (used
/// for coverage and the program-level prediction).
pub fn select(profile: &Profile, params: &EstimatorParams, total_cycles: u64) -> SelectionResult {
    select_with_priors(profile, params, total_cycles, &BTreeSet::new())
}

/// [`select`] with static priors: loops in `demoted` carry a
/// compiler-proven cross-iteration dependence, so Equation 2 never
/// picks them as STLs (their serial and nested alternatives still
/// compete normally). The priors come from the `cfgir` memory
/// pre-screen; an empty set reproduces plain `select`.
pub fn select_with_priors(
    profile: &Profile,
    params: &EstimatorParams,
    total_cycles: u64,
    demoted: &BTreeSet<LoopId>,
) -> SelectionResult {
    select_with_distances(profile, params, total_cycles, demoted, &BTreeMap::new())
}

/// [`select_with_priors`] plus dependence-distance floors from the
/// scalar-evolution pre-screen: `floors[l] == d` means every proven
/// cross-iteration RAW chain in loop `l` spans at least `d`
/// iterations, so at most `d` iterations can overlap speculatively.
/// The Equation 1 estimate is floored at `serial/d` before Equation 2
/// runs — a distance-1 chain makes the loop no better than serial,
/// while larger distances leave partial parallelism on the table
/// rather than none. An empty map reproduces `select_with_priors`.
pub fn select_with_distances(
    profile: &Profile,
    params: &EstimatorParams,
    total_cycles: u64,
    demoted: &BTreeSet<LoopId>,
    floors: &BTreeMap<LoopId, u32>,
) -> SelectionResult {
    let estimates: BTreeMap<LoopId, Estimate> = profile
        .stl
        .iter()
        .map(|(&l, s)| {
            let mut e = estimate(s, params);
            if let Some(&d) = floors.get(&l) {
                if d > 0 {
                    e.est_tls_cycles = e.est_tls_cycles.max(s.cycles / u64::from(d));
                }
            }
            (l, e)
        })
        .collect();

    // children under dominant-parent attribution
    let mut children: BTreeMap<Option<LoopId>, Vec<LoopId>> = BTreeMap::new();
    for &l in profile.stl.keys() {
        children
            .entry(profile.dominant_parent(l))
            .or_default()
            .push(l);
    }

    // bottom-up DP; the forest is shallow, recursion is fine. The
    // `visited` set guards against cyclic dominant-parent attribution
    // (possible under mutual recursion) and double-counted subtrees.
    fn best(
        l: LoopId,
        profile: &Profile,
        estimates: &BTreeMap<LoopId, Estimate>,
        children: &BTreeMap<Option<LoopId>, Vec<LoopId>>,
        demoted: &BTreeSet<LoopId>,
        chosen: &mut Vec<LoopId>,
        visited: &mut std::collections::BTreeSet<LoopId>,
    ) -> u64 {
        if !visited.insert(l) {
            // already handled: stay serial
            return profile.stl.get(&l).map_or(0, |s| s.cycles);
        }
        // a loop mentioned only by forest edges has no stats: serial, free
        let Some(stats) = profile.stl.get(&l) else {
            return 0;
        };
        let serial = stats.cycles;
        // a statically demoted (or never-estimated) loop is never
        // choosable itself
        let own = if demoted.contains(&l) {
            u64::MAX
        } else {
            estimates.get(&l).map_or(u64::MAX, |e| e.est_tls_cycles)
        };

        let mut kids_chosen: Vec<LoopId> = Vec::new();
        let kids = children.get(&Some(l)).cloned().unwrap_or_default();
        let mut kid_cycles = 0u64;
        let mut kid_best = 0u64;
        for c in kids {
            kid_cycles = kid_cycles.saturating_add(profile.stl.get(&c).map_or(0, |s| s.cycles));
            kid_best = kid_best.saturating_add(best(
                c,
                profile,
                estimates,
                children,
                demoted,
                &mut kids_chosen,
                visited,
            ));
        }
        // children cycles are nested inside this loop's inclusive
        // cycles; guard against attribution noise
        let nested = serial.saturating_sub(kid_cycles).saturating_add(kid_best);

        if own < nested && own < serial {
            chosen.push(l);
            own
        } else if nested < serial {
            chosen.extend(kids_chosen);
            nested
        } else {
            serial
        }
    }

    let mut chosen_ids: Vec<LoopId> = Vec::new();
    let mut program_predicted = total_cycles;
    let mut visited = std::collections::BTreeSet::new();
    for &root in children.get(&None).into_iter().flatten() {
        let mut picks = Vec::new();
        let b = best(
            root,
            profile,
            &estimates,
            &children,
            demoted,
            &mut picks,
            &mut visited,
        );
        let serial = profile.stl.get(&root).map_or(0, |s| s.cycles);
        program_predicted = program_predicted.saturating_sub(serial.saturating_sub(b));
        chosen_ids.extend(picks);
    }

    let mut chosen: Vec<ChosenStl> = chosen_ids
        .into_iter()
        .filter_map(|l| {
            let cycles = profile.stl.get(&l)?.cycles;
            Some(ChosenStl {
                loop_id: l,
                estimate: *estimates.get(&l)?,
                cycles,
                coverage: if total_cycles == 0 {
                    0.0
                } else {
                    cycles as f64 / total_cycles as f64
                },
            })
        })
        .collect();
    chosen.sort_by(|a, b| b.cycles.cmp(&a.cycles).then(a.loop_id.cmp(&b.loop_id)));

    SelectionResult {
        chosen,
        total_cycles,
        predicted_cycles: program_predicted,
        estimates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::StlStats;

    fn profile_with(loops: &[(u32, Option<u32>, StlStats)]) -> Profile {
        let mut p = Profile::default();
        for &(id, parent, ref s) in loops {
            p.stl.insert(LoopId(id), *s);
            p.forest_edges
                .insert((parent.map(LoopId), LoopId(id)), s.entries.max(1));
        }
        p
    }

    fn parallel_stats(threads: u64, cycles: u64) -> StlStats {
        StlStats {
            entries: 1,
            threads,
            cycles,
            ..StlStats::default()
        }
    }

    fn serial_stats(threads: u64, cycles: u64) -> StlStats {
        let mut s = parallel_stats(threads, cycles);
        s.arcs_t1 = threads - 1;
        s.arc_len_sum_t1 = (threads - 1) * 5; // tiny arcs: serializing
        s
    }

    #[test]
    fn parallel_loop_is_chosen() {
        let p = profile_with(&[(0, None, parallel_stats(1000, 1_000_000))]);
        let r = select(&p, &EstimatorParams::default(), 1_200_000);
        assert_eq!(r.chosen.len(), 1);
        assert_eq!(r.chosen[0].loop_id, LoopId(0));
        assert!(r.predicted_cycles < 1_200_000);
        assert!(r.predicted_speedup() > 1.5);
        assert!(r.coverage() > 0.8);
    }

    #[test]
    fn serial_loop_is_not_chosen() {
        let p = profile_with(&[(0, None, serial_stats(1000, 1_000_000))]);
        let r = select(&p, &EstimatorParams::default(), 1_200_000);
        assert!(r.chosen.is_empty());
        assert_eq!(r.predicted_cycles, 1_200_000);
    }

    #[test]
    fn parallel_outer_beats_parallel_inner() {
        // outer covers everything; inner only half the cycles
        let outer = parallel_stats(100, 1_000_000);
        let inner = parallel_stats(10_000, 500_000);
        let p = profile_with(&[(0, None, outer), (1, Some(0), inner)]);
        let r = select(&p, &EstimatorParams::default(), 1_000_000);
        assert_eq!(r.chosen.len(), 1);
        assert_eq!(r.chosen[0].loop_id, LoopId(0));
    }

    #[test]
    fn serial_outer_yields_to_parallel_inner() {
        let outer = serial_stats(100, 1_000_000);
        let inner = parallel_stats(1000, 900_000);
        let p = profile_with(&[(0, None, outer), (1, Some(0), inner)]);
        let r = select(&p, &EstimatorParams::default(), 1_000_000);
        assert_eq!(r.chosen.len(), 1);
        assert_eq!(r.chosen[0].loop_id, LoopId(1));
        // serial remainder of the outer loop stays serial
        assert!(r.predicted_cycles > 300_000);
        assert!(r.predicted_cycles < 1_000_000);
    }

    #[test]
    fn overflowing_outer_yields_to_inner() {
        // outer would be parallel but always overflows buffers
        let mut outer = parallel_stats(10, 1_000_000);
        outer.overflow_threads = 10;
        let inner = parallel_stats(10_000, 990_000);
        let p = profile_with(&[(0, None, outer), (1, Some(0), inner)]);
        let r = select(&p, &EstimatorParams::default(), 1_000_000);
        assert_eq!(r.chosen.len(), 1);
        assert_eq!(r.chosen[0].loop_id, LoopId(1));
    }

    #[test]
    fn sibling_loops_are_both_chosen() {
        let a = parallel_stats(500, 400_000);
        let b = parallel_stats(500, 500_000);
        let p = profile_with(&[(0, None, a), (1, None, b)]);
        let r = select(&p, &EstimatorParams::default(), 1_000_000);
        assert_eq!(r.chosen.len(), 2);
        // sorted by coverage
        assert_eq!(r.chosen[0].loop_id, LoopId(1));
        assert!(r.coverage() > 0.85);
    }

    #[test]
    fn chosen_above_filters_tiny_loops() {
        let big = parallel_stats(500, 900_000);
        let tiny = parallel_stats(10, 2_000);
        let p = profile_with(&[(0, None, big), (1, None, tiny)]);
        let r = select(&p, &EstimatorParams::default(), 1_000_000);
        assert_eq!(r.chosen_above(0.005).len(), 1);
    }

    #[test]
    fn demoted_loop_is_never_chosen() {
        // identical to parallel_loop_is_chosen, but the static
        // pre-screen demoted the loop
        let p = profile_with(&[(0, None, parallel_stats(1000, 1_000_000))]);
        let demoted: BTreeSet<LoopId> = [LoopId(0)].into();
        let r = select_with_priors(&p, &EstimatorParams::default(), 1_200_000, &demoted);
        assert!(r.chosen.is_empty());
        assert_eq!(r.predicted_cycles, 1_200_000);
    }

    #[test]
    fn demoted_outer_yields_to_parallel_inner() {
        let outer = parallel_stats(100, 1_000_000);
        let inner = parallel_stats(1000, 900_000);
        let p = profile_with(&[(0, None, outer), (1, Some(0), inner)]);
        let demoted: BTreeSet<LoopId> = [LoopId(0)].into();
        let r = select_with_priors(&p, &EstimatorParams::default(), 1_000_000, &demoted);
        assert_eq!(r.chosen.len(), 1);
        assert_eq!(r.chosen[0].loop_id, LoopId(1));
    }

    #[test]
    fn empty_profile_selects_nothing() {
        let r = select(&Profile::default(), &EstimatorParams::default(), 1000);
        assert!(r.chosen.is_empty());
        assert_eq!(r.predicted_cycles, 1000);
        assert_eq!(r.predicted_speedup(), 1.0);
    }

    #[test]
    fn near_saturation_cycle_counts_do_not_wrap() {
        // sibling subtrees whose cycle sums exceed u64::MAX: the DP
        // must saturate instead of wrapping into a tiny "nested" cost
        let outer = serial_stats(10, u64::MAX);
        let a = serial_stats(10, u64::MAX / 2 + 1);
        let b = serial_stats(10, u64::MAX / 2 + 1);
        let p = profile_with(&[(0, None, outer), (1, Some(0), a), (2, Some(0), b)]);
        let r = select(&p, &EstimatorParams::default(), u64::MAX);
        assert!(r.chosen.is_empty());
        assert_eq!(r.predicted_cycles, u64::MAX);
    }

    #[test]
    fn forest_edge_to_untraced_parent_is_harmless() {
        // a nesting edge can name a parent loop that never produced
        // stats of its own (e.g. tracer table overflow dropped it);
        // selection must not panic and must not pick the orphan child
        let mut p = profile_with(&[(1, Some(0), parallel_stats(1000, 1_000_000))]);
        p.forest_edges.insert((None, LoopId(0)), 1);
        let r = select(&p, &EstimatorParams::default(), 1_200_000);
        assert!(r.chosen.is_empty());
        assert_eq!(r.predicted_cycles, 1_200_000);
    }

    #[test]
    fn zero_cycle_profile_is_neutral() {
        let p = profile_with(&[(0, None, parallel_stats(0, 0))]);
        let r = select(&p, &EstimatorParams::default(), 0);
        assert_eq!(r.predicted_cycles, 0);
        assert_eq!(r.predicted_speedup(), 1.0);
        assert_eq!(r.coverage(), 0.0);
    }
}
