//! Software-only profiling baseline (paper §5, first paragraph).
//!
//! Before building hardware, the authors measured a software-only
//! implementation of the trace analyses: callback annotations on every
//! memory and local-variable access, with the dependency and overflow
//! comparisons done in software. It slowed programs down **over 100×**
//! — unusable for a runtime system — which is the motivation for the
//! TEST hardware.
//!
//! [`SoftwareTracer`] is that implementation. It differs from
//! [`crate::tracer::TestTracer`] in two deliberate ways:
//!
//! * it uses **unbounded** data structures (hash maps keyed by word
//!   address, exact per-thread line sets), so it also serves as the
//!   *exact oracle* against which the hardware model's capacity-induced
//!   imprecision is quantified (§6.2);
//! * it tallies a **modelled execution cost** per event, calibrated to
//!   the paper's observation: every traced access pays a callback into
//!   the analysis runtime (call/return, hash probes, bank updates), a
//!   few hundred cycles each on the single-issue Hydra core.

use crate::stats::{Profile, StlStats};
use std::collections::{BTreeMap, HashMap, HashSet};
use tvm::isa::{LoopId, Pc};
use tvm::line_of;
use tvm::trace::{Addr, Cycles, TraceSink};

/// Modelled per-event callback costs of software-only profiling, in
/// cycles. Defaults are calibrated so that the evaluated programs slow
/// down by the order of magnitude the paper reports (>100×): each heap
/// event pays a JIT-inserted callback (register spills, call/return),
/// a hash-table probe over the address space, the per-active-loop
/// comparison chain, and statistics updates — all executed by the
/// single-issue Hydra core with none of the JIT's usual optimizations
/// applied to the instrumented regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftwareCost {
    /// Per heap load/store event.
    pub heap_event: u64,
    /// Per local-variable event.
    pub local_event: u64,
    /// Per loop-boundary event (`sloop`/`eoi`/`eloop`).
    pub loop_event: u64,
}

impl Default for SoftwareCost {
    fn default() -> Self {
        SoftwareCost {
            heap_event: 1200,
            local_event: 700,
            loop_event: 400,
        }
    }
}

#[derive(Debug, Clone)]
struct SoftBank {
    loop_id: LoopId,
    local_mask: u64,
    entry_start: Cycles,
    thread_start: Cycles,
    prev_thread_start: Cycles,
    min_arc_t1: Option<Cycles>,
    min_arc_lt: Option<Cycles>,
    ld_lines: HashSet<u32>,
    st_lines: HashSet<u32>,
}

#[derive(Debug, Clone, Copy)]
struct SoftEntry {
    loop_id: LoopId,
    bank: usize,
}

/// Table 1 speculative load state limit, in lines.
const LD_LIMIT: usize = 512;
/// Table 1 store buffer limit, in lines.
const ST_LIMIT: usize = 64;

/// The exact, unbounded software implementation of the TEST analyses.
#[derive(Debug)]
pub struct SoftwareTracer {
    cost: SoftwareCost,
    local_masks: BTreeMap<LoopId, u64>,
    word_ts: HashMap<Addr, Cycles>,
    local_ts: HashMap<(u32, u16), Cycles>,
    banks: Vec<SoftBank>,
    stack: Vec<SoftEntry>,
    stl: BTreeMap<LoopId, StlStats>,
    forest_edges: BTreeMap<(Option<LoopId>, LoopId), u64>,
    max_dynamic_depth: u32,
    events: u64,
    end_time: Cycles,
    modeled_cost: u64,
}

impl SoftwareTracer {
    /// Creates a software tracer with default modelled costs.
    pub fn new() -> SoftwareTracer {
        Self::with_costs(SoftwareCost::default())
    }

    /// Creates a software tracer with explicit per-event costs.
    pub fn with_costs(cost: SoftwareCost) -> SoftwareTracer {
        SoftwareTracer {
            cost,
            local_masks: BTreeMap::new(),
            word_ts: HashMap::new(),
            local_ts: HashMap::new(),
            banks: Vec::new(),
            stack: Vec::new(),
            stl: BTreeMap::new(),
            forest_edges: BTreeMap::new(),
            max_dynamic_depth: 0,
            events: 0,
            end_time: 0,
            modeled_cost: 0,
        }
    }

    /// Installs per-loop tracked-variable slot masks (the same
    /// interface as `TestTracer::set_local_masks`).
    pub fn set_local_masks(&mut self, masks: impl IntoIterator<Item = (LoopId, u64)>) {
        self.local_masks.extend(masks);
    }

    /// Creates a software tracer with slot masks already installed.
    pub fn with_masks(masks: impl IntoIterator<Item = (LoopId, u64)>) -> SoftwareTracer {
        let mut t = SoftwareTracer::new();
        t.set_local_masks(masks);
        t
    }

    /// Total modelled profiling cost so far, in cycles. The software
    /// profiling slowdown of a run is
    /// `(program_cycles + modeled_cost) / program_cycles`.
    pub fn modeled_cost(&self) -> u64 {
        self.modeled_cost
    }

    /// Finalizes and returns the collected profile.
    pub fn into_profile(mut self) -> Profile {
        let end = self.end_time;
        while let Some(top) = self.stack.pop() {
            let bank = self.banks.remove(top.bank);
            let s = self.stl.get_mut(&bank.loop_id).expect("bank has stats");
            s.cycles += end.saturating_sub(bank.entry_start);
            let _ = top;
        }
        Profile {
            stl: self.stl,
            forest_edges: self.forest_edges,
            pc_bins: crate::pcbins::PcBins::new(0),
            max_dynamic_depth: self.max_dynamic_depth,
            fifo_evictions: 0,
            events: self.events,
            end_time: end,
            // self-profiling is a property of the hardware model; the
            // idealized software tracer has no buffers to watch
            analyzer_events: BTreeMap::new(),
            fifo_depth_watermark: 0,
            bank_watermark: 0,
        }
    }

    fn tick(&mut self, now: Cycles, cost: u64) {
        self.events += 1;
        self.end_time = self.end_time.max(now);
        self.modeled_cost += cost;
    }

    fn dependency_check(&mut self, ts: Cycles, now: Cycles, slot: Option<u16>) {
        for entry in self.stack.iter().rev() {
            let bank = &mut self.banks[entry.bank];
            if let Some(v) = slot {
                if v < 64 && bank.local_mask & (1u64 << v) == 0 {
                    continue;
                }
            }
            if ts >= bank.thread_start {
                return;
            }
            if ts >= bank.entry_start {
                let len = now - ts;
                let slot = if ts < bank.prev_thread_start {
                    &mut bank.min_arc_lt
                } else {
                    &mut bank.min_arc_t1
                };
                *slot = Some(slot.map_or(len, |m: Cycles| m.min(len)));
                return;
            }
        }
    }
}

impl Default for SoftwareTracer {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink for SoftwareTracer {
    fn heap_load(&mut self, addr: Addr, now: Cycles, pc: Pc) {
        self.tick(now, self.cost.heap_event);
        let _ = pc;
        if self.stack.is_empty() {
            return;
        }
        if let Some(&ts) = self.word_ts.get(&addr) {
            self.dependency_check(ts, now, None);
        }
        let line = line_of(addr);
        for entry in &self.stack {
            self.banks[entry.bank].ld_lines.insert(line);
        }
    }

    fn heap_store(&mut self, addr: Addr, now: Cycles, pc: Pc) {
        self.tick(now, self.cost.heap_event);
        let _ = pc;
        self.word_ts.insert(addr, now);
        if self.stack.is_empty() {
            return;
        }
        let line = line_of(addr);
        for entry in &self.stack {
            self.banks[entry.bank].st_lines.insert(line);
        }
    }

    fn local_load(&mut self, var: u16, activation: u32, now: Cycles, pc: Pc) {
        self.tick(now, self.cost.local_event);
        let _ = pc;
        if let Some(&ts) = self.local_ts.get(&(activation, var)) {
            self.dependency_check(ts, now, Some(var));
        }
    }

    fn local_store(&mut self, var: u16, activation: u32, now: Cycles, pc: Pc) {
        self.tick(now, self.cost.local_event);
        let _ = pc;
        self.local_ts.insert((activation, var), now);
    }

    fn loop_enter(&mut self, loop_id: LoopId, _n_locals: u16, activation: u32, now: Cycles) {
        self.tick(now, self.cost.loop_event);
        let parent = self.stack.last().map(|e| e.loop_id);
        *self.forest_edges.entry((parent, loop_id)).or_insert(0) += 1;
        let local_mask = self.local_masks.get(&loop_id).copied().unwrap_or(u64::MAX);
        self.banks.push(SoftBank {
            loop_id,
            local_mask,
            entry_start: now,
            thread_start: now,
            prev_thread_start: now,
            min_arc_t1: None,
            min_arc_lt: None,
            ld_lines: HashSet::new(),
            st_lines: HashSet::new(),
        });
        self.stl.entry(loop_id).or_default().entries += 1;
        let _ = activation;
        self.stack.push(SoftEntry {
            loop_id,
            bank: self.banks.len() - 1,
        });
        self.max_dynamic_depth = self.max_dynamic_depth.max(self.stack.len() as u32);
    }

    fn loop_iter(&mut self, loop_id: LoopId, now: Cycles) {
        self.tick(now, self.cost.loop_event);
        let Some(top) = self.stack.last() else { return };
        if top.loop_id != loop_id {
            return;
        }
        let (ld_limit, st_limit) = (LD_LIMIT, ST_LIMIT);
        let bank = &mut self.banks[top.bank];
        let s = self.stl.get_mut(&bank.loop_id).expect("bank has stats");
        s.threads += 1;
        if let Some(a) = bank.min_arc_t1.take() {
            s.arcs_t1 += 1;
            s.arc_len_sum_t1 += a;
        }
        if let Some(a) = bank.min_arc_lt.take() {
            s.arcs_lt += 1;
            s.arc_len_sum_lt += a;
        }
        if bank.ld_lines.len() > ld_limit || bank.st_lines.len() > st_limit {
            s.overflow_threads += 1;
        }
        s.max_ld_lines = s.max_ld_lines.max(bank.ld_lines.len() as u32);
        s.max_st_lines = s.max_st_lines.max(bank.st_lines.len() as u32);
        let size = now.saturating_sub(bank.thread_start);
        s.thread_size_sum += size;
        s.thread_size_sq_sum += u128::from(size) * u128::from(size);
        bank.prev_thread_start = bank.thread_start;
        bank.thread_start = now;
        bank.ld_lines.clear();
        bank.st_lines.clear();
    }

    fn loop_exit(&mut self, loop_id: LoopId, now: Cycles) {
        self.tick(now, self.cost.loop_event);
        while let Some(top) = self.stack.pop() {
            let bank = self.banks.pop().expect("banks mirror the stack");
            let s = self.stl.get_mut(&bank.loop_id).expect("bank has stats");
            s.cycles += now.saturating_sub(bank.entry_start);
            if top.loop_id == loop_id {
                break;
            }
        }
    }

    fn stats_read(&mut self, _loop_id: LoopId, now: Cycles) {
        self.tick(now, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::isa::FuncId;

    fn pc(idx: u32) -> Pc {
        Pc {
            func: FuncId(0),
            idx,
        }
    }

    #[test]
    fn software_tracer_finds_the_same_arc_as_hardware() {
        let mut sw = SoftwareTracer::new();
        let mut hw = crate::tracer::TestTracer::new(crate::config::TracerConfig::default());
        let events: &[(&str, Addr, Cycles)] = &[
            ("enter", 0, 0),
            ("store", 0x100, 10),
            ("eoi", 0, 20),
            ("load", 0x100, 30),
            ("eoi", 0, 40),
            ("exit", 0, 41),
        ];
        for sink in [&mut sw as &mut dyn TraceSink, &mut hw as &mut dyn TraceSink] {
            for &(kind, addr, now) in events {
                match kind {
                    "enter" => sink.loop_enter(LoopId(0), 0, 0, now),
                    "store" => sink.heap_store(addr, now, pc(0)),
                    "load" => sink.heap_load(addr, now, pc(1)),
                    "eoi" => sink.loop_iter(LoopId(0), now),
                    "exit" => sink.loop_exit(LoopId(0), now),
                    _ => unreachable!(),
                }
            }
        }
        let ps = sw.into_profile();
        let ph = hw.into_profile();
        assert_eq!(ps.stl[&LoopId(0)].arcs_t1, ph.stl[&LoopId(0)].arcs_t1);
        assert_eq!(
            ps.stl[&LoopId(0)].arc_len_sum_t1,
            ph.stl[&LoopId(0)].arc_len_sum_t1
        );
        assert_eq!(ps.stl[&LoopId(0)].threads, ph.stl[&LoopId(0)].threads);
    }

    #[test]
    fn software_sees_deps_the_fifo_lost() {
        // tiny FIFO loses the dependency; the software oracle keeps it
        let cfg = crate::config::TracerConfig {
            store_ts_lines: 1,
            ..crate::config::TracerConfig::default()
        };
        let mut hw = crate::tracer::TestTracer::new(cfg);
        let mut sw = SoftwareTracer::new();
        for sink in [&mut sw as &mut dyn TraceSink, &mut hw as &mut dyn TraceSink] {
            sink.loop_enter(LoopId(0), 0, 0, 0);
            sink.heap_store(0x100, 2, pc(0));
            sink.heap_store(0x200, 3, pc(0));
            sink.loop_iter(LoopId(0), 10);
            sink.heap_load(0x100, 12, pc(1));
            sink.loop_iter(LoopId(0), 20);
            sink.loop_exit(LoopId(0), 21);
        }
        assert_eq!(hw.into_profile().stl[&LoopId(0)].arcs_t1, 0);
        assert_eq!(sw.into_profile().stl[&LoopId(0)].arcs_t1, 1);
    }

    #[test]
    fn modeled_cost_accumulates_per_event() {
        let mut sw = SoftwareTracer::new();
        let c = SoftwareCost::default();
        sw.loop_enter(LoopId(0), 0, 0, 0);
        sw.heap_store(0x100, 1, pc(0));
        sw.heap_load(0x100, 2, pc(0));
        sw.local_store(0, 0, 3, pc(0));
        sw.loop_iter(LoopId(0), 4);
        sw.loop_exit(LoopId(0), 5);
        assert_eq!(
            sw.modeled_cost(),
            3 * c.loop_event + 2 * c.heap_event + c.local_event
        );
    }

    #[test]
    fn modeled_slowdown_reaches_paper_magnitude() {
        // a memory-bound loop: ~1 heap event per 4 cycles
        let mut sw = SoftwareTracer::new();
        sw.loop_enter(LoopId(0), 0, 0, 0);
        let mut now = 0;
        for i in 0..10_000u64 {
            now = i * 4;
            sw.heap_load((0x1000 + (i % 64) * 8) as Addr, now, pc(0));
            if i % 4 == 3 {
                sw.loop_iter(LoopId(0), now);
            }
        }
        sw.loop_exit(LoopId(0), now);
        let slowdown = (now + sw.modeled_cost()) as f64 / now as f64;
        assert!(slowdown > 100.0, "got {slowdown:.0}x");
    }
}
