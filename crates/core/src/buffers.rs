//! Timestamp storage structures (paper §5.3).
//!
//! During profiling the five speculation store buffers — idle while the
//! program runs sequentially — hold event timestamps instead of
//! speculative data. Their limited capacity is a *feature* of the
//! evaluation: the paper measures how much precision the analysis loses
//! to FIFO eviction and direct-mapped aliasing (§6.2).

use std::collections::{HashMap, VecDeque};
use tvm::trace::{Addr, Cycles};
use tvm::{line_of, LINE_WORDS, WORD_BYTES};

/// Heap store timestamps: a FIFO of cache lines, each holding one
/// timestamp per word. Three of the five 2 kB store buffers are used,
/// giving 192 lines (6 kB) of write history.
///
/// Looking up an address whose line has been evicted returns `None` —
/// the dependency is simply not seen, one of the documented sources of
/// imprecision.
#[derive(Debug, Clone)]
pub struct StoreTimestampFifo {
    capacity: usize,
    lines: HashMap<u32, [Option<Cycles>; LINE_WORDS as usize]>,
    order: VecDeque<u32>,
    evictions: u64,
}

impl StoreTimestampFifo {
    /// Creates a FIFO holding at most `capacity` lines.
    pub fn new(capacity: usize) -> Self {
        StoreTimestampFifo {
            capacity,
            lines: HashMap::new(),
            order: VecDeque::new(),
            evictions: 0,
        }
    }

    /// Records a store timestamp for the word at `addr`. A line already
    /// present is updated in place (the hardware merges writes to a
    /// buffered line); a new line may evict the oldest.
    pub fn record(&mut self, addr: Addr, now: Cycles) {
        let line = line_of(addr);
        let word = ((addr / WORD_BYTES) % LINE_WORDS) as usize;
        if let Some(entry) = self.lines.get_mut(&line) {
            entry[word] = Some(now);
            return;
        }
        if self.order.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.lines.remove(&old);
                self.evictions += 1;
            }
        }
        let mut entry = [None; LINE_WORDS as usize];
        entry[word] = Some(now);
        self.lines.insert(line, entry);
        self.order.push_back(line);
    }

    /// The last store timestamp recorded for the word at `addr`, if its
    /// line is still buffered.
    pub fn lookup(&self, addr: Addr) -> Option<Cycles> {
        let line = line_of(addr);
        let word = ((addr / WORD_BYTES) % LINE_WORDS) as usize;
        self.lines.get(&line).and_then(|e| e[word])
    }

    /// Number of lines evicted so far (history lost).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Lines currently buffered.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if no store has been recorded.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// A direct-mapped table of cache-line timestamps with tags, used by
/// the speculative-state overflow analysis (Figure 4). Index and tag
/// come from the line number exactly as the figure's bit slices do;
/// aliasing between lines that share an index loses the older
/// timestamp, as in hardware.
#[derive(Debug, Clone)]
pub struct LineTimestampTable {
    mask: u32,
    entries: Vec<Option<(u32, Cycles)>>, // (tag, timestamp)
}

impl LineTimestampTable {
    /// Creates a table with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        LineTimestampTable {
            mask: entries as u32 - 1,
            entries: vec![None; entries],
        }
    }

    /// The timestamp recorded for `line`, if the slot still holds that
    /// line (tag match).
    pub fn lookup(&self, line: u32) -> Option<Cycles> {
        let idx = (line & self.mask) as usize;
        match self.entries[idx] {
            Some((tag, ts)) if tag == line >> self.mask.trailing_ones() => Some(ts),
            _ => None,
        }
    }

    /// Records an access timestamp for `line`, evicting any aliasing
    /// entry.
    pub fn record(&mut self, line: u32, now: Cycles) {
        let idx = (line & self.mask) as usize;
        self.entries[idx] = Some((line >> self.mask.trailing_ones(), now));
    }

    /// Combined lookup-and-record: installs `now` for `line` and
    /// returns the previous tag-matching timestamp, computing the slot
    /// index once. Equivalent to `lookup(line)` followed by
    /// `record(line, now)` — the tracer's overflow walk uses this on
    /// every heap access.
    #[inline]
    pub fn swap(&mut self, line: u32, now: Cycles) -> Option<Cycles> {
        let idx = (line & self.mask) as usize;
        let tag = line >> self.mask.trailing_ones();
        let old = match self.entries[idx] {
            Some((t, ts)) if t == tag => Some(ts),
            _ => None,
        };
        self.entries[idx] = Some((tag, now));
        old
    }

    /// Clears the table (used between profiling phases).
    pub fn clear(&mut self) {
        self.entries.fill(None);
    }
}

/// Local-variable store timestamps: a small table shared by all active
/// STLs, reserved in per-activation frames by `sloop n` and freed by
/// `eloop n` (Table 4). Nested loops of the same method activation
/// re-use the same frame (the method-level `vn` numbering aliases
/// them), so reservation is reference-counted.
#[derive(Debug, Clone)]
pub struct LocalVarTimestamps {
    capacity: usize,
    used: usize,
    frames: Vec<LocalFrame>,
}

#[derive(Debug, Clone)]
struct LocalFrame {
    activation: u32,
    refcount: u32,
    slots: Vec<Option<Cycles>>,
}

impl LocalVarTimestamps {
    /// Creates a table with `capacity` total slots.
    pub fn new(capacity: usize) -> Self {
        LocalVarTimestamps {
            capacity,
            used: 0,
            frames: Vec::new(),
        }
    }

    /// Attempts to reserve `n` slots for `activation` (on `sloop`).
    /// Returns `false` when the table is full — the caller then leaves
    /// the loop untraced, the paper's "no room left for local variable
    /// timestamps" case.
    pub fn reserve(&mut self, activation: u32, n: u16) -> bool {
        if let Some(top) = self.frames.last_mut() {
            if top.activation == activation {
                // nested loop in the same method: same slots
                if top.slots.len() < n as usize {
                    // method-level numbering guarantees equal n; grow
                    // defensively if a larger reservation appears
                    let grow = n as usize - top.slots.len();
                    if self.used + grow > self.capacity {
                        return false;
                    }
                    self.used += grow;
                    top.slots.resize(n as usize, None);
                }
                top.refcount += 1;
                return true;
            }
        }
        if self.used + n as usize > self.capacity {
            return false;
        }
        self.used += n as usize;
        self.frames.push(LocalFrame {
            activation,
            refcount: 1,
            slots: vec![None; n as usize],
        });
        true
    }

    /// Releases one reservation for `activation` (on `eloop`).
    pub fn release(&mut self, activation: u32) {
        if let Some(top) = self.frames.last_mut() {
            if top.activation == activation {
                top.refcount -= 1;
                if top.refcount == 0 {
                    self.used -= top.slots.len();
                    self.frames.pop();
                }
            }
        }
    }

    /// Records a store timestamp for variable `var` of `activation`.
    /// Ignored when the activation has no live frame (its loop was left
    /// untraced).
    pub fn record(&mut self, activation: u32, var: u16, now: Cycles) {
        if let Some(top) = self.frames.last_mut() {
            if top.activation == activation {
                if let Some(slot) = top.slots.get_mut(var as usize) {
                    *slot = Some(now);
                }
            }
        }
    }

    /// The last store timestamp for variable `var` of `activation`.
    pub fn lookup(&self, activation: u32, var: u16) -> Option<Cycles> {
        let top = self.frames.last()?;
        if top.activation != activation {
            return None;
        }
        top.slots.get(var as usize).copied().flatten()
    }

    /// Slots currently reserved.
    pub fn used(&self) -> usize {
        self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_roundtrip_and_word_granularity() {
        let mut f = StoreTimestampFifo::new(4);
        f.record(0x100, 10); // line 8, word 0
        f.record(0x108, 20); // line 8, word 1
        assert_eq!(f.lookup(0x100), Some(10));
        assert_eq!(f.lookup(0x108), Some(20));
        assert_eq!(f.lookup(0x110), None); // untouched word
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn fifo_evicts_oldest_line() {
        let mut f = StoreTimestampFifo::new(2);
        f.record(0x000, 1);
        f.record(0x020, 2);
        f.record(0x040, 3); // evicts line of 0x000
        assert_eq!(f.lookup(0x000), None);
        assert_eq!(f.lookup(0x020), Some(2));
        assert_eq!(f.lookup(0x040), Some(3));
        assert_eq!(f.evictions(), 1);
    }

    #[test]
    fn fifo_update_does_not_reorder() {
        let mut f = StoreTimestampFifo::new(2);
        f.record(0x000, 1);
        f.record(0x020, 2);
        f.record(0x008, 5); // same line as 0x000: update in place
        f.record(0x040, 6); // still evicts the 0x000 line (oldest)
        assert_eq!(f.lookup(0x008), None);
        assert_eq!(f.lookup(0x020), Some(2));
    }

    #[test]
    fn line_table_tags_detect_aliasing() {
        let mut t = LineTimestampTable::new(64);
        t.record(1, 10);
        assert_eq!(t.lookup(1), Some(10));
        // line 65 aliases index 1 with a different tag
        assert_eq!(t.lookup(65), None);
        t.record(65, 20);
        assert_eq!(t.lookup(65), Some(20));
        assert_eq!(t.lookup(1), None); // evicted by aliasing
    }

    #[test]
    fn line_table_swap_is_lookup_then_record() {
        let mut combined = LineTimestampTable::new(64);
        let mut split = LineTimestampTable::new(64);
        // hits, misses, and aliasing evictions all behave identically
        for (line, now) in [(1, 10), (1, 20), (65, 30), (1, 40), (7, 50)] {
            let expected = split.lookup(line);
            split.record(line, now);
            assert_eq!(combined.swap(line, now), expected);
            assert_eq!(combined.lookup(line), split.lookup(line));
        }
    }

    #[test]
    fn local_frames_nest_by_refcount() {
        let mut l = LocalVarTimestamps::new(8);
        assert!(l.reserve(1, 3)); // outer loop of activation 1
        assert!(l.reserve(1, 3)); // inner loop, same activation
        assert_eq!(l.used(), 3);
        l.record(1, 2, 42);
        assert_eq!(l.lookup(1, 2), Some(42));
        l.release(1);
        assert_eq!(l.lookup(1, 2), Some(42)); // outer still holds it
        l.release(1);
        assert_eq!(l.used(), 0);
        assert_eq!(l.lookup(1, 2), None);
    }

    #[test]
    fn local_capacity_rejects_reservation() {
        let mut l = LocalVarTimestamps::new(4);
        assert!(l.reserve(1, 3));
        assert!(!l.reserve(2, 3)); // would exceed 4 slots
        assert_eq!(l.used(), 3);
        // rejected activation's accesses are ignored
        l.record(2, 0, 9);
        assert_eq!(l.lookup(2, 0), None);
    }

    #[test]
    fn cross_activation_frames_stack() {
        let mut l = LocalVarTimestamps::new(8);
        assert!(l.reserve(1, 2));
        l.record(1, 0, 5);
        assert!(l.reserve(7, 2)); // callee method's loop
        l.record(7, 0, 9);
        assert_eq!(l.lookup(7, 0), Some(9));
        assert_eq!(l.lookup(1, 0), None); // not the top frame
        l.release(7);
        assert_eq!(l.lookup(1, 0), Some(5)); // visible again
    }
}
