//! Windowed, incremental selection for the online tiered runtime.
//!
//! The offline batch runs Equation 1+2 selection once, over one
//! profile of one fully annotated program. The online tier instead
//! observes a *stream* of profiles — one per execution epoch, each
//! measured under whatever annotation set was live that epoch — and
//! must keep revising its selection as phase behaviour shifts.
//!
//! [`SelectionWindow`] is the stream-side half of that loop: a bounded
//! window of recent epoch profiles plus a *generation* tag. Profiles
//! are only comparable when they were measured under the same
//! annotation set (patching a new loop in changes cycle counts and pc
//! layouts for everything downstream), so the tier controller bumps
//! the generation — clearing the window — whenever it patches the
//! program, and pushes one `(profile, cycles)` pair per epoch
//! otherwise.
//!
//! [`SelectionWindow::aggregate`] folds the window into one synthetic
//! profile: counter fields are averaged (so one anomalous epoch is
//! damped rather than authoritative), peak fields (`max_*`,
//! watermarks) take the window maximum, and structural pieces
//! (`pc_bins`, forest edges' relative weights) come from the newest
//! epoch. Aggregating a window of identical profiles returns exactly
//! that profile — the property that keeps online selection
//! bit-identical to offline once the tier reaches its terminal,
//! fully-patched image (deterministic interpretation makes
//! same-generation epochs identical).
//!
//! The hysteresis that stops verdicts flapping lives in the tier
//! controller (`jrpm::tier`), not here: this module answers "what
//! would selection say *now*", the controller decides when to believe
//! it.

use crate::estimate::EstimatorParams;
use crate::select::{select_with_distances, SelectionResult};
use crate::stats::{Profile, StlStats};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use tvm::isa::LoopId;

/// A bounded window of recent epoch profiles, tagged with the
/// annotation generation they were measured under.
#[derive(Debug, Clone)]
pub struct SelectionWindow {
    capacity: usize,
    generation: u64,
    epochs: VecDeque<(Profile, u64)>,
}

impl SelectionWindow {
    /// An empty window holding at most `capacity` epochs (minimum 1).
    pub fn new(capacity: usize) -> SelectionWindow {
        SelectionWindow {
            capacity: capacity.max(1),
            generation: 0,
            epochs: VecDeque::new(),
        }
    }

    /// The current annotation generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of epochs currently windowed.
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// True when no epoch has been pushed since the last generation
    /// bump.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// Invalidates the window: the annotation set changed, so profiles
    /// measured before and after are not comparable. Clears all
    /// windowed epochs and bumps the generation tag.
    pub fn advance_generation(&mut self) {
        self.generation += 1;
        self.epochs.clear();
    }

    /// Pushes one epoch's profile and total run cycles, evicting the
    /// oldest epoch when the window is full.
    pub fn push(&mut self, profile: Profile, cycles: u64) {
        if self.epochs.len() == self.capacity {
            self.epochs.pop_front();
        }
        self.epochs.push_back((profile, cycles));
    }

    /// Folds the window into one synthetic `(profile, cycles)` pair.
    ///
    /// Counters average across epochs, peaks take the maximum, and
    /// structural data (pc bins) comes from the newest epoch. Returns
    /// `None` on an empty window. A window of `n` identical epochs
    /// aggregates to exactly that epoch.
    pub fn aggregate(&self) -> Option<(Profile, u64)> {
        if self.epochs.is_empty() {
            return None;
        }
        let n = self.epochs.len() as u64;

        let mut stl: BTreeMap<LoopId, StlStats> = BTreeMap::new();
        let mut edges: BTreeMap<(Option<LoopId>, LoopId), u64> = BTreeMap::new();
        let mut analyzer: BTreeMap<Option<LoopId>, u64> = BTreeMap::new();
        let mut out = Profile::default();
        let mut cycles_sum: u64 = 0;

        for (p, c) in &self.epochs {
            cycles_sum += c;
            for (&id, s) in &p.stl {
                let acc = stl.entry(id).or_default();
                acc.entries += s.entries;
                acc.threads += s.threads;
                acc.cycles += s.cycles;
                acc.arcs_t1 += s.arcs_t1;
                acc.arc_len_sum_t1 += s.arc_len_sum_t1;
                acc.arcs_lt += s.arcs_lt;
                acc.arc_len_sum_lt += s.arc_len_sum_lt;
                acc.overflow_threads += s.overflow_threads;
                acc.untraced_entries += s.untraced_entries;
                acc.max_ld_lines = acc.max_ld_lines.max(s.max_ld_lines);
                acc.max_st_lines = acc.max_st_lines.max(s.max_st_lines);
                acc.thread_size_sq_sum += s.thread_size_sq_sum;
                acc.thread_size_sum += s.thread_size_sum;
            }
            for (&e, &count) in &p.forest_edges {
                *edges.entry(e).or_insert(0) += count;
            }
            for (&k, &count) in &p.analyzer_events {
                *analyzer.entry(k).or_insert(0) += count;
            }
            out.max_dynamic_depth = out.max_dynamic_depth.max(p.max_dynamic_depth);
            out.fifo_evictions += p.fifo_evictions;
            out.events += p.events;
            out.end_time = out.end_time.max(p.end_time);
            out.fifo_depth_watermark = out.fifo_depth_watermark.max(p.fifo_depth_watermark);
            out.bank_watermark = out.bank_watermark.max(p.bank_watermark);
        }

        // Counters become per-epoch means so the aggregate stays on the
        // scale of one run (selection compares loop cycles to the run's
        // total cycles, so mixed scales would skew coverage).
        for s in stl.values_mut() {
            s.entries /= n;
            s.threads /= n;
            s.cycles /= n;
            s.arcs_t1 /= n;
            s.arc_len_sum_t1 /= n;
            s.arcs_lt /= n;
            s.arc_len_sum_lt /= n;
            s.overflow_threads /= n;
            s.untraced_entries /= n;
            s.thread_size_sq_sum /= u128::from(n);
            s.thread_size_sum /= n;
        }
        for count in edges.values_mut() {
            *count /= n;
        }
        for count in analyzer.values_mut() {
            *count /= n;
        }
        out.fifo_evictions /= n;
        out.events /= n;
        out.stl = stl;
        out.forest_edges = edges;
        out.analyzer_events = analyzer;
        out.pc_bins = self.epochs.back().map(|(p, _)| p.pc_bins.clone())?;

        Some((out, cycles_sum / n))
    }

    /// Runs Equation 1+2 selection over the aggregated window.
    ///
    /// Returns `None` on an empty window.
    pub fn reselect(
        &self,
        params: &EstimatorParams,
        demoted: &BTreeSet<LoopId>,
    ) -> Option<SelectionResult> {
        self.reselect_with_distances(params, demoted, &BTreeMap::new())
    }

    /// [`Self::reselect`] with dependence-distance floors (see
    /// [`select_with_distances`]); the tier runtime passes the floors
    /// its deferred pre-screen has accumulated so far, keeping the
    /// windowed schedule aligned with what final selection will use.
    pub fn reselect_with_distances(
        &self,
        params: &EstimatorParams,
        demoted: &BTreeSet<LoopId>,
        floors: &BTreeMap<LoopId, u32>,
    ) -> Option<SelectionResult> {
        let (profile, cycles) = self.aggregate()?;
        Some(select_with_distances(
            &profile, params, cycles, demoted, floors,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::select_with_priors;

    fn profile(cycles: u64, threads: u64) -> Profile {
        let mut p = Profile::default();
        p.stl.insert(
            LoopId(0),
            StlStats {
                entries: 1,
                threads,
                cycles,
                thread_size_sum: cycles,
                thread_size_sq_sum: u128::from(cycles) * u128::from(cycles),
                max_ld_lines: threads as u32,
                ..StlStats::default()
            },
        );
        p.forest_edges.insert((None, LoopId(0)), 1);
        p.events = cycles / 2;
        p.max_dynamic_depth = 1;
        p
    }

    #[test]
    fn identical_epochs_aggregate_to_themselves() {
        let mut w = SelectionWindow::new(4);
        let p = profile(1000, 10);
        w.push(p.clone(), 5000);
        w.push(p.clone(), 5000);
        w.push(p.clone(), 5000);
        let (agg, cycles) = w.aggregate().unwrap();
        assert_eq!(agg, p);
        assert_eq!(cycles, 5000);
    }

    #[test]
    fn counters_average_and_peaks_take_max() {
        let mut w = SelectionWindow::new(4);
        w.push(profile(1000, 10), 4000);
        w.push(profile(3000, 20), 6000);
        let (agg, cycles) = w.aggregate().unwrap();
        let s = &agg.stl[&LoopId(0)];
        assert_eq!(s.cycles, 2000, "counter fields are window means");
        assert_eq!(s.threads, 15);
        assert_eq!(s.max_ld_lines, 20, "peak fields are window maxima");
        assert_eq!(cycles, 5000);
    }

    #[test]
    fn window_is_bounded_and_generation_clears_it() {
        let mut w = SelectionWindow::new(2);
        w.push(profile(1, 1), 1);
        w.push(profile(2, 1), 2);
        w.push(profile(3, 1), 3);
        assert_eq!(w.len(), 2, "oldest epoch evicted at capacity");
        assert_eq!(w.generation(), 0);
        w.advance_generation();
        assert!(w.is_empty());
        assert_eq!(w.generation(), 1);
        assert!(w.aggregate().is_none());
        assert!(w
            .reselect(&EstimatorParams::default(), &BTreeSet::new())
            .is_none());
    }

    #[test]
    fn reselect_matches_direct_selection_on_a_singleton_window() {
        let mut w = SelectionWindow::new(3);
        let p = profile(8000, 40);
        w.push(p.clone(), 10_000);
        let windowed = w
            .reselect(&EstimatorParams::default(), &BTreeSet::new())
            .unwrap();
        let direct = select_with_priors(&p, &EstimatorParams::default(), 10_000, &BTreeSet::new());
        assert_eq!(windowed.chosen, direct.chosen);
        assert_eq!(windowed.predicted_cycles, direct.predicted_cycles);
    }
}
