//! STL speedup estimation — the paper's Equation 1 (§4.3).
//!
//! The published equation is partially garbled in the PDF; this module
//! reconstructs it from the paper's own stated invariants. With `p`
//! processors, average thread size `S` and an average critical arc of
//! length `d` to the previous thread, pipelined speculative threads
//! must start at least `max(S/p, S - d + C)` cycles apart (`C` = the
//! store→load forwarding delay): the first term is processor
//! availability, the second the RAW dependency. Dependence-limited
//! speedup is therefore
//!
//! ```text
//! s(d) = S / max(S/p, S - d + C)     (capped at p)
//! ```
//!
//! which saturates at `p` exactly when `d ≥ (p-1)/p · S` — the "¾ of
//! the average thread size" property the paper states for `p = 4`.
//! Arcs binned `< t-1` are assumed to span `k = 2` threads and use the
//! analogous bound `S / max(S/p, (kS - d + C)/k)`.
//!
//! The two bins are combined as a frequency-weighted harmonic mean
//! (threads without arcs run at full `p`), overflowing threads
//! serialize (speedup 1), and the Table 2 speculative overheads —
//! startup/shutdown per entry, end-of-iteration per thread — are added
//! to produce the estimated TLS execution time that Equation 2
//! compares.

use crate::stats::StlStats;

/// Machine parameters of the estimator: processor count and the
/// speculative-thread overheads of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatorParams {
    /// CPUs in the CMP (speedup cap).
    pub processors: u32,
    /// Loop startup overhead, cycles per entry.
    pub startup_overhead: u64,
    /// Loop shutdown overhead, cycles per entry.
    pub shutdown_overhead: u64,
    /// End-of-iteration overhead, cycles per thread.
    pub eoi_overhead: u64,
    /// Store→load communication delay, cycles.
    pub comm_delay: u64,
}

impl Default for EstimatorParams {
    fn default() -> Self {
        EstimatorParams {
            processors: 4,
            startup_overhead: 25,
            shutdown_overhead: 25,
            eoi_overhead: 5,
            comm_delay: 10,
        }
    }
}

/// The estimator's verdict for one STL.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Predicted whole-loop speedup (sequential / estimated TLS time),
    /// capped at the processor count; can drop below 1 when overheads
    /// dominate.
    pub speedup: f64,
    /// Estimated cycles under speculative execution, including
    /// overheads.
    pub est_tls_cycles: u64,
    /// Dependence-limited speedup before overheads and overflow.
    pub base_speedup: f64,
    /// Fraction of threads predicted to overflow speculative buffers.
    pub overflow_freq: f64,
}

/// Dependence-limited speedup for one arc bin: arcs of average length
/// `d` spanning `k` threads, with thread size `s`.
fn bin_speedup(p: f64, s: f64, d: f64, k: f64, comm: f64) -> f64 {
    if s <= 0.0 {
        return 1.0;
    }
    let dep_separation = (k * s - d + comm) / k;
    let separation = (s / p).max(dep_separation).max(1.0);
    (s / separation).clamp(1.0, p)
}

/// Applies Equation 1 to the statistics TEST accumulated for one STL.
///
/// ```
/// use test_tracer::estimate::{estimate, EstimatorParams};
/// use test_tracer::stats::StlStats;
///
/// // 1000 threads of ~1000 cycles with no dependency arcs
/// let stats = StlStats { entries: 1, threads: 1000, cycles: 1_000_000,
///                        ..StlStats::default() };
/// let e = estimate(&stats, &EstimatorParams::default());
/// assert!(e.speedup > 3.5, "dependence-free loops approach 4x");
/// ```
pub fn estimate(stats: &StlStats, params: &EstimatorParams) -> Estimate {
    let p = f64::from(params.processors);
    let s = stats.avg_thread_size();
    let comm = params.comm_delay as f64;

    // arc frequencies, clamped so the bins plus the arc-free remainder
    // partition the threads
    let mut f1 = stats.arc_freq_t1().min(1.0);
    let mut flt = stats.arc_freq_lt().min(1.0);
    let total = f1 + flt;
    if total > 1.0 {
        f1 /= total;
        flt /= total;
    }
    let free = (1.0 - f1 - flt).max(0.0);

    let s1 = bin_speedup(p, s, stats.avg_arc_len_t1(), 1.0, comm);
    let slt = bin_speedup(p, s, stats.avg_arc_len_lt(), 2.0, comm);

    let base_speedup = if s <= 0.0 {
        1.0
    } else {
        1.0 / (f1 / s1 + flt / slt + free / p)
    };

    let overflow_freq = stats.overflow_freq();
    // overflowing threads stall until they are the head thread: they
    // run effectively serialized
    let compute = stats.cycles as f64 * ((1.0 - overflow_freq) / base_speedup + overflow_freq);
    // profiles of very long runs can push these sums toward u64::MAX;
    // saturate rather than wrap (a saturated estimate is never chosen)
    let overheads = stats
        .entries
        .saturating_mul(
            params
                .startup_overhead
                .saturating_add(params.shutdown_overhead),
        )
        .saturating_add(stats.threads.saturating_mul(params.eoi_overhead));
    let est_tls_cycles = (compute + overheads as f64).ceil() as u64;

    let speedup = if est_tls_cycles == 0 {
        1.0
    } else {
        (stats.cycles as f64 / est_tls_cycles as f64).min(p)
    };

    Estimate {
        speedup,
        est_tls_cycles: est_tls_cycles.max(1),
        base_speedup,
        overflow_freq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(threads: u64, cycles: u64) -> StlStats {
        StlStats {
            entries: 1,
            threads,
            cycles,
            ..StlStats::default()
        }
    }

    #[test]
    fn dependence_free_loop_approaches_full_speedup() {
        let s = stats(1000, 1_000_000); // 1000-cycle threads
        let e = estimate(&s, &EstimatorParams::default());
        assert!(e.base_speedup > 3.99, "got {}", e.base_speedup);
        assert!(e.speedup > 3.9, "got {}", e.speedup);
    }

    #[test]
    fn tight_dependency_serializes() {
        // every thread depends on the previous one with a short arc
        let mut s = stats(1000, 1_000_000);
        s.arcs_t1 = 999;
        s.arc_len_sum_t1 = 999 * 10; // avg arc 10 cycles << thread 1000
        let e = estimate(&s, &EstimatorParams::default());
        assert!(e.base_speedup < 1.02, "got {}", e.base_speedup);
    }

    #[test]
    fn three_quarters_rule_saturates_speedup() {
        // arc length exactly (p-1)/p of thread size, no comm delay
        let params = EstimatorParams {
            comm_delay: 0,
            ..EstimatorParams::default()
        };
        let mut s = stats(1000, 1_000_000);
        s.arcs_t1 = 999;
        s.arc_len_sum_t1 = 999 * 750;
        let e = estimate(&s, &params);
        assert!(
            (e.base_speedup - 4.0).abs() < 1e-9,
            "arc = 3/4 thread size should give full speedup, got {}",
            e.base_speedup
        );
        // slightly shorter arcs must not saturate
        s.arc_len_sum_t1 = 999 * 700;
        let e2 = estimate(&s, &params);
        assert!(e2.base_speedup < 4.0);
        assert!(e2.base_speedup > 3.0);
    }

    #[test]
    fn overflow_forces_serial_execution() {
        let mut s = stats(100, 1_000_000);
        s.overflow_threads = 100;
        let e = estimate(&s, &EstimatorParams::default());
        assert!(e.speedup <= 1.0, "got {}", e.speedup);
    }

    #[test]
    fn small_threads_pay_overheads() {
        // 10-cycle threads: eoi overhead (5) halves throughput even
        // with perfect parallelism
        let s = stats(100_000, 1_000_000);
        let e = estimate(&s, &EstimatorParams::default());
        assert!(e.speedup < 3.0, "got {}", e.speedup);
    }

    #[test]
    fn distant_arcs_saturate_at_k_times_the_rule() {
        // an arc spanning two threads saturates speedup once
        // d >= k*(p-1)/p*S = 1500 here (it is necessarily longer than a
        // thread, so the k=2 bound is the relevant one)
        let params = EstimatorParams {
            comm_delay: 0,
            ..EstimatorParams::default()
        };
        let mut s = stats(1000, 1_000_000);
        s.arcs_lt = 999;
        s.arc_len_sum_lt = 999 * 1600;
        let e = estimate(&s, &params);
        assert!(
            (e.base_speedup - 4.0).abs() < 1e-9,
            "got {}",
            e.base_speedup
        );
        // a shorter distant arc still constrains
        s.arc_len_sum_lt = 999 * 1100;
        let e2 = estimate(&s, &params);
        assert!(
            e2.base_speedup < 4.0 && e2.base_speedup > 1.5,
            "got {}",
            e2.base_speedup
        );
    }

    #[test]
    fn speedup_is_capped_at_processor_count() {
        let s = stats(10, 10_000_000);
        let e = estimate(&s, &EstimatorParams::default());
        assert!(e.speedup <= 4.0);
    }

    #[test]
    fn empty_stats_estimate_neutral() {
        let e = estimate(&StlStats::default(), &EstimatorParams::default());
        assert_eq!(e.base_speedup, 1.0);
        assert!(e.speedup <= 1.0);
    }

    #[test]
    fn near_saturation_counters_do_not_wrap() {
        // entry/thread counts large enough that the overhead products
        // would wrap u64: the estimate must saturate, never panic or
        // come out small enough to look attractive
        let s = StlStats {
            entries: u64::MAX / 2,
            threads: u64::MAX - 1,
            cycles: u64::MAX,
            ..StlStats::default()
        };
        let e = estimate(&s, &EstimatorParams::default());
        assert_eq!(e.est_tls_cycles, u64::MAX);
        assert!(e.speedup <= 1.0 + 1e-9, "got {}", e.speedup);
    }

    #[test]
    fn zero_iteration_entries_estimate_neutral() {
        // entries observed but no threads/cycles at all (every entry
        // exited before its first iteration)
        let s = StlStats {
            entries: 7,
            ..StlStats::default()
        };
        let e = estimate(&s, &EstimatorParams::default());
        assert_eq!(e.base_speedup, 1.0);
        assert!(e.est_tls_cycles >= 1);
        assert!(e.speedup <= 1.0);
    }
}
