//! Per-STL statistics counters and derived values (paper Figure 3).

use crate::pcbins::PcBins;
use std::collections::BTreeMap;
use tvm::isa::LoopId;
use tvm::trace::Cycles;

/// The raw counters one comparator bank accumulates for an STL (the
/// "Values derived from counters" table of Figure 3 plus the overflow
/// counters of Figure 4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StlStats {
    /// Loop entries observed (`sloop` with a successfully allocated
    /// bank).
    pub entries: u64,
    /// Completed speculative threads (iterations, counted at `eoi`).
    pub threads: u64,
    /// Elapsed cycles inside the loop, summed over entries (inclusive
    /// of nested loops and callees).
    pub cycles: u64,
    /// Critical arcs to the immediately previous thread (t-1).
    pub arcs_t1: u64,
    /// Sum of those critical arc lengths.
    pub arc_len_sum_t1: u64,
    /// Critical arcs to earlier threads (< t-1).
    pub arcs_lt: u64,
    /// Sum of those critical arc lengths.
    pub arc_len_sum_lt: u64,
    /// Threads whose speculative state would have overflowed the
    /// Table 1 buffers.
    pub overflow_threads: u64,
    /// Entries that could not be traced (no free comparator bank or no
    /// room for local-variable timestamps). Counted for diagnostics;
    /// no other statistic includes them.
    pub untraced_entries: u64,
    /// Peak distinct load lines seen in any single thread.
    pub max_ld_lines: u32,
    /// Peak distinct store lines seen in any single thread.
    pub max_st_lines: u32,
    /// Sum of squared thread sizes (for the §6.2 variance analysis:
    /// "disparity results mostly from selected STLs with highly
    /// varying thread sizes").
    pub thread_size_sq_sum: u128,
    /// Sum of thread sizes (completed threads only; `cycles` also
    /// includes entry/exit fragments).
    pub thread_size_sum: u64,
}

impl StlStats {
    /// Average speculative thread size in cycles.
    pub fn avg_thread_size(&self) -> f64 {
        if self.threads == 0 {
            0.0
        } else {
            self.cycles as f64 / self.threads as f64
        }
    }

    /// Average iterations per loop entry.
    pub fn avg_iterations_per_entry(&self) -> f64 {
        if self.entries == 0 {
            0.0
        } else {
            self.threads as f64 / self.entries as f64
        }
    }

    /// Threads that can possibly have an arc to a previous thread
    /// (every thread except the first of each entry).
    fn arc_capable_threads(&self) -> u64 {
        self.threads.saturating_sub(self.entries).max(1)
    }

    /// Critical-arc frequency to the previous thread
    /// (`# critical arcs to t-1 / (# threads − 1)` in Figure 3,
    /// generalized to multiple entries).
    pub fn arc_freq_t1(&self) -> f64 {
        self.arcs_t1 as f64 / self.arc_capable_threads() as f64
    }

    /// Critical-arc frequency to earlier (< t-1) threads.
    pub fn arc_freq_lt(&self) -> f64 {
        self.arcs_lt as f64 / self.arc_capable_threads() as f64
    }

    /// Average critical-arc length to the previous thread, in cycles.
    pub fn avg_arc_len_t1(&self) -> f64 {
        if self.arcs_t1 == 0 {
            0.0
        } else {
            self.arc_len_sum_t1 as f64 / self.arcs_t1 as f64
        }
    }

    /// Average critical-arc length to earlier threads.
    pub fn avg_arc_len_lt(&self) -> f64 {
        if self.arcs_lt == 0 {
            0.0
        } else {
            self.arc_len_sum_lt as f64 / self.arcs_lt as f64
        }
    }

    /// Coefficient of variation of the thread size (std-dev divided
    /// by mean) — the paper's §6.2 predictor of estimate disparity.
    pub fn thread_size_cv(&self) -> f64 {
        if self.threads == 0 || self.thread_size_sum == 0 {
            return 0.0;
        }
        let n = self.threads as f64;
        let mean = self.thread_size_sum as f64 / n;
        let var = (self.thread_size_sq_sum as f64 / n) - mean * mean;
        if var <= 0.0 {
            0.0
        } else {
            var.sqrt() / mean
        }
    }

    /// Fraction of threads whose speculative state overflowed.
    pub fn overflow_freq(&self) -> f64 {
        if self.threads == 0 {
            0.0
        } else {
            self.overflow_threads as f64 / self.threads as f64
        }
    }
}

/// A dynamic nesting edge observed at `sloop` time: the child loop
/// started while the parent (or top level, `None`) was the innermost
/// active STL.
pub type ForestEdges = BTreeMap<(Option<LoopId>, LoopId), u64>;

/// Everything TEST collected over one profiled run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// Per-loop statistics.
    pub stl: BTreeMap<LoopId, StlStats>,
    /// Dynamic loop-forest edges with observation counts.
    pub forest_edges: ForestEdges,
    /// Extended implementation: per-load-PC dependency bins.
    pub pc_bins: PcBins,
    /// Maximum dynamic STL nesting depth observed (Table 6's "Loop
    /// depth" is dynamic).
    pub max_dynamic_depth: u32,
    /// Heap store-timestamp FIFO evictions (history lost).
    pub fifo_evictions: u64,
    /// Total trace events processed (diagnostics).
    pub events: u64,
    /// Timestamp of the last event seen.
    pub end_time: Cycles,
    /// Analyzer self-profiling: events attributed to the innermost
    /// active loop at the time each event was processed (`None` =
    /// outside any loop). Maintained by the hardware tracer, where the
    /// values always sum to `events`; the software reference tracer
    /// leaves it empty.
    pub analyzer_events: BTreeMap<Option<LoopId>, u64>,
    /// Peak store-timestamp FIFO occupancy (hardware tracer only).
    pub fifo_depth_watermark: u64,
    /// Peak number of comparator banks simultaneously live (hardware
    /// tracer only).
    pub bank_watermark: u64,
}

impl Profile {
    /// The most frequently observed dynamic parent of `child`.
    pub fn dominant_parent(&self, child: LoopId) -> Option<LoopId> {
        self.forest_edges
            .iter()
            .filter(|((_, c), _)| *c == child)
            .max_by_key(|(_, &count)| count)
            .and_then(|((p, _), _)| *p)
    }

    /// The children of `parent` under dominant-parent attribution.
    pub fn children_of(&self, parent: Option<LoopId>) -> Vec<LoopId> {
        let mut kids: Vec<LoopId> = self
            .stl
            .keys()
            .copied()
            .filter(|&c| self.dominant_parent(c) == parent && Some(c) != parent)
            .collect();
        kids.sort_unstable();
        kids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StlStats {
        StlStats {
            entries: 1,
            threads: 11,
            cycles: 1100,
            arcs_t1: 5,
            arc_len_sum_t1: 250,
            arcs_lt: 2,
            arc_len_sum_lt: 40,
            overflow_threads: 1,
            untraced_entries: 0,
            max_ld_lines: 7,
            max_st_lines: 3,
            thread_size_sq_sum: 11 * 100 * 100,
            thread_size_sum: 11 * 100,
        }
    }

    #[test]
    fn derived_values_match_figure3_definitions() {
        let s = sample();
        assert_eq!(s.avg_thread_size(), 100.0);
        assert_eq!(s.avg_iterations_per_entry(), 11.0);
        assert_eq!(s.arc_freq_t1(), 0.5); // 5 / (11-1)
        assert_eq!(s.arc_freq_lt(), 0.2);
        assert_eq!(s.avg_arc_len_t1(), 50.0);
        assert_eq!(s.avg_arc_len_lt(), 20.0);
        assert!((s.overflow_freq() - 1.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn constant_thread_sizes_have_zero_cv() {
        let s = sample();
        assert!(s.thread_size_cv().abs() < 1e-9);
    }

    #[test]
    fn varying_thread_sizes_have_positive_cv() {
        let mut s = sample();
        // threads of size 50 and 150 instead of 11 x 100
        s.threads = 2;
        s.thread_size_sum = 200;
        s.thread_size_sq_sum = 50 * 50 + 150 * 150;
        assert!((s.thread_size_cv() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_all_zero() {
        let s = StlStats::default();
        assert_eq!(s.avg_thread_size(), 0.0);
        assert_eq!(s.arc_freq_t1(), 0.0);
        assert_eq!(s.overflow_freq(), 0.0);
    }

    #[test]
    fn dominant_parent_picks_most_frequent() {
        let mut p = Profile::default();
        p.stl.insert(LoopId(0), StlStats::default());
        p.stl.insert(LoopId(1), StlStats::default());
        p.forest_edges.insert((None, LoopId(0)), 3);
        p.forest_edges.insert((Some(LoopId(0)), LoopId(1)), 5);
        p.forest_edges.insert((None, LoopId(1)), 2);
        assert_eq!(p.dominant_parent(LoopId(1)), Some(LoopId(0)));
        assert_eq!(p.dominant_parent(LoopId(0)), None);
        assert_eq!(p.children_of(None), vec![LoopId(0)]);
        assert_eq!(p.children_of(Some(LoopId(0))), vec![LoopId(1)]);
    }
}
