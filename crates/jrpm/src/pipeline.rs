//! The end-to-end Jrpm pipeline (paper Figure 1).

use crate::annotate::{annotate, AnnotateOptions};
use cfgir::{extract_candidates, ProgramCandidates};
use hydra_sim::{simulate_entry, TlsConfig, TlsTraceCollector};
use std::collections::BTreeMap;
use test_tracer::{select_with_priors, Profile, SelectionResult, TestTracer, TracerConfig};
use tvm::interp::AnnotationCycles;
use tvm::isa::LoopId;
use tvm::program::Program;
use tvm::{Interp, NullSink, VmError};

/// Configuration for a pipeline run.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineConfig {
    /// TEST hardware configuration.
    pub tracer: TracerConfig,
    /// Hydra TLS machine parameters.
    pub tls: TlsConfig,
}

/// Per-loop outcome of actual speculative execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoopTls {
    /// Sequential cycles the loop's entries covered in the
    /// speculative-instrumentation run.
    pub seq_cycles: u64,
    /// Cycles under TLS execution.
    pub tls_cycles: u64,
    /// Violation restarts.
    pub violations: u64,
    /// Buffer-overflow stalls.
    pub overflows: u64,
    /// Threads executed.
    pub threads: u64,
}

/// Whole-program actual speculative execution (Figure 11's "Actual").
#[derive(Debug, Clone, Default)]
pub struct ActualTls {
    /// Per selected loop.
    pub per_loop: BTreeMap<LoopId, LoopTls>,
    /// Total cycles of the speculative-instrumentation sequential run
    /// (the baseline the TLS composition replaces loop entries in).
    pub baseline_cycles: u64,
    /// Whole-program cycles with selected loops running speculatively.
    pub tls_cycles: u64,
}

impl ActualTls {
    /// Whole-program actual speedup.
    pub fn speedup(&self) -> f64 {
        if self.tls_cycles == 0 {
            1.0
        } else {
            self.baseline_cycles as f64 / self.tls_cycles as f64
        }
    }
}

/// Everything a pipeline run produces.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Plain (unannotated) sequential cycles.
    pub seq_cycles: u64,
    /// Profiling-run cycles (optimized annotations).
    pub profile_cycles: u64,
    /// Profiling-run annotation overhead breakdown.
    pub annotation: AnnotationCycles,
    /// Static candidate extraction results.
    pub candidates: ProgramCandidates,
    /// What TEST collected.
    pub profile: Profile,
    /// Equation 1 + 2 selection.
    pub selection: SelectionResult,
    /// Actual speculative execution of the selected loops.
    pub actual: ActualTls,
}

impl PipelineReport {
    /// Profiling slowdown (Figure 6, optimized annotations).
    pub fn profiling_slowdown(&self) -> f64 {
        self.profile_cycles as f64 / self.seq_cycles as f64
    }

    /// Predicted whole-program normalized execution time
    /// (Figure 10/11: predicted TLS time over sequential time).
    pub fn predicted_normalized(&self) -> f64 {
        self.selection.predicted_cycles as f64 / self.selection.total_cycles as f64
    }

    /// Actual whole-program normalized execution time (Figure 11).
    pub fn actual_normalized(&self) -> f64 {
        self.actual.tls_cycles as f64 / self.actual.baseline_cycles as f64
    }
}

/// Runs the full Jrpm pipeline on `program`.
///
/// ```
/// use jrpm::pipeline::{run_pipeline, PipelineConfig};
/// use tvm::{ProgramBuilder, ElemKind};
///
/// # fn main() -> Result<(), tvm::VmError> {
/// let mut b = ProgramBuilder::new();
/// let main = b.function("main", 0, false, |f| {
///     let (a, i) = (f.local(), f.local());
///     f.ci(256).newarray(ElemKind::Int).st(a);
///     f.for_in(i, 0.into(), 256.into(), |f| {
///         f.arr_set(a, |f| { f.ld(i); }, |f| { f.ld(i).ld(i).imul(); });
///     });
///     f.ret_void();
/// });
/// let program = b.finish(main)?;
/// let report = run_pipeline(&program, &PipelineConfig::default())?;
/// assert!(!report.selection.chosen.is_empty(), "the loop is parallel");
/// assert!(report.actual_normalized() < 0.7, "and Hydra speeds it up");
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Any [`VmError`] from the three executions (plain, profiling,
/// trace-collection).
pub fn run_pipeline(program: &Program, cfg: &PipelineConfig) -> Result<PipelineReport, VmError> {
    // 1. identify candidate STLs
    let candidates = extract_candidates(program);

    // 2. plain sequential run (the Figure 6 baseline)
    let seq = Interp::run(program, &mut NullSink)?;

    // 3. profile with TEST on the fully annotated program (loops the
    //    static pre-screen demoted are left unannotated, so the tracer
    //    spends no banks on them)
    let annotated = annotate(program, &candidates, &AnnotateOptions::profiling())?;
    let mut tracer = TestTracer::new(cfg.tracer);
    tracer.set_local_masks(candidates.tracked_masks());
    let prof_run = Interp::run(&annotated, &mut tracer)?;
    let profile = tracer.into_profile();

    // 4. select decompositions (Equations 1 and 2), with the static
    //    verdicts as priors
    let selection = select_with_priors(
        &profile,
        &cfg.tls.estimator_params(),
        prof_run.cycles,
        &candidates.demoted_ids(),
    );

    // 5. recompile only the selected loops and collect TLS traces
    let chosen: Vec<LoopId> = selection.chosen.iter().map(|c| c.loop_id).collect();
    let actual = if chosen.is_empty() {
        ActualTls {
            per_loop: BTreeMap::new(),
            baseline_cycles: seq.cycles,
            tls_cycles: seq.cycles,
        }
    } else {
        let spec = annotate(program, &candidates, &AnnotateOptions::only(chosen.clone()))?;
        let mut collector = TlsTraceCollector::new(chosen);
        collector.set_local_masks(candidates.tracked_masks());
        let spec_run = Interp::run(&spec, &mut collector)?;

        // 6. simulate each entry on Hydra
        let mut per_loop: BTreeMap<LoopId, LoopTls> = BTreeMap::new();
        let mut total = spec_run.cycles;
        for entry in &collector.entries {
            let r = simulate_entry(entry, &cfg.tls);
            let l = per_loop.entry(entry.loop_id).or_default();
            l.seq_cycles += entry.seq_cycles;
            l.tls_cycles += r.tls_cycles;
            l.violations += r.violations;
            l.overflows += r.overflows;
            l.threads += r.threads;
            total = total.saturating_sub(entry.seq_cycles) + r.tls_cycles;
        }
        ActualTls {
            per_loop,
            baseline_cycles: spec_run.cycles,
            tls_cycles: total,
        }
    };

    Ok(PipelineReport {
        seq_cycles: seq.cycles,
        profile_cycles: prof_run.cycles,
        annotation: prof_run.annotation_cycles,
        candidates,
        profile,
        selection,
        actual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{ElemKind, ProgramBuilder};

    /// A loop with abundant parallelism: disjoint writes per iteration.
    fn parallel_program(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            let (a, i, k) = (f.local(), f.local(), f.local());
            f.ci(256).newarray(ElemKind::Int).st(a);
            f.for_in(i, 0.into(), iters.into(), |f| {
                // some per-iteration work on a private slice
                f.for_in(k, 0.into(), 20.into(), |f| {
                    f.arr_set(
                        a,
                        |f| {
                            f.ld(i)
                                .ci(8)
                                .imul()
                                .ld(k)
                                .ci(7)
                                .iand()
                                .iadd()
                                .ci(255)
                                .iand();
                        },
                        |f| {
                            f.ld(i).ld(k).imul();
                        },
                    );
                });
            });
            f.ret_void();
        });
        b.finish(main).unwrap()
    }

    /// A pointer-chase-like serial accumulator through memory.
    fn serial_program(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, false, |f| {
            let i = f.local();
            f.for_in(i, 0.into(), iters.into(), |f| {
                // g = (g*5+1) via memory: loop-carried through the heap
                f.getstatic(g).ci(5).imul().ci(1).iadd().putstatic(g);
            });
            f.ret_void();
        });
        b.finish(main).unwrap()
    }

    #[test]
    fn parallel_loop_is_selected_and_speeds_up() {
        let p = parallel_program(200);
        let r = run_pipeline(&p, &PipelineConfig::default()).unwrap();
        assert!(
            !r.selection.chosen.is_empty(),
            "expected a selected STL, estimates: {:?}",
            r.selection.estimates
        );
        assert!(
            r.predicted_normalized() < 0.6,
            "{}",
            r.predicted_normalized()
        );
        assert!(r.actual_normalized() < 0.7, "{}", r.actual_normalized());
        // this kernel's inner loop iterates every ~25 cycles, an
        // adversarial case for annotation overhead; the 3-25% claim is
        // checked on the realistic suite in benchsuite/jrpm-bench
        assert!(r.profiling_slowdown() < 1.5, "{}", r.profiling_slowdown());
    }

    #[test]
    fn serial_loop_is_not_selected() {
        let p = serial_program(500);
        let r = run_pipeline(&p, &PipelineConfig::default()).unwrap();
        assert!(
            r.selection.chosen.is_empty(),
            "chose {:?}",
            r.selection.chosen
        );
        assert_eq!(r.actual.tls_cycles, r.actual.baseline_cycles);
    }

    #[test]
    fn prediction_tracks_actual_within_reason() {
        let p = parallel_program(400);
        let r = run_pipeline(&p, &PipelineConfig::default()).unwrap();
        let pred = r.predicted_normalized();
        let act = r.actual_normalized();
        // Figure 11: predictions are good but not perfect
        assert!(
            (pred - act).abs() < 0.35,
            "predicted {pred:.2} vs actual {act:.2}"
        );
    }
}
