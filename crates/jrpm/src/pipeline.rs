//! The end-to-end Jrpm pipeline (paper Figure 1), staged over the
//! trace bus.
//!
//! The pipeline is a sequence of explicit stages — extract, rescue,
//! annotate, record, replay-profile, select, collect, simulate — with the
//! trace-event stream as the IR between execution and analysis. The
//! annotated program is interpreted **once**; its event stream is
//! captured as [`tvm::bus::EventBatch`]es and replayed into the TEST
//! tracer (and any other consumer) through a [`tvm::bus::TraceBus`].
//! The plain sequential baseline is *derived*, not re-executed: the
//! interpreter tallies annotation-instruction cycles separately
//! ([`AnnotationCycles`]), and since the annotation pass only inserts
//! annotation instructions, `annotated − annotation = plain` exactly.
//! That cuts the pipeline from three interpreter executions to two
//! (profiling + TLS collection; the latter runs a differently
//! annotated program, so it cannot share the recording without
//! changing timestamps).
//!
//! Every run writes its measurements into an [`obs::Registry`] (and,
//! when [`ObsConfig::trace`] is set, streams spans and counter series
//! into an [`obs::Trace`] exportable as Chrome trace-event JSON): the
//! stages become `pipeline.stage.<NN>.<name>` wall-time counters and
//! spans on a `pipeline` track, the profiling bus contributes `bus.*`
//! counters and per-sink tracks, and the TEST tracer's self-profiling
//! lands under `tracer.*` with per-candidate analyzer-event
//! attribution. The [`PipelineObservability`] report is a *view over
//! the registry* — [`PipelineObservability::from_snapshot`]
//! reconstructs it from the sorted snapshot, so anything the report
//! shows is also present in the exported metrics.

use crate::annotate::{annotate, AnnotateOptions};
use cfgir::{ProgramCandidates, RescueRejection, RescuedLoop};
use hydra_sim::{simulate_entry, TlsConfig, TlsTraceCollector};
use obs::{Registry, Snapshot, Telemetry, Trace as ObsTrace, TrackId};
use std::collections::BTreeMap;
use std::time::Instant;
use test_tracer::{Profile, SelectionResult, TracerConfig};
use tvm::bus::{BusReport, EventKind, KindCounts, SinkStats};
use tvm::interp::AnnotationCycles;
use tvm::isa::LoopId;
use tvm::program::Program;
use tvm::{Interp, VmError, DEFAULT_BATCH_CAPACITY, DEFAULT_CHANNEL_DEPTH};

/// Trace-bus delivery parameters for a pipeline run.
#[derive(Debug, Clone, Copy)]
pub struct BusConfig {
    /// Events per [`tvm::bus::EventBatch`].
    pub batch_capacity: usize,
    /// Bound of each consumer's batch channel (threaded mode).
    pub channel_depth: usize,
    /// Drain consumers on their own threads, overlapping analysis
    /// with interpretation. Output is bit-identical either way.
    pub threaded: bool,
}

impl Default for BusConfig {
    fn default() -> BusConfig {
        BusConfig {
            batch_capacity: DEFAULT_BATCH_CAPACITY,
            channel_depth: DEFAULT_CHANNEL_DEPTH,
            threaded: false,
        }
    }
}

/// Span/trace emission parameters for a pipeline run. Registry
/// counters are always collected (they cost a handful of atomic adds
/// per stage); the span trace is opt-in because sampled tracer series
/// grow with the event stream.
#[derive(Debug, Clone, Copy)]
pub struct ObsConfig {
    /// Stream spans, counter series, and overflow instants into the
    /// run's [`obs::Trace`] (for Chrome trace-event export).
    pub trace: bool,
    /// Tracer self-profiling sample period, in analyzer events.
    pub sample_every: u64,
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig {
            trace: false,
            sample_every: 4096,
        }
    }
}

/// Configuration for a pipeline run.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineConfig {
    /// TEST hardware configuration.
    pub tracer: TracerConfig,
    /// Hydra TLS machine parameters.
    pub tls: TlsConfig,
    /// Trace-bus delivery parameters.
    pub bus: BusConfig,
    /// Observability emission parameters.
    pub obs: ObsConfig,
    /// Skip the loop-rescue stage and run the program exactly as
    /// written (rescue is on by default).
    pub no_rescue: bool,
}

/// What the loop-rescue stage did to the program before profiling.
#[derive(Debug, Clone, Default)]
pub struct RescueSummary {
    /// Verifier-accepted transforms, in application order.
    pub rescued: Vec<RescuedLoop>,
    /// Loops a transform considered but could not legalize.
    pub rejected: Vec<RescueRejection>,
    /// The transformed program, when any transform applied. Everything
    /// downstream of the rescue stage — candidates, annotation,
    /// profiling, selection — is relative to this program, so any
    /// consumer that pairs [`PipelineReport::candidates`] with a
    /// program must use it too (see [`RescueSummary::program_for`]).
    pub program: Option<Program>,
}

impl RescueSummary {
    /// True when at least one loop was transformed.
    pub fn changed(&self) -> bool {
        !self.rescued.is_empty()
    }

    /// The program the pipeline actually profiled: the rescued variant
    /// when a transform applied, otherwise the original.
    pub fn program_for<'a>(&'a self, original: &'a Program) -> &'a Program {
        self.program.as_ref().unwrap_or(original)
    }
}

/// Wall time of one pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTime {
    /// Stage name (`extract`, `annotate`, `record`, …).
    pub stage: String,
    /// Wall time spent in the stage, in nanoseconds.
    pub nanos: u64,
}

/// Observability report of one pipeline run.
#[derive(Debug, Clone, Default)]
pub struct PipelineObservability {
    /// Per-stage wall times, in execution order.
    pub stages: Vec<StageTime>,
    /// Interpreter executions performed (at most 2).
    pub interpreter_passes: u32,
    /// Trace events that crossed the bus in the profiling stage.
    pub recorded_events: u64,
    /// Those events, by kind.
    pub by_kind: KindCounts,
    /// Batches that crossed the bus in the profiling stage.
    pub batches: u64,
    /// Configured events-per-batch capacity.
    pub batch_capacity: usize,
    /// The profiling stage's bus report (per-sink counters; lag/drop
    /// counters populate in threaded mode).
    pub bus: BusReport,
}

impl PipelineObservability {
    /// Total wall time across stages, in nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.stages.iter().map(|s| s.nanos).sum()
    }

    /// Wall time of one stage (0 when the stage didn't run).
    pub fn stage_nanos(&self, stage: &str) -> u64 {
        self.stages
            .iter()
            .filter(|s| s.stage == stage)
            .map(|s| s.nanos)
            .sum()
    }

    /// Mean fill fraction of the profiling stage's batches.
    pub fn avg_batch_occupancy(&self) -> f64 {
        if self.batches == 0 || self.batch_capacity == 0 {
            0.0
        } else {
            self.recorded_events as f64 / (self.batches * self.batch_capacity as u64) as f64
        }
    }

    /// Profiling-stage event throughput (events per wall-clock
    /// second over the record + replay-profile stages).
    pub fn events_per_sec(&self) -> f64 {
        let nanos = self.stage_nanos("record")
            + self.stage_nanos("replay-profile")
            + self.stage_nanos("record+profile");
        if nanos == 0 {
            0.0
        } else {
            self.recorded_events as f64 * 1e9 / nanos as f64
        }
    }

    /// Reconstructs the report from a registry snapshot. This is the
    /// inverse of what [`run_pipeline`] records: stage counters are
    /// named `pipeline.stage.<NN>.<name>` (the zero-padded sequence
    /// number makes lexicographic order execution order), bus totals
    /// live under `bus.*`, and per-sink counters under
    /// `bus.sink.<i>.*` with the label attached as a note.
    pub fn from_snapshot(s: &Snapshot) -> PipelineObservability {
        let mut stages = Vec::new();
        for (name, &nanos) in &s.counters {
            if let Some(rest) = name.strip_prefix("pipeline.stage.") {
                if let Some((_, stage)) = rest.split_once('.') {
                    stages.push(StageTime {
                        stage: stage.to_string(),
                        nanos,
                    });
                }
            }
        }
        let kind_counts = |prefix: &str| {
            let mut k = KindCounts::default();
            for kind in EventKind::ALL {
                k.add(kind, s.counter(&format!("{prefix}{}", kind.name())));
            }
            k
        };
        let mut sinks = Vec::new();
        loop {
            let p = format!("bus.sink.{}.", sinks.len());
            let present = s.counters.keys().any(|k| k.starts_with(&p))
                || s.notes.keys().any(|k| k.starts_with(&p));
            if !present {
                break;
            }
            sinks.push(SinkStats {
                label: s.note(&format!("{p}label")).to_string(),
                events: s.counter(&format!("{p}events")),
                by_kind: kind_counts(&format!("{p}kind.")),
                batches: s.counter(&format!("{p}batches")),
                lagged_batches: s.counter(&format!("{p}lagged_batches")),
                dropped_batches: s.counter(&format!("{p}dropped_batches")),
                drain_nanos: s.counter(&format!("{p}drain_nanos")),
                queue_depth_high_water: s.counter(&format!("{p}queue_depth_high_water")),
            });
        }
        let by_kind = kind_counts("bus.kind.");
        PipelineObservability {
            stages,
            interpreter_passes: s.counter("pipeline.interpreter_passes") as u32,
            recorded_events: s.counter("bus.events"),
            by_kind,
            batches: s.counter("bus.batches"),
            batch_capacity: s.counter("pipeline.batch_capacity") as usize,
            bus: BusReport {
                batches: s.counter("bus.batches"),
                events: s.counter("bus.events"),
                batch_capacity: s.counter("bus.batch_capacity") as usize,
                by_kind,
                sinks,
                threaded: s.counter("bus.threaded") > 0,
            },
        }
    }
}

/// Stage bookkeeping: one registry counter per stage (sequence-
/// numbered so snapshots preserve execution order) plus, when tracing,
/// a span on the `pipeline` wall track. Shared with the tier
/// controller (`crate::tier`), which drives the same stages per-loop.
pub(crate) struct StageRecorder<'a> {
    pub(crate) registry: &'a Registry,
    pub(crate) trace: Option<(&'a ObsTrace, TrackId)>,
    pub(crate) seq: u32,
}

impl StageRecorder<'_> {
    pub(crate) fn begin(&self, name: &str) -> Instant {
        if let Some((tr, t)) = self.trace {
            tr.begin(t, name);
        }
        Instant::now()
    }

    pub(crate) fn end(&mut self, name: &str, started: Instant) {
        let nanos = started.elapsed().as_nanos() as u64;
        self.registry
            .counter(&format!("pipeline.stage.{:02}.{name}", self.seq))
            .add(nanos);
        self.seq += 1;
        if let Some((tr, t)) = self.trace {
            tr.end(t, name);
        }
    }
}

/// Writes one bus run's totals and per-sink counters into the registry.
pub(crate) fn record_bus_report(registry: &Registry, report: &BusReport) {
    registry.counter("bus.batches").add(report.batches);
    registry.counter("bus.events").add(report.events);
    registry
        .counter("bus.batch_capacity")
        .record_max(report.batch_capacity as u64);
    if report.threaded {
        registry.counter("bus.threaded").record_max(1);
    }
    for (kind, n) in report.by_kind.iter() {
        if n > 0 {
            registry
                .counter(&format!("bus.kind.{}", kind.name()))
                .add(n);
        }
    }
    for (i, sink) in report.sinks.iter().enumerate() {
        let p = format!("bus.sink.{i}.");
        registry.note(&format!("{p}label"), sink.label.clone());
        registry.counter(&format!("{p}events")).add(sink.events);
        registry.counter(&format!("{p}batches")).add(sink.batches);
        registry
            .counter(&format!("{p}lagged_batches"))
            .add(sink.lagged_batches);
        registry
            .counter(&format!("{p}dropped_batches"))
            .add(sink.dropped_batches);
        registry
            .counter(&format!("{p}drain_nanos"))
            .add(sink.drain_nanos);
        registry
            .counter(&format!("{p}queue_depth_high_water"))
            .record_max(sink.queue_depth_high_water);
        for (kind, n) in sink.by_kind.iter() {
            if n > 0 {
                registry.counter(&format!("{p}kind.{}", kind.name())).add(n);
            }
        }
    }
}

/// Writes the TEST tracer's self-profiling results into the registry.
pub(crate) fn record_tracer_profile(registry: &Registry, profile: &Profile) {
    registry.counter("tracer.events").add(profile.events);
    registry
        .counter("tracer.fifo_evictions")
        .add(profile.fifo_evictions);
    registry
        .counter("tracer.fifo_depth_watermark")
        .record_max(profile.fifo_depth_watermark);
    registry
        .counter("tracer.bank_watermark")
        .record_max(profile.bank_watermark);
    for (&key, &count) in &profile.analyzer_events {
        let name = match key {
            Some(l) => format!("tracer.analyzer_events.{l}"),
            None => "tracer.analyzer_events.outside".to_string(),
        };
        registry.counter(&name).add(count);
    }
}

/// Per-loop outcome of actual speculative execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoopTls {
    /// Sequential cycles the loop's entries covered in the
    /// speculative-instrumentation run.
    pub seq_cycles: u64,
    /// Cycles under TLS execution.
    pub tls_cycles: u64,
    /// Violation restarts.
    pub violations: u64,
    /// Buffer-overflow stalls.
    pub overflows: u64,
    /// Threads executed.
    pub threads: u64,
}

/// Whole-program actual speculative execution (Figure 11's "Actual").
#[derive(Debug, Clone, Default)]
pub struct ActualTls {
    /// Per selected loop.
    pub per_loop: BTreeMap<LoopId, LoopTls>,
    /// Total cycles of the speculative-instrumentation sequential run
    /// (the baseline the TLS composition replaces loop entries in).
    pub baseline_cycles: u64,
    /// Whole-program cycles with selected loops running speculatively.
    pub tls_cycles: u64,
}

impl ActualTls {
    /// Whole-program actual speedup.
    pub fn speedup(&self) -> f64 {
        if self.tls_cycles == 0 {
            1.0
        } else {
            self.baseline_cycles as f64 / self.tls_cycles as f64
        }
    }
}

/// Everything a pipeline run produces.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Plain (unannotated) sequential cycles, derived exactly from
    /// the profiling run by subtracting the separately tallied
    /// annotation-instruction cycles.
    pub seq_cycles: u64,
    /// Profiling-run cycles (optimized annotations).
    pub profile_cycles: u64,
    /// Profiling-run annotation overhead breakdown.
    pub annotation: AnnotationCycles,
    /// Static candidate extraction results (on the rescued program
    /// when the rescue stage transformed anything).
    pub candidates: ProgramCandidates,
    /// What the loop-rescue stage transformed or refused.
    pub rescue: RescueSummary,
    /// What TEST collected.
    pub profile: Profile,
    /// Equation 1 + 2 selection.
    pub selection: SelectionResult,
    /// Actual speculative execution of the selected loops.
    pub actual: ActualTls,
    /// Per-stage timings and bus counters (a view reconstructed from
    /// `telemetry`'s registry snapshot).
    pub obs: PipelineObservability,
    /// The run's full observability handles: the metrics registry
    /// behind `obs`, plus the span trace (empty unless
    /// [`ObsConfig::trace`] was set).
    pub telemetry: Telemetry,
}

impl PipelineReport {
    /// Profiling slowdown (Figure 6, optimized annotations). 1.0 for
    /// a degenerate zero-cycle baseline.
    pub fn profiling_slowdown(&self) -> f64 {
        if self.seq_cycles == 0 {
            1.0
        } else {
            self.profile_cycles as f64 / self.seq_cycles as f64
        }
    }

    /// Predicted whole-program normalized execution time
    /// (Figure 10/11: predicted TLS time over sequential time). 1.0
    /// for a degenerate zero-cycle program.
    pub fn predicted_normalized(&self) -> f64 {
        if self.selection.total_cycles == 0 {
            1.0
        } else {
            self.selection.predicted_cycles as f64 / self.selection.total_cycles as f64
        }
    }

    /// Actual whole-program normalized execution time (Figure 11).
    /// 1.0 for a degenerate zero-cycle baseline.
    pub fn actual_normalized(&self) -> f64 {
        if self.actual.baseline_cycles == 0 {
            1.0
        } else {
            self.actual.tls_cycles as f64 / self.actual.baseline_cycles as f64
        }
    }
}

/// Runs the full Jrpm pipeline on `program`.
///
/// ```
/// use jrpm::pipeline::{run_pipeline, PipelineConfig};
/// use tvm::{ProgramBuilder, ElemKind};
///
/// # fn main() -> Result<(), tvm::VmError> {
/// let mut b = ProgramBuilder::new();
/// let main = b.function("main", 0, false, |f| {
///     let (a, i) = (f.local(), f.local());
///     f.ci(256).newarray(ElemKind::Int).st(a);
///     f.for_in(i, 0.into(), 256.into(), |f| {
///         f.arr_set(a, |f| { f.ld(i); }, |f| { f.ld(i).ld(i).imul(); });
///     });
///     f.ret_void();
/// });
/// let program = b.finish(main)?;
/// let report = run_pipeline(&program, &PipelineConfig::default())?;
/// assert!(!report.selection.chosen.is_empty(), "the loop is parallel");
/// assert!(report.actual_normalized() < 0.7, "and Hydra speeds it up");
/// assert!(report.obs.interpreter_passes <= 2);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Any [`VmError`] from the two executions (profiling,
/// trace-collection).
pub fn run_pipeline(program: &Program, cfg: &PipelineConfig) -> Result<PipelineReport, VmError> {
    crate::tier::run_tiered(program, cfg, &crate::tier::TierConfig::immediate()).map(|o| o.report)
}

/// Stages 5–6: recompile only the selected loops, collect TLS traces
/// (one more interpreter pass), and simulate each entry on Hydra.
/// Shared by the offline batch and the tier controller's finalization
/// — both converge on the same selected set, so both produce identical
/// actual-TLS numbers through this single implementation.
pub(crate) fn collect_and_simulate(
    program: &Program,
    candidates: &ProgramCandidates,
    chosen: Vec<LoopId>,
    seq_cycles: u64,
    cfg: &PipelineConfig,
    registry: &Registry,
    stages: &mut StageRecorder<'_>,
) -> Result<ActualTls, VmError> {
    if chosen.is_empty() {
        return Ok(ActualTls {
            per_loop: BTreeMap::new(),
            baseline_cycles: seq_cycles,
            tls_cycles: seq_cycles,
        });
    }
    // recompile only the selected loops and collect TLS traces. This
    // interprets a *differently annotated* program (different
    // timestamps), so it cannot replay the profiling recording.
    let t = stages.begin("collect");
    let spec = annotate(program, candidates, &AnnotateOptions::only(chosen.clone()))?;
    let mut collector = TlsTraceCollector::with_masks(chosen, candidates.tracked_masks());
    registry.counter("pipeline.interpreter_passes").inc();
    let spec_run = Interp::run(&spec, &mut collector)?;
    stages.end("collect", t);

    // simulate each entry on Hydra
    let t = stages.begin("simulate");
    let mut per_loop: BTreeMap<LoopId, LoopTls> = BTreeMap::new();
    let mut total = spec_run.cycles;
    for entry in &collector.entries {
        let r = simulate_entry(entry, &cfg.tls);
        let l = per_loop.entry(entry.loop_id).or_default();
        l.seq_cycles += entry.seq_cycles;
        l.tls_cycles += r.tls_cycles;
        l.violations += r.violations;
        l.overflows += r.overflows;
        l.threads += r.threads;
        total = total.saturating_sub(entry.seq_cycles) + r.tls_cycles;
    }
    stages.end("simulate", t);
    Ok(ActualTls {
        per_loop,
        baseline_cycles: spec_run.cycles,
        tls_cycles: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{ElemKind, NullSink, ProgramBuilder};

    /// A loop with abundant parallelism: disjoint writes per iteration.
    fn parallel_program(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            let (a, i, k) = (f.local(), f.local(), f.local());
            f.ci(256).newarray(ElemKind::Int).st(a);
            f.for_in(i, 0.into(), iters.into(), |f| {
                // some per-iteration work on a private slice
                f.for_in(k, 0.into(), 20.into(), |f| {
                    f.arr_set(
                        a,
                        |f| {
                            f.ld(i)
                                .ci(8)
                                .imul()
                                .ld(k)
                                .ci(7)
                                .iand()
                                .iadd()
                                .ci(255)
                                .iand();
                        },
                        |f| {
                            f.ld(i).ld(k).imul();
                        },
                    );
                });
            });
            f.ret_void();
        });
        b.finish(main).unwrap()
    }

    /// A pointer-chase-like serial accumulator through memory.
    fn serial_program(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, false, |f| {
            let i = f.local();
            f.for_in(i, 0.into(), iters.into(), |f| {
                // g = (g*5+1) via memory: loop-carried through the heap
                f.getstatic(g).ci(5).imul().ci(1).iadd().putstatic(g);
            });
            f.ret_void();
        });
        b.finish(main).unwrap()
    }

    #[test]
    fn parallel_loop_is_selected_and_speeds_up() {
        let p = parallel_program(200);
        let r = run_pipeline(&p, &PipelineConfig::default()).unwrap();
        assert!(
            !r.selection.chosen.is_empty(),
            "expected a selected STL, estimates: {:?}",
            r.selection.estimates
        );
        assert!(
            r.predicted_normalized() < 0.6,
            "{}",
            r.predicted_normalized()
        );
        assert!(r.actual_normalized() < 0.7, "{}", r.actual_normalized());
        // this kernel's inner loop iterates every ~25 cycles, an
        // adversarial case for annotation overhead; the 3-25% claim is
        // checked on the realistic suite in benchsuite/jrpm-bench
        assert!(r.profiling_slowdown() < 1.5, "{}", r.profiling_slowdown());
    }

    /// `g += a[i]*a[i]` — demoted as written (static recurrence), but
    /// rescuable by the reduction delta-rewrite.
    fn reduction_program(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, false, |f| {
            let (a, i) = (f.local(), f.local());
            f.ci(256).newarray(ElemKind::Int).st(a);
            f.for_in(i, 0.into(), iters.into(), |f| {
                f.arr_set(
                    a,
                    |f| {
                        f.ld(i).ci(255).iand();
                    },
                    |f| {
                        f.ld(i).ci(3).imul();
                    },
                );
            });
            f.for_in(i, 0.into(), iters.into(), |f| {
                f.getstatic(g)
                    .ld(a)
                    .ld(i)
                    .ci(255)
                    .iand()
                    .aload()
                    .ld(a)
                    .ld(i)
                    .ci(255)
                    .iand()
                    .aload()
                    .imul()
                    .iadd()
                    .putstatic(g);
            });
            f.ret_void();
        });
        b.finish(main).unwrap()
    }

    #[test]
    fn rescue_turns_a_demoted_reduction_into_a_selected_stl() {
        let p = reduction_program(400);
        // as written, the reduction loop is demoted and never chosen
        let off = run_pipeline(
            &p,
            &PipelineConfig {
                no_rescue: true,
                ..PipelineConfig::default()
            },
        )
        .unwrap();
        assert!(off.rescue.rescued.is_empty());
        // with rescue on, the delta rewrite removes the recurrence and
        // the loop is selected
        let on = run_pipeline(&p, &PipelineConfig::default()).unwrap();
        assert_eq!(
            on.rescue.rescued.len(),
            1,
            "rejections: {:?}",
            on.rescue.rejected
        );
        assert!(
            on.selection.chosen.len() > off.selection.chosen.len(),
            "rescue did not add a selected STL: {:?} vs {:?}",
            on.selection.chosen,
            off.selection.chosen
        );
        assert!(on.obs.stage_nanos("rescue") > 0);
    }

    #[test]
    fn serial_loop_is_not_selected() {
        let p = serial_program(500);
        let r = run_pipeline(&p, &PipelineConfig::default()).unwrap();
        assert!(
            r.selection.chosen.is_empty(),
            "chose {:?}",
            r.selection.chosen
        );
        assert_eq!(r.actual.tls_cycles, r.actual.baseline_cycles);
    }

    #[test]
    fn prediction_tracks_actual_within_reason() {
        let p = parallel_program(400);
        let r = run_pipeline(&p, &PipelineConfig::default()).unwrap();
        let pred = r.predicted_normalized();
        let act = r.actual_normalized();
        // Figure 11: predictions are good but not perfect
        assert!(
            (pred - act).abs() < 0.35,
            "predicted {pred:.2} vs actual {act:.2}"
        );
    }

    #[test]
    fn derived_baseline_equals_a_real_plain_run() {
        for p in [parallel_program(150), serial_program(300)] {
            let r = run_pipeline(&p, &PipelineConfig::default()).unwrap();
            let plain = Interp::run(&p, &mut NullSink).unwrap();
            assert_eq!(r.seq_cycles, plain.cycles);
        }
    }

    #[test]
    fn pipeline_performs_at_most_two_passes_and_times_stages() {
        let p = parallel_program(100);
        let r = run_pipeline(&p, &PipelineConfig::default()).unwrap();
        assert_eq!(r.obs.interpreter_passes, 2, "profile + collect");
        assert!(r.obs.recorded_events > 0);
        assert!(r.obs.stage_nanos("record") > 0);
        assert!(r.obs.stage_nanos("select") > 0);
        assert!(r.obs.avg_batch_occupancy() > 0.0);
        assert!(r.obs.events_per_sec() > 0.0);

        let serial = run_pipeline(&serial_program(100), &PipelineConfig::default()).unwrap();
        assert_eq!(serial.obs.interpreter_passes, 1, "nothing chosen");
    }

    #[test]
    fn observability_report_is_a_faithful_view_of_the_registry() {
        let p = parallel_program(100);
        let r = run_pipeline(&p, &PipelineConfig::default()).unwrap();
        // the report can be reconstructed from the snapshot verbatim
        let rebuilt = PipelineObservability::from_snapshot(&r.telemetry.snapshot());
        assert_eq!(rebuilt.stages, r.obs.stages);
        assert_eq!(rebuilt.interpreter_passes, r.obs.interpreter_passes);
        assert_eq!(rebuilt.recorded_events, r.obs.recorded_events);
        assert_eq!(rebuilt.by_kind, r.obs.by_kind);
        assert_eq!(rebuilt.bus, r.obs.bus);
        // per-sink counters carry the sink label as a note
        let snap = r.telemetry.snapshot();
        assert_eq!(snap.note("bus.sink.0.label"), "test-tracer");
        assert_eq!(snap.counter("bus.sink.0.events"), r.obs.recorded_events);
        // analyzer attribution landed in the registry and sums to the
        // tracer's total event count
        let attributed: u64 = snap
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("tracer.analyzer_events."))
            .map(|(_, &v)| v)
            .sum();
        assert_eq!(attributed, r.profile.events);
        assert_eq!(snap.counter("tracer.events"), r.profile.events);
        // no trace requested: the span trace stays empty
        assert_eq!(r.telemetry.trace.event_count(), 0);
    }

    #[test]
    fn tracing_run_emits_nested_stage_spans_and_candidate_series() {
        use obs::{TimeDomain, TrackEventKind};
        let p = parallel_program(100);
        let cfg = PipelineConfig {
            obs: ObsConfig {
                trace: true,
                sample_every: 64,
            },
            ..PipelineConfig::default()
        };
        let r = run_pipeline(&p, &cfg).unwrap();
        let tracks = r.telemetry.trace.tracks();
        let pipeline = tracks
            .iter()
            .find(|t| t.name == "pipeline")
            .expect("pipeline track");
        assert_eq!(pipeline.domain, TimeDomain::Wall);
        assert!(pipeline.open.is_empty(), "all spans closed");
        let begins: Vec<&str> = pipeline
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                TrackEventKind::Begin(n) => Some(n.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(begins[0], "run", "stage spans nest inside the run span");
        for want in ["extract", "annotate", "record", "select"] {
            assert!(begins.contains(&want), "missing stage span {want}");
        }
        // the tracer self-profiling track carries per-candidate series
        let tracer = tracks
            .iter()
            .find(|t| t.name == "tracer")
            .expect("tracer track");
        assert_eq!(tracer.domain, TimeDomain::Cycles);
        let finals: std::collections::BTreeMap<&str, u64> = tracer
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                TrackEventKind::Counter(n, v) if n.starts_with("analyzer.") => {
                    Some((n.as_str(), *v))
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            finals.values().sum::<u64>(),
            r.profile.events,
            "per-candidate attribution sums to the recorded total"
        );
        // sink drain activity shows up as its own track
        assert!(tracks.iter().any(|t| t.name == "sink:test-tracer"));
        // and tracing must not change the analysis
        let plain = run_pipeline(&p, &PipelineConfig::default()).unwrap();
        assert_eq!(plain.profile, r.profile);
        assert_eq!(plain.selection.chosen, r.selection.chosen);
    }

    #[test]
    fn threaded_bus_mode_is_bit_identical() {
        let p = parallel_program(150);
        let direct = run_pipeline(&p, &PipelineConfig::default()).unwrap();
        let threaded = run_pipeline(
            &p,
            &PipelineConfig {
                bus: BusConfig {
                    batch_capacity: 64,
                    channel_depth: 2,
                    threaded: true,
                },
                ..PipelineConfig::default()
            },
        )
        .unwrap();
        assert_eq!(threaded.seq_cycles, direct.seq_cycles);
        assert_eq!(threaded.profile_cycles, direct.profile_cycles);
        assert_eq!(threaded.profile, direct.profile);
        assert_eq!(threaded.selection.chosen, direct.selection.chosen);
        assert_eq!(threaded.actual.tls_cycles, direct.actual.tls_cycles);
        assert!(threaded.obs.bus.threaded);
        assert_eq!(threaded.obs.bus.sinks[0].dropped_batches, 0);
    }

    #[test]
    fn ratio_helpers_guard_zero_denominators() {
        let r = PipelineReport {
            seq_cycles: 0,
            profile_cycles: 0,
            annotation: AnnotationCycles::default(),
            candidates: ProgramCandidates::default(),
            rescue: RescueSummary::default(),
            profile: Profile::default(),
            selection: SelectionResult::default(),
            actual: ActualTls::default(),
            obs: PipelineObservability::default(),
            telemetry: Telemetry::default(),
        };
        assert_eq!(r.profiling_slowdown(), 1.0);
        assert_eq!(r.predicted_normalized(), 1.0);
        assert_eq!(r.actual_normalized(), 1.0);
        assert_eq!(r.actual.speedup(), 1.0);
    }
}
