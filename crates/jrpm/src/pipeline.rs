//! The end-to-end Jrpm pipeline (paper Figure 1), staged over the
//! trace bus.
//!
//! The pipeline is a sequence of explicit stages — extract, annotate,
//! record, replay-profile, select, collect, simulate — with the
//! trace-event stream as the IR between execution and analysis. The
//! annotated program is interpreted **once**; its event stream is
//! captured as [`tvm::bus::EventBatch`]es and replayed into the TEST
//! tracer (and any other consumer) through a [`tvm::bus::TraceBus`].
//! The plain sequential baseline is *derived*, not re-executed: the
//! interpreter tallies annotation-instruction cycles separately
//! ([`AnnotationCycles`]), and since the annotation pass only inserts
//! annotation instructions, `annotated − annotation = plain` exactly.
//! That cuts the pipeline from three interpreter executions to two
//! (profiling + TLS collection; the latter runs a differently
//! annotated program, so it cannot share the recording without
//! changing timestamps).
//!
//! Every run also produces a [`PipelineObservability`] report:
//! per-stage wall times, event counts by kind, batch occupancy and —
//! in threaded mode, where consumers drain batches concurrently with
//! interpretation — per-sink lag counters.

use crate::annotate::{annotate, AnnotateOptions};
use cfgir::{extract_candidates, ProgramCandidates};
use hydra_sim::{simulate_entry, TlsConfig, TlsTraceCollector};
use std::collections::BTreeMap;
use std::time::Instant;
use test_tracer::{select_with_priors, Profile, SelectionResult, TestTracer, TracerConfig};
use tvm::bus::{record_batches, BusReport, KindCounts, TraceBus};
use tvm::interp::AnnotationCycles;
use tvm::isa::LoopId;
use tvm::program::Program;
use tvm::{Interp, VmError, DEFAULT_BATCH_CAPACITY, DEFAULT_CHANNEL_DEPTH};

/// Trace-bus delivery parameters for a pipeline run.
#[derive(Debug, Clone, Copy)]
pub struct BusConfig {
    /// Events per [`tvm::bus::EventBatch`].
    pub batch_capacity: usize,
    /// Bound of each consumer's batch channel (threaded mode).
    pub channel_depth: usize,
    /// Drain consumers on their own threads, overlapping analysis
    /// with interpretation. Output is bit-identical either way.
    pub threaded: bool,
}

impl Default for BusConfig {
    fn default() -> BusConfig {
        BusConfig {
            batch_capacity: DEFAULT_BATCH_CAPACITY,
            channel_depth: DEFAULT_CHANNEL_DEPTH,
            threaded: false,
        }
    }
}

/// Configuration for a pipeline run.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineConfig {
    /// TEST hardware configuration.
    pub tracer: TracerConfig,
    /// Hydra TLS machine parameters.
    pub tls: TlsConfig,
    /// Trace-bus delivery parameters.
    pub bus: BusConfig,
}

/// Wall time of one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageTime {
    /// Stage name (`extract`, `annotate`, `record`, …).
    pub stage: &'static str,
    /// Wall time spent in the stage, in nanoseconds.
    pub nanos: u64,
}

/// Observability report of one pipeline run.
#[derive(Debug, Clone, Default)]
pub struct PipelineObservability {
    /// Per-stage wall times, in execution order.
    pub stages: Vec<StageTime>,
    /// Interpreter executions performed (at most 2).
    pub interpreter_passes: u32,
    /// Trace events that crossed the bus in the profiling stage.
    pub recorded_events: u64,
    /// Those events, by kind.
    pub by_kind: KindCounts,
    /// Batches that crossed the bus in the profiling stage.
    pub batches: u64,
    /// Configured events-per-batch capacity.
    pub batch_capacity: usize,
    /// The profiling stage's bus report (per-sink counters; lag/drop
    /// counters populate in threaded mode).
    pub bus: BusReport,
}

impl PipelineObservability {
    /// Total wall time across stages, in nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.stages.iter().map(|s| s.nanos).sum()
    }

    /// Wall time of one stage (0 when the stage didn't run).
    pub fn stage_nanos(&self, stage: &str) -> u64 {
        self.stages
            .iter()
            .filter(|s| s.stage == stage)
            .map(|s| s.nanos)
            .sum()
    }

    /// Mean fill fraction of the profiling stage's batches.
    pub fn avg_batch_occupancy(&self) -> f64 {
        if self.batches == 0 || self.batch_capacity == 0 {
            0.0
        } else {
            self.recorded_events as f64 / (self.batches * self.batch_capacity as u64) as f64
        }
    }

    /// Profiling-stage event throughput (events per wall-clock
    /// second over the record + replay-profile stages).
    pub fn events_per_sec(&self) -> f64 {
        let nanos = self.stage_nanos("record")
            + self.stage_nanos("replay-profile")
            + self.stage_nanos("record+profile");
        if nanos == 0 {
            0.0
        } else {
            self.recorded_events as f64 * 1e9 / nanos as f64
        }
    }
}

/// Per-loop outcome of actual speculative execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoopTls {
    /// Sequential cycles the loop's entries covered in the
    /// speculative-instrumentation run.
    pub seq_cycles: u64,
    /// Cycles under TLS execution.
    pub tls_cycles: u64,
    /// Violation restarts.
    pub violations: u64,
    /// Buffer-overflow stalls.
    pub overflows: u64,
    /// Threads executed.
    pub threads: u64,
}

/// Whole-program actual speculative execution (Figure 11's "Actual").
#[derive(Debug, Clone, Default)]
pub struct ActualTls {
    /// Per selected loop.
    pub per_loop: BTreeMap<LoopId, LoopTls>,
    /// Total cycles of the speculative-instrumentation sequential run
    /// (the baseline the TLS composition replaces loop entries in).
    pub baseline_cycles: u64,
    /// Whole-program cycles with selected loops running speculatively.
    pub tls_cycles: u64,
}

impl ActualTls {
    /// Whole-program actual speedup.
    pub fn speedup(&self) -> f64 {
        if self.tls_cycles == 0 {
            1.0
        } else {
            self.baseline_cycles as f64 / self.tls_cycles as f64
        }
    }
}

/// Everything a pipeline run produces.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Plain (unannotated) sequential cycles, derived exactly from
    /// the profiling run by subtracting the separately tallied
    /// annotation-instruction cycles.
    pub seq_cycles: u64,
    /// Profiling-run cycles (optimized annotations).
    pub profile_cycles: u64,
    /// Profiling-run annotation overhead breakdown.
    pub annotation: AnnotationCycles,
    /// Static candidate extraction results.
    pub candidates: ProgramCandidates,
    /// What TEST collected.
    pub profile: Profile,
    /// Equation 1 + 2 selection.
    pub selection: SelectionResult,
    /// Actual speculative execution of the selected loops.
    pub actual: ActualTls,
    /// Per-stage timings and bus counters.
    pub obs: PipelineObservability,
}

impl PipelineReport {
    /// Profiling slowdown (Figure 6, optimized annotations). 1.0 for
    /// a degenerate zero-cycle baseline.
    pub fn profiling_slowdown(&self) -> f64 {
        if self.seq_cycles == 0 {
            1.0
        } else {
            self.profile_cycles as f64 / self.seq_cycles as f64
        }
    }

    /// Predicted whole-program normalized execution time
    /// (Figure 10/11: predicted TLS time over sequential time). 1.0
    /// for a degenerate zero-cycle program.
    pub fn predicted_normalized(&self) -> f64 {
        if self.selection.total_cycles == 0 {
            1.0
        } else {
            self.selection.predicted_cycles as f64 / self.selection.total_cycles as f64
        }
    }

    /// Actual whole-program normalized execution time (Figure 11).
    /// 1.0 for a degenerate zero-cycle baseline.
    pub fn actual_normalized(&self) -> f64 {
        if self.actual.baseline_cycles == 0 {
            1.0
        } else {
            self.actual.tls_cycles as f64 / self.actual.baseline_cycles as f64
        }
    }
}

/// Runs the full Jrpm pipeline on `program`.
///
/// ```
/// use jrpm::pipeline::{run_pipeline, PipelineConfig};
/// use tvm::{ProgramBuilder, ElemKind};
///
/// # fn main() -> Result<(), tvm::VmError> {
/// let mut b = ProgramBuilder::new();
/// let main = b.function("main", 0, false, |f| {
///     let (a, i) = (f.local(), f.local());
///     f.ci(256).newarray(ElemKind::Int).st(a);
///     f.for_in(i, 0.into(), 256.into(), |f| {
///         f.arr_set(a, |f| { f.ld(i); }, |f| { f.ld(i).ld(i).imul(); });
///     });
///     f.ret_void();
/// });
/// let program = b.finish(main)?;
/// let report = run_pipeline(&program, &PipelineConfig::default())?;
/// assert!(!report.selection.chosen.is_empty(), "the loop is parallel");
/// assert!(report.actual_normalized() < 0.7, "and Hydra speeds it up");
/// assert!(report.obs.interpreter_passes <= 2);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Any [`VmError`] from the two executions (profiling,
/// trace-collection).
pub fn run_pipeline(program: &Program, cfg: &PipelineConfig) -> Result<PipelineReport, VmError> {
    let mut obs = PipelineObservability {
        batch_capacity: cfg.bus.batch_capacity.max(1),
        ..PipelineObservability::default()
    };
    let stage = |stages: &mut Vec<StageTime>, name, t: Instant| {
        stages.push(StageTime {
            stage: name,
            nanos: t.elapsed().as_nanos() as u64,
        });
    };

    // 1. identify candidate STLs
    let t = Instant::now();
    let candidates = extract_candidates(program);
    stage(&mut obs.stages, "extract", t);

    // 2. annotate every candidate for profiling (loops the static
    //    pre-screen demoted are left unannotated, so the tracer
    //    spends no banks on them)
    let t = Instant::now();
    let annotated = annotate(program, &candidates, &AnnotateOptions::profiling())?;
    stage(&mut obs.stages, "annotate", t);

    // 3. interpret the annotated program ONCE — execution pass 1 —
    //    capturing its event stream as batches, and feed TEST from
    //    the bus. Threaded mode drains the tracer concurrently with
    //    interpretation; otherwise record fully, then replay.
    let mut tracer = TestTracer::with_masks(cfg.tracer, candidates.tracked_masks());
    obs.interpreter_passes += 1;
    let prof_run = if cfg.bus.threaded {
        let t = Instant::now();
        let (run, report) = TraceBus::new()
            .channel_depth(cfg.bus.channel_depth)
            .sink("test-tracer", &mut tracer)
            .run_threaded(&annotated, cfg.bus.batch_capacity)?;
        stage(&mut obs.stages, "record+profile", t);
        obs.recorded_events = report.events;
        obs.batches = report.batches;
        obs.by_kind = report.by_kind;
        obs.bus = report;
        run
    } else {
        let t = Instant::now();
        let (run, batches) = record_batches(&annotated, cfg.bus.batch_capacity)?;
        stage(&mut obs.stages, "record", t);
        let t = Instant::now();
        let report = TraceBus::new()
            .sink("test-tracer", &mut tracer)
            .replay(&batches);
        stage(&mut obs.stages, "replay-profile", t);
        obs.recorded_events = report.events;
        obs.batches = report.batches;
        obs.by_kind = report.by_kind;
        obs.bus = report;
        run
    };
    let profile = tracer.into_profile();

    // the plain sequential baseline, exactly: the annotation pass
    // only inserts annotation instructions, and the interpreter
    // tallies their cycles separately while charging them
    let seq_cycles = prof_run.cycles - prof_run.annotation_cycles.total();

    // 4. select decompositions (Equations 1 and 2), with the static
    //    verdicts as priors
    let t = Instant::now();
    let selection = select_with_priors(
        &profile,
        &cfg.tls.estimator_params(),
        prof_run.cycles,
        &candidates.demoted_ids(),
    );
    stage(&mut obs.stages, "select", t);

    // 5. recompile only the selected loops and collect TLS traces —
    //    execution pass 2. This interprets a *differently annotated*
    //    program (different timestamps), so it cannot replay the
    //    profiling recording.
    let chosen: Vec<LoopId> = selection.chosen.iter().map(|c| c.loop_id).collect();
    let actual = if chosen.is_empty() {
        ActualTls {
            per_loop: BTreeMap::new(),
            baseline_cycles: seq_cycles,
            tls_cycles: seq_cycles,
        }
    } else {
        let t = Instant::now();
        let spec = annotate(program, &candidates, &AnnotateOptions::only(chosen.clone()))?;
        let mut collector = TlsTraceCollector::with_masks(chosen, candidates.tracked_masks());
        obs.interpreter_passes += 1;
        let spec_run = Interp::run(&spec, &mut collector)?;
        stage(&mut obs.stages, "collect", t);

        // 6. simulate each entry on Hydra
        let t = Instant::now();
        let mut per_loop: BTreeMap<LoopId, LoopTls> = BTreeMap::new();
        let mut total = spec_run.cycles;
        for entry in &collector.entries {
            let r = simulate_entry(entry, &cfg.tls);
            let l = per_loop.entry(entry.loop_id).or_default();
            l.seq_cycles += entry.seq_cycles;
            l.tls_cycles += r.tls_cycles;
            l.violations += r.violations;
            l.overflows += r.overflows;
            l.threads += r.threads;
            total = total.saturating_sub(entry.seq_cycles) + r.tls_cycles;
        }
        stage(&mut obs.stages, "simulate", t);
        ActualTls {
            per_loop,
            baseline_cycles: spec_run.cycles,
            tls_cycles: total,
        }
    };

    Ok(PipelineReport {
        seq_cycles,
        profile_cycles: prof_run.cycles,
        annotation: prof_run.annotation_cycles,
        candidates,
        profile,
        selection,
        actual,
        obs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{ElemKind, NullSink, ProgramBuilder};

    /// A loop with abundant parallelism: disjoint writes per iteration.
    fn parallel_program(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            let (a, i, k) = (f.local(), f.local(), f.local());
            f.ci(256).newarray(ElemKind::Int).st(a);
            f.for_in(i, 0.into(), iters.into(), |f| {
                // some per-iteration work on a private slice
                f.for_in(k, 0.into(), 20.into(), |f| {
                    f.arr_set(
                        a,
                        |f| {
                            f.ld(i)
                                .ci(8)
                                .imul()
                                .ld(k)
                                .ci(7)
                                .iand()
                                .iadd()
                                .ci(255)
                                .iand();
                        },
                        |f| {
                            f.ld(i).ld(k).imul();
                        },
                    );
                });
            });
            f.ret_void();
        });
        b.finish(main).unwrap()
    }

    /// A pointer-chase-like serial accumulator through memory.
    fn serial_program(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, false, |f| {
            let i = f.local();
            f.for_in(i, 0.into(), iters.into(), |f| {
                // g = (g*5+1) via memory: loop-carried through the heap
                f.getstatic(g).ci(5).imul().ci(1).iadd().putstatic(g);
            });
            f.ret_void();
        });
        b.finish(main).unwrap()
    }

    #[test]
    fn parallel_loop_is_selected_and_speeds_up() {
        let p = parallel_program(200);
        let r = run_pipeline(&p, &PipelineConfig::default()).unwrap();
        assert!(
            !r.selection.chosen.is_empty(),
            "expected a selected STL, estimates: {:?}",
            r.selection.estimates
        );
        assert!(
            r.predicted_normalized() < 0.6,
            "{}",
            r.predicted_normalized()
        );
        assert!(r.actual_normalized() < 0.7, "{}", r.actual_normalized());
        // this kernel's inner loop iterates every ~25 cycles, an
        // adversarial case for annotation overhead; the 3-25% claim is
        // checked on the realistic suite in benchsuite/jrpm-bench
        assert!(r.profiling_slowdown() < 1.5, "{}", r.profiling_slowdown());
    }

    #[test]
    fn serial_loop_is_not_selected() {
        let p = serial_program(500);
        let r = run_pipeline(&p, &PipelineConfig::default()).unwrap();
        assert!(
            r.selection.chosen.is_empty(),
            "chose {:?}",
            r.selection.chosen
        );
        assert_eq!(r.actual.tls_cycles, r.actual.baseline_cycles);
    }

    #[test]
    fn prediction_tracks_actual_within_reason() {
        let p = parallel_program(400);
        let r = run_pipeline(&p, &PipelineConfig::default()).unwrap();
        let pred = r.predicted_normalized();
        let act = r.actual_normalized();
        // Figure 11: predictions are good but not perfect
        assert!(
            (pred - act).abs() < 0.35,
            "predicted {pred:.2} vs actual {act:.2}"
        );
    }

    #[test]
    fn derived_baseline_equals_a_real_plain_run() {
        for p in [parallel_program(150), serial_program(300)] {
            let r = run_pipeline(&p, &PipelineConfig::default()).unwrap();
            let plain = Interp::run(&p, &mut NullSink).unwrap();
            assert_eq!(r.seq_cycles, plain.cycles);
        }
    }

    #[test]
    fn pipeline_performs_at_most_two_passes_and_times_stages() {
        let p = parallel_program(100);
        let r = run_pipeline(&p, &PipelineConfig::default()).unwrap();
        assert_eq!(r.obs.interpreter_passes, 2, "profile + collect");
        assert!(r.obs.recorded_events > 0);
        assert!(r.obs.stage_nanos("record") > 0);
        assert!(r.obs.stage_nanos("select") > 0);
        assert!(r.obs.avg_batch_occupancy() > 0.0);
        assert!(r.obs.events_per_sec() > 0.0);

        let serial = run_pipeline(&serial_program(100), &PipelineConfig::default()).unwrap();
        assert_eq!(serial.obs.interpreter_passes, 1, "nothing chosen");
    }

    #[test]
    fn threaded_bus_mode_is_bit_identical() {
        let p = parallel_program(150);
        let direct = run_pipeline(&p, &PipelineConfig::default()).unwrap();
        let threaded = run_pipeline(
            &p,
            &PipelineConfig {
                bus: BusConfig {
                    batch_capacity: 64,
                    channel_depth: 2,
                    threaded: true,
                },
                ..PipelineConfig::default()
            },
        )
        .unwrap();
        assert_eq!(threaded.seq_cycles, direct.seq_cycles);
        assert_eq!(threaded.profile_cycles, direct.profile_cycles);
        assert_eq!(threaded.profile, direct.profile);
        assert_eq!(threaded.selection.chosen, direct.selection.chosen);
        assert_eq!(threaded.actual.tls_cycles, direct.actual.tls_cycles);
        assert!(threaded.obs.bus.threaded);
        assert_eq!(threaded.obs.bus.sinks[0].dropped_batches, 0);
    }

    #[test]
    fn ratio_helpers_guard_zero_denominators() {
        let r = PipelineReport {
            seq_cycles: 0,
            profile_cycles: 0,
            annotation: AnnotationCycles::default(),
            candidates: ProgramCandidates::default(),
            profile: Profile::default(),
            selection: SelectionResult::default(),
            actual: ActualTls::default(),
            obs: PipelineObservability::default(),
        };
        assert_eq!(r.profiling_slowdown(), 1.0);
        assert_eq!(r.predicted_normalized(), 1.0);
        assert_eq!(r.actual_normalized(), 1.0);
        assert_eq!(r.actual.speedup(), 1.0);
    }
}
