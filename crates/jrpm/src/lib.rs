//! # jrpm — the Java Runtime Parallelizing Machine pipeline
//!
//! The end-to-end system of *TEST: A Tracer for Extracting Speculative
//! Threads* (CGO 2003, Figure 1), assembled from this workspace's
//! crates:
//!
//! 1. **Identify** candidate STLs from each method's control-flow graph
//!    (`cfgir`);
//! 2. **Annotate**: compile the program with the Table 4 annotation
//!    instructions ([`annotate()`]), in the paper's base or optimized
//!    form;
//! 3. **Profile**: run the annotated program sequentially through the
//!    TEST hardware model (`test-tracer`), measuring the profiling
//!    slowdown of Figure 6 as a by-product;
//! 4. **Select** the best decompositions with Equations 1 and 2;
//! 5. **Recompile** only the chosen loops (the speculative code's own
//!    boundary markers and globalized locals) and collect per-iteration
//!    traces;
//! 6. **Execute** the traces on the Hydra TLS simulator (`hydra-sim`)
//!    to obtain the "actual" speculative performance of Figure 11.
//!
//! [`pipeline::run_pipeline`] performs all six steps and returns a
//! [`pipeline::PipelineReport`] with everything the paper's tables and
//! figures need.

pub mod agreement;
pub mod annotate;
pub mod pipeline;
pub mod slowdown;
pub mod tier;

pub use agreement::{agreement_report, AgreementReport, LoopAgreement, Violation};
pub use annotate::{annotate, annotate_mapped, AnnotateOptions, AnnotationMode, PatchState};
pub use pipeline::{
    run_pipeline, ActualTls, BusConfig, PipelineConfig, PipelineObservability, PipelineReport,
    StageTime,
};
pub use slowdown::{profile_slowdown, software_comparison, SlowdownReport, SoftwareComparison};
pub use tier::{
    run_tiered, LoopTier, LoopTierSummary, TierConfig, TierDiagnostic, TierReport, TierSchedule,
    TieredOutcome,
};
