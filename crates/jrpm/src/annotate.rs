//! The annotation compiler pass (paper §5.1, Table 4, Figure 5).
//!
//! Instruments candidate STLs with the trace annotations:
//!
//! * `sloop n` on every edge entering a loop header from outside;
//! * `eoi` on every back edge (one iteration = one speculative thread);
//! * `eloop n` on every edge leaving the loop — including `return`s
//!   from inside the loop — followed by the statistics-read routine;
//! * `lwl vn` / `swl vn` immediately before accesses to tracked
//!   (non-inductor, non-reduction, non-block-local) locals.
//!
//! Edge-precise insertion is done by *relinearizing* each function from
//! its CFG: blocks are emitted in order with explicit terminators, and
//! each annotated edge detours through a trampoline block holding its
//! payload. The paper's two overhead optimizations are implemented as
//! [`AnnotationMode::Optimized`]: only the first load of a variable in
//! a block *or a loop* is annotated (dominance-based, see
//! `loop_covered`), and statistics reads are hoisted to the outermost
//! annotated loop of each nest.

use cfgir::{Candidate, Dominators, FunctionAnalysis, ProgramCandidates};
use std::collections::{BTreeMap, BTreeSet};
use tvm::isa::{Instr, LoopId};
use tvm::program::{Function, Local, Program};

/// Base or optimized annotation (the two bar groups of Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnnotationMode {
    /// Annotate every tracked-local access; read statistics at every
    /// loop exit.
    Base,
    /// First-load-per-block local annotation; statistics reads hoisted
    /// to the outermost annotated loop (paper §5.1).
    Optimized,
}

/// Options for [`annotate`].
#[derive(Debug, Clone)]
pub struct AnnotateOptions {
    /// Annotation flavor.
    pub mode: AnnotationMode,
    /// If set, only these loops are annotated (used to instrument just
    /// the selected STLs for speculative trace collection). `None`
    /// annotates every candidate.
    pub filter: Option<BTreeSet<LoopId>>,
}

impl AnnotateOptions {
    /// Annotate all candidates, optimized (the profiling default).
    pub fn profiling() -> Self {
        AnnotateOptions {
            mode: AnnotationMode::Optimized,
            filter: None,
        }
    }

    /// Annotate all candidates with base (unoptimized) annotations.
    pub fn base() -> Self {
        AnnotateOptions {
            mode: AnnotationMode::Base,
            filter: None,
        }
    }

    /// Annotate only the given loops (speculative recompilation).
    pub fn only(loops: impl IntoIterator<Item = LoopId>) -> Self {
        AnnotateOptions {
            mode: AnnotationMode::Optimized,
            filter: Some(loops.into_iter().collect()),
        }
    }

    /// Whether this candidate gets annotations. With an explicit
    /// filter the caller's list is authoritative (ablations may trace
    /// demoted loops on purpose); by default, candidates the static
    /// pre-screen demoted are skipped — tracing them is provably
    /// wasted work.
    fn wants(&self, c: &Candidate) -> bool {
        match &self.filter {
            Some(f) => f.contains(&c.id),
            None => !c.is_demoted(),
        }
    }
}

/// Produces an instrumented copy of `program`.
///
/// `cands` must come from [`cfgir::extract_candidates`] on the same
/// program. Functions without annotated loops are copied verbatim.
/// Candidates the static pre-screen demoted are skipped unless the
/// filter names them explicitly.
///
/// # Errors
///
/// The instrumented program is re-verified — structurally
/// ([`tvm::verify::verify`]) and for value kinds
/// ([`tvm::verify::verify_kinds`]) — before being returned; a failure
/// reports a bug in this pass as a [`tvm::VmError`] instead of
/// corrupting the downstream pipeline.
pub fn annotate(
    program: &Program,
    cands: &ProgramCandidates,
    opts: &AnnotateOptions,
) -> Result<Program, tvm::VmError> {
    annotate_mapped(program, cands, opts).map(|(p, _)| p)
}

/// One function's instruction provenance after rewriting:
/// `map[new_idx] == Some(orig_idx)` when the instruction at `new_idx`
/// of the instrumented function is the relocated original instruction
/// at `orig_idx`, and `None` for inserted annotations, trampoline
/// payloads and rewritten fallthrough gotos.
pub type OriginMap = Vec<Option<u32>>;

/// Like [`annotate`], but also returns one [`OriginMap`] per function.
///
/// The agreement report uses the maps to translate dynamic event pcs
/// (recorded against instrumented code) back to the static access
/// sites of the original program.
pub fn annotate_mapped(
    program: &Program,
    cands: &ProgramCandidates,
    opts: &AnnotateOptions,
) -> Result<(Program, Vec<OriginMap>), tvm::VmError> {
    let mut functions = Vec::with_capacity(program.functions.len());
    let mut maps = Vec::with_capacity(program.functions.len());
    for (fi, f) in program.functions.iter().enumerate() {
        let fa = &cands.functions[fi];
        let in_fn: Vec<&Candidate> = cands
            .candidates
            .iter()
            .filter(|c| c.func.0 as usize == fi && opts.wants(c))
            .collect();
        if in_fn.is_empty() {
            functions.push(f.clone());
            maps.push((0..f.code.len() as u32).map(Some).collect());
        } else {
            let (func, map) = annotate_function(fi as u16, f, fa, &in_fn, cands, opts)?;
            functions.push(func);
            maps.push(map);
        }
    }
    let out = Program {
        functions,
        classes: program.classes.clone(),
        globals: program.globals.clone(),
        entry: program.entry,
    };
    tvm::verify::verify(&out)?;
    tvm::verify::verify_kinds(&out)?;
    Ok((out, maps))
}

/// Incrementally instrumented program image for the online tier.
///
/// The offline batch annotates the whole program in one pass. The
/// online tier instead patches loops in one at a time, as each proves
/// hot: [`PatchState`] holds the current instrumented image plus its
/// per-function [`OriginMap`]s, and [`PatchState::patch_loop`]
/// re-annotates *only the function containing the promoted loop* —
/// every other function's code is untouched, byte for byte.
///
/// The key invariant (tested below, and what the online/offline
/// equivalence suite leans on): after patching any set `S` of loops in
/// any order, the image equals `annotate_mapped(original, cands,
/// &AnnotateOptions::only(S))` exactly. Incremental patching commutes
/// because annotation is per-function and the filter passed to each
/// re-annotation is the full cumulative set (so nested-loop
/// interactions such as hoisted statistics reads are recomputed, not
/// approximated).
#[derive(Debug, Clone)]
pub struct PatchState {
    original: Program,
    program: Program,
    maps: Vec<OriginMap>,
    annotated: BTreeSet<LoopId>,
}

impl PatchState {
    /// A fresh, un-instrumented image: the program itself, with
    /// identity origin maps.
    pub fn new(program: &Program) -> PatchState {
        PatchState {
            original: program.clone(),
            program: program.clone(),
            maps: program
                .functions
                .iter()
                .map(|f| (0..f.code.len() as u32).map(Some).collect())
                .collect(),
            annotated: BTreeSet::new(),
        }
    }

    /// The current instrumented image.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Per-function origin maps of the current image (instrumented pc
    /// → original pc).
    pub fn maps(&self) -> &[OriginMap] {
        &self.maps
    }

    /// Loops patched in so far.
    pub fn annotated(&self) -> &BTreeSet<LoopId> {
        &self.annotated
    }

    /// Instruments loop `id`, rewriting only its containing function.
    ///
    /// `cands` must come from [`cfgir::extract_candidates`] on the
    /// program this state was created from. Returns `false` (and does
    /// nothing) when the loop is already patched in.
    ///
    /// # Errors
    ///
    /// As [`annotate`]: the patched image is re-verified before being
    /// committed; on error the previous image is kept.
    pub fn patch_loop(
        &mut self,
        cands: &ProgramCandidates,
        id: LoopId,
    ) -> Result<bool, tvm::VmError> {
        if self.annotated.contains(&id) {
            return Ok(false);
        }
        let mut filter = self.annotated.clone();
        filter.insert(id);
        let opts = AnnotateOptions {
            mode: AnnotationMode::Optimized,
            filter: Some(filter),
        };
        let fi = cands.candidate(id).func.0 as usize;
        let fa = &cands.functions[fi];
        let in_fn: Vec<&Candidate> = cands
            .candidates
            .iter()
            .filter(|c| c.func.0 as usize == fi && opts.wants(c))
            .collect();
        let (func, map) = annotate_function(
            fi as u16,
            &self.original.functions[fi],
            fa,
            &in_fn,
            cands,
            &opts,
        )?;
        let prev_func = std::mem::replace(&mut self.program.functions[fi], func);
        match tvm::verify::verify(&self.program)
            .and_then(|()| tvm::verify::verify_kinds(&self.program))
        {
            Ok(()) => {
                self.maps[fi] = map;
                self.annotated.insert(id);
                Ok(true)
            }
            Err(e) => {
                self.program.functions[fi] = prev_func;
                Err(e)
            }
        }
    }
}

/// A tiny label-patching emitter (the annotation-pass analogue of
/// `tvm::build::FnBuilder`).
#[derive(Default)]
struct Emitter {
    code: Vec<Instr>,
    /// Original instruction index of each emitted instruction
    /// (`None` for inserted annotations and control-flow glue).
    origin: Vec<Option<u32>>,
    labels: Vec<Option<u32>>,
    fixups: Vec<u32>,
}

impl Emitter {
    fn new_label(&mut self) -> u32 {
        self.labels.push(None);
        self.labels.len() as u32 - 1
    }

    fn bind(&mut self, label: u32) {
        debug_assert!(self.labels[label as usize].is_none(), "label bound twice");
        self.labels[label as usize] = Some(self.code.len() as u32);
    }

    fn raw(&mut self, i: Instr) {
        self.code.push(i);
        self.origin.push(None);
    }

    /// Emits a relocated original instruction, remembering where it
    /// came from.
    fn raw_at(&mut self, i: Instr, orig: u32) {
        self.code.push(i);
        self.origin.push(Some(orig));
    }

    /// Emits a branch whose target operand is a label id, recorded for
    /// patching.
    fn branch(&mut self, i: Instr) {
        self.fixups.push(self.code.len() as u32);
        self.code.push(i);
        self.origin.push(None);
    }

    /// A [`Emitter::branch`] that descends from an original terminator.
    fn branch_at(&mut self, i: Instr, orig: u32) {
        self.fixups.push(self.code.len() as u32);
        self.code.push(i);
        self.origin.push(Some(orig));
    }

    fn finish(mut self, func: u16) -> Result<(Vec<Instr>, Vec<Option<u32>>), tvm::VmError> {
        for &at in &self.fixups {
            let instr = self.code[at as usize];
            let lbl = instr.branch_target().ok_or_else(|| tvm::VmError::Verify {
                func,
                at,
                reason: "annotation fixup recorded on a non-branch instruction".into(),
            })?;
            let target = self
                .labels
                .get(lbl as usize)
                .copied()
                .flatten()
                .ok_or(tvm::VmError::UnboundLabel(lbl))?;
            self.code[at as usize] = instr.map_target(|_| target);
        }
        Ok((self.code, self.origin))
    }
}

fn annotate_function(
    fi: u16,
    f: &Function,
    fa: &FunctionAnalysis,
    annotated: &[&Candidate],
    cands: &ProgramCandidates,
    opts: &AnnotateOptions,
) -> Result<(Function, Vec<Option<u32>>), tvm::VmError> {
    let cfg = &fa.cfg;
    let forest = &fa.forest;
    let dom = Dominators::compute(cfg);
    let n_slots = fa.tracked_order.len() as u16;

    // annotated loops, innermost (deepest) first
    let mut by_depth: Vec<&Candidate> = annotated.to_vec();
    by_depth.sort_by_key(|c| std::cmp::Reverse(c.depth));

    // which loops get a ReadStats after their eloop
    let reads_stats = |c: &Candidate| -> bool {
        match opts.mode {
            AnnotationMode::Base => true,
            AnnotationMode::Optimized => {
                // hoisted: only when no enclosing candidate is annotated
                c.parent.is_none_or(|p| !opts.wants(cands.candidate(p)))
            }
        }
    };

    // tracked variables per block: union over annotated loops
    // containing the block
    let tracked_in_block = |b: cfgir::BlockId| -> BTreeSet<Local> {
        let mut set = BTreeSet::new();
        for c in annotated {
            let l = &forest.loops[c.loop_idx];
            if l.blocks.contains(&b) {
                set.extend(fa.classes[c.loop_idx].tracked());
            }
        }
        set
    };

    // payload for CFG edge (p, t): exits innermost-first, then eoi,
    // then sloop
    let edge_payload = |pb: cfgir::BlockId, tb: cfgir::BlockId| -> Vec<Instr> {
        let mut payload = Vec::new();
        for c in &by_depth {
            let l = &forest.loops[c.loop_idx];
            if l.blocks.contains(&pb) && !l.blocks.contains(&tb) {
                payload.push(Instr::ELoop(c.id, n_slots));
                if reads_stats(c) {
                    payload.push(Instr::ReadStats(c.id));
                }
            }
        }
        for c in &by_depth {
            let l = &forest.loops[c.loop_idx];
            if l.header == tb {
                if l.blocks.contains(&pb) {
                    payload.push(Instr::Eoi(c.id));
                } else {
                    payload.push(Instr::SLoop(c.id, n_slots));
                }
            }
        }
        payload
    };

    let mut em = Emitter::default();
    let block_labels: Vec<u32> = (0..cfg.len()).map(|_| em.new_label()).collect();
    // trampolines created on demand per edge
    let mut tramp: BTreeMap<(u32, u32), (u32, Vec<Instr>)> = BTreeMap::new();
    // returns (label, true) for a trampoline edge, (target label,
    // false) for a plain edge
    let mut edge_label =
        |em: &mut Emitter, pb: cfgir::BlockId, tb: cfgir::BlockId| -> (u32, bool) {
            let payload = edge_payload(pb, tb);
            if payload.is_empty() {
                return (block_labels[tb.0 as usize], false);
            }
            let l = tramp
                .entry((pb.0, tb.0))
                .or_insert_with(|| (em.new_label(), payload))
                .0;
            (l, true)
        };

    // Optimized mode annotates only the *first* load of a variable in
    // a block or a loop (paper §5.1): a load of `v` in block B is
    // redundant when a block A that dominates B also loads `v` and
    // lies inside every annotated loop that tracks `v` and contains B
    // (equivalently: inside the innermost such tracker). Every
    // iteration of each interested bank then sees A's load first, so
    // A's arc is never longer than B's; if a store to `v` intervenes,
    // B's access is intra-thread anyway.
    let loop_covered = |v: Local, b: cfgir::BlockId| -> bool {
        // innermost annotated loop containing b whose tracked set has v
        let tracker = annotated
            .iter()
            .filter(|c| {
                forest.loops[c.loop_idx].blocks.contains(&b)
                    && fa.classes[c.loop_idx].tracked().contains(&v)
            })
            .max_by_key(|c| c.depth);
        let Some(tracker) = tracker else {
            return false;
        };
        forest.loops[tracker.loop_idx].blocks.iter().any(|&a| {
            a != b
                && dom.dominates(a, b)
                && cfg
                    .instrs_of(a)
                    .any(|idx| matches!(f.code[idx as usize], Instr::Load(w) if w == v))
        })
    };

    for (bi, block) in cfg.blocks.iter().enumerate() {
        let b = cfgir::BlockId(bi as u32);
        em.bind(block_labels[bi]);
        let tracked = tracked_in_block(b);
        let mut lwl_done: BTreeSet<Local> = BTreeSet::new();

        for idx in block.start..block.end {
            let instr = f.code[idx as usize];
            // local-variable annotations (Table 4) precede the access
            match instr {
                Instr::Load(v) if tracked.contains(&v) => {
                    let annotate_this = match opts.mode {
                        AnnotationMode::Base => true,
                        AnnotationMode::Optimized => lwl_done.insert(v) && !loop_covered(v, b),
                    };
                    if annotate_this {
                        if let Some(slot) = fa.tracked_slot(v) {
                            em.raw(Instr::Lwl(slot));
                        }
                    }
                }
                Instr::Store(v) if tracked.contains(&v) => {
                    if let Some(slot) = fa.tracked_slot(v) {
                        em.raw(Instr::Swl(slot));
                    }
                }
                Instr::IInc(v, _) if tracked.contains(&v) => {
                    if let Some(slot) = fa.tracked_slot(v) {
                        // the increment both reads and writes `v`; the
                        // read-side annotation obeys the first-load rule
                        let lwl = match opts.mode {
                            AnnotationMode::Base => true,
                            AnnotationMode::Optimized => lwl_done.insert(v) && !loop_covered(v, b),
                        };
                        if lwl {
                            em.raw(Instr::Lwl(slot));
                        }
                        em.raw(Instr::Swl(slot));
                    }
                }
                _ => {}
            }

            let is_terminator_pos = idx == block.end - 1;
            if !is_terminator_pos {
                em.raw_at(instr, idx);
                continue;
            }

            // terminator: rewrite control flow through edge labels
            let block_of = |t: u32, at: u32| {
                cfg.block_of(t).ok_or(tvm::VmError::BadBranchTarget {
                    func: fi,
                    at,
                    target: t,
                })
            };
            match instr {
                Instr::Goto(t) => {
                    let tb = block_of(t, idx)?;
                    let (l, _) = edge_label(&mut em, b, tb);
                    em.branch_at(Instr::Goto(l), idx);
                }
                Instr::If(c, t) => {
                    let tb = block_of(t, idx)?;
                    let (l, _) = edge_label(&mut em, b, tb);
                    em.branch_at(Instr::If(c, l), idx);
                    emit_fallthrough(fi, &mut em, cfg, b, block.end, &mut edge_label)?;
                }
                Instr::IfICmp(c, t) => {
                    let tb = block_of(t, idx)?;
                    let (l, _) = edge_label(&mut em, b, tb);
                    em.branch_at(Instr::IfICmp(c, l), idx);
                    emit_fallthrough(fi, &mut em, cfg, b, block.end, &mut edge_label)?;
                }
                Instr::IfFCmp(c, t) => {
                    let tb = block_of(t, idx)?;
                    let (l, _) = edge_label(&mut em, b, tb);
                    em.branch_at(Instr::IfFCmp(c, l), idx);
                    emit_fallthrough(fi, &mut em, cfg, b, block.end, &mut edge_label)?;
                }
                Instr::Return | Instr::ReturnVoid | Instr::Halt => {
                    // leaving the function from inside annotated loops:
                    // close them innermost-first
                    for c in &by_depth {
                        let l = &forest.loops[c.loop_idx];
                        if l.blocks.contains(&b) {
                            em.raw(Instr::ELoop(c.id, n_slots));
                            if reads_stats(c) {
                                em.raw(Instr::ReadStats(c.id));
                            }
                        }
                    }
                    em.raw_at(instr, idx);
                }
                other => {
                    // plain instruction ending a block: the next block
                    // starts a leader; make the fallthrough explicit
                    em.raw_at(other, idx);
                    emit_fallthrough(fi, &mut em, cfg, b, block.end, &mut edge_label)?;
                }
            }
        }
    }

    // emit trampolines (may create no new ones during this loop: edge
    // labels were all requested above)
    type Trampoline = ((u32, u32), (u32, Vec<Instr>));
    let trampolines: Vec<Trampoline> = tramp.iter().map(|(k, v)| (*k, v.clone())).collect();
    for ((_pb, tb), (label, payload)) in trampolines {
        em.bind(label);
        for i in payload {
            em.raw(i);
        }
        em.branch(Instr::AGoto(block_labels[tb as usize]));
    }

    let (code, origin) = em.finish(fi)?;
    Ok((
        Function {
            name: f.name.clone(),
            n_params: f.n_params,
            n_locals: f.n_locals,
            returns: f.returns,
            code,
        },
        origin,
    ))
}

/// Handles a block's fallthrough edge. The fallthrough block is always
/// the next one emitted, so when the edge carries no annotation
/// payload, control simply falls through — a `Goto` is only emitted to
/// detour through a trampoline.
fn emit_fallthrough(
    fi: u16,
    em: &mut Emitter,
    cfg: &cfgir::Cfg,
    b: cfgir::BlockId,
    block_end: u32,
    edge_label: &mut impl FnMut(&mut Emitter, cfgir::BlockId, cfgir::BlockId) -> (u32, bool),
) -> Result<(), tvm::VmError> {
    let ft = cfg
        .block_of(block_end)
        .ok_or(tvm::VmError::BadBranchTarget {
            func: fi,
            at: block_end.saturating_sub(1),
            target: block_end,
        })?;
    debug_assert_eq!(ft.0, b.0 + 1, "fallthrough block follows immediately");
    let (l, has_payload) = edge_label(em, b, ft);
    if has_payload {
        em.branch(Instr::AGoto(l));
    }
    Ok(())
    // otherwise control falls straight into the next emitted block
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfgir::extract_candidates;
    use tvm::trace::CountingSink;
    use tvm::{Cond, ElemKind, Interp, NullSink, ProgramBuilder};

    fn simple_loop_program() -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, true, |f| {
            let (a, i, prev) = (f.local(), f.local(), f.local());
            f.ci(64).newarray(ElemKind::Int).st(a);
            f.ci(0).st(prev);
            f.for_in(i, 0.into(), 32.into(), |f| {
                f.arr_set(
                    a,
                    |f| {
                        f.ld(i);
                    },
                    |f| {
                        // prev is loaded twice in this block, so the
                        // optimized mode annotates one fewer access
                        f.ld(prev).ld(prev).imul().ci(1).iadd();
                    },
                );
                f.arr_get(a, |f| {
                    f.ld(i);
                })
                .st(prev);
            });
            f.ld(prev).ret();
        });
        b.finish(main).unwrap()
    }

    #[test]
    fn annotated_program_preserves_semantics() {
        let p = simple_loop_program();
        let cands = extract_candidates(&p);
        let ann = annotate(&p, &cands, &AnnotateOptions::profiling()).unwrap();
        let r0 = Interp::run(&p, &mut NullSink).unwrap();
        let r1 = Interp::run(&ann, &mut NullSink).unwrap();
        assert_eq!(r0.ret, r1.ret);
        assert!(r1.cycles > r0.cycles, "annotations must cost cycles");
    }

    #[test]
    fn loop_markers_fire_once_per_boundary() {
        let p = simple_loop_program();
        let cands = extract_candidates(&p);
        let ann = annotate(&p, &cands, &AnnotateOptions::profiling()).unwrap();
        let mut sink = CountingSink::default();
        Interp::run(&ann, &mut sink).unwrap();
        assert_eq!(sink.loop_enters, 1);
        assert_eq!(sink.loop_exits, 1);
        assert_eq!(sink.loop_iters, 32);
        assert!(sink.local_accesses > 0, "prev must be annotated");
    }

    #[test]
    fn base_mode_annotates_more_local_accesses() {
        let p = simple_loop_program();
        let cands = extract_candidates(&p);
        let base = annotate(&p, &cands, &AnnotateOptions::base()).unwrap();
        let opt = annotate(&p, &cands, &AnnotateOptions::profiling()).unwrap();
        let mut sb = CountingSink::default();
        let mut so = CountingSink::default();
        Interp::run(&base, &mut sb).unwrap();
        Interp::run(&opt, &mut so).unwrap();
        assert!(
            sb.local_accesses > so.local_accesses,
            "base {} vs optimized {}",
            sb.local_accesses,
            so.local_accesses
        );
    }

    fn nested_loop_program() -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, true, |f| {
            let (a, i, j, s) = (f.local(), f.local(), f.local(), f.local());
            f.ci(256).newarray(ElemKind::Int).st(a);
            f.ci(0).st(s);
            f.for_in(i, 0.into(), 8.into(), |f| {
                f.for_in(j, 0.into(), 8.into(), |f| {
                    f.arr_set(
                        a,
                        |f| {
                            f.ld(i).ci(8).imul().ld(j).iadd();
                        },
                        |f| {
                            f.ld(i).ld(j).imul();
                        },
                    );
                });
                f.ld(s).ld(i).iadd().st(s);
            });
            f.ld(s).ret();
        });
        b.finish(main).unwrap()
    }

    #[test]
    fn nested_loops_get_nested_markers() {
        let p = nested_loop_program();
        let cands = extract_candidates(&p);
        assert_eq!(cands.candidates.len(), 2);
        let ann = annotate(&p, &cands, &AnnotateOptions::profiling()).unwrap();
        let mut sink = CountingSink::default();
        let r = Interp::run(&ann, &mut sink).unwrap();
        assert_eq!(r.ret.unwrap().as_int().unwrap(), 28); // 1+2+...+7
        assert_eq!(sink.loop_enters, 1 + 8); // outer once, inner 8 times
        assert_eq!(sink.loop_exits, 1 + 8);
        assert_eq!(sink.loop_iters, 8 + 64);
    }

    #[test]
    fn filter_annotates_only_selected_loops() {
        let p = nested_loop_program();
        let cands = extract_candidates(&p);
        let inner = cands.candidates.iter().find(|c| c.depth == 2).unwrap().id;
        let ann = annotate(&p, &cands, &AnnotateOptions::only([inner])).unwrap();
        let mut sink = CountingSink::default();
        Interp::run(&ann, &mut sink).unwrap();
        assert_eq!(sink.loop_enters, 8); // only the inner loop
        assert_eq!(sink.loop_iters, 64);
    }

    #[test]
    fn optimized_mode_hoists_stats_reads() {
        let p = nested_loop_program();
        let cands = extract_candidates(&p);
        let base = annotate(&p, &cands, &AnnotateOptions::base()).unwrap();
        let opt = annotate(&p, &cands, &AnnotateOptions::profiling()).unwrap();
        let rb = Interp::run(&base, &mut NullSink).unwrap();
        let ro = Interp::run(&opt, &mut NullSink).unwrap();
        // base reads stats at every inner eloop too
        assert!(rb.annotation_cycles.stats_reads > ro.annotation_cycles.stats_reads);
    }

    #[test]
    fn return_inside_loop_closes_it() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, true, |f| {
            let (a, i) = (f.local(), f.local());
            f.ci(64).newarray(ElemKind::Int).st(a);
            f.for_in(i, 0.into(), 64.into(), |f| {
                // early return when a[i] == 0 (always true immediately)
                f.if_icmp(
                    Cond::Eq,
                    |f| {
                        f.arr_get(a, |f| {
                            f.ld(i);
                        })
                        .ci(0);
                    },
                    |f| {
                        f.ld(i).ret();
                    },
                );
            });
            f.ci(-1).ret();
        });
        let p = b.finish(main).unwrap();
        let cands = extract_candidates(&p);
        let ann = annotate(&p, &cands, &AnnotateOptions::profiling()).unwrap();
        let mut sink = CountingSink::default();
        let r = Interp::run(&ann, &mut sink).unwrap();
        assert_eq!(r.ret.unwrap().as_int().unwrap(), 0);
        assert_eq!(sink.loop_enters, 1);
        assert_eq!(sink.loop_exits, 1, "return must close the loop");
    }

    #[test]
    fn origin_maps_relocate_every_original_instruction() {
        let p = simple_loop_program();
        let cands = extract_candidates(&p);
        let (ann, maps) = annotate_mapped(&p, &cands, &AnnotateOptions::profiling()).unwrap();
        assert_eq!(maps.len(), ann.functions.len());
        let map = &maps[0];
        assert_eq!(map.len(), ann.functions[0].code.len());
        // every mapped instruction is the original one, modulo
        // retargeted branch operands
        let mut seen = BTreeSet::new();
        for (new_idx, orig) in map.iter().enumerate() {
            let Some(orig) = orig else { continue };
            assert!(seen.insert(*orig), "original {orig} relocated twice");
            let a = ann.functions[0].code[new_idx];
            let o = p.functions[0].code[*orig as usize];
            let same = a == o
                || (a.branch_target().is_some() && a.map_target(|_| 0) == o.map_target(|_| 0));
            assert!(same, "map {new_idx}->{orig}: {a:?} vs {o:?}");
        }
        // nothing is dropped: all original instructions appear
        assert_eq!(seen.len(), p.functions[0].code.len());
    }

    #[test]
    fn patch_loop_matches_whole_program_annotation_in_any_order() {
        let p = nested_loop_program();
        let cands = extract_candidates(&p);
        let ids: Vec<LoopId> = cands.candidates.iter().map(|c| c.id).collect();
        assert_eq!(ids.len(), 2);

        // inner first, then outer — the opposite of extraction order
        let mut st = PatchState::new(&p);
        assert!(st.patch_loop(&cands, ids[1]).unwrap());
        assert!(st.patch_loop(&cands, ids[0]).unwrap());
        assert!(!st.patch_loop(&cands, ids[0]).unwrap(), "idempotent");

        let (full, maps) =
            annotate_mapped(&p, &cands, &AnnotateOptions::only(ids.clone())).unwrap();
        for (fi, f) in full.functions.iter().enumerate() {
            assert_eq!(st.program().functions[fi].code, f.code);
            assert_eq!(st.maps()[fi], maps[fi]);
        }
    }

    #[test]
    fn partial_patch_instruments_only_the_hot_loop() {
        let p = nested_loop_program();
        let cands = extract_candidates(&p);
        let inner = cands.candidates.iter().find(|c| c.depth == 2).unwrap().id;
        let mut st = PatchState::new(&p);
        st.patch_loop(&cands, inner).unwrap();
        let only = annotate(&p, &cands, &AnnotateOptions::only([inner])).unwrap();
        assert_eq!(st.program().functions[0].code, only.functions[0].code);
        // semantics preserved under the partial image
        let r0 = Interp::run(&p, &mut NullSink).unwrap();
        let r1 = Interp::run(st.program(), &mut NullSink).unwrap();
        assert_eq!(r0.ret, r1.ret);
    }

    #[test]
    fn fresh_patch_state_is_the_original_program() {
        let p = simple_loop_program();
        let st = PatchState::new(&p);
        assert_eq!(st.program().functions[0].code, p.functions[0].code);
        assert!(st.annotated().is_empty());
        assert!(st.maps()[0].iter().all(|o| o.is_some()));
    }

    #[test]
    fn functions_without_candidates_are_untouched() {
        let mut b = ProgramBuilder::new();
        let helper = b.function("helper", 1, true, |f| {
            let x = f.param(0);
            f.ld(x).ld(x).imul().ret();
        });
        let main = b.function("main", 0, true, |f| {
            f.ci(3).call(helper).ret();
        });
        let p = b.finish(main).unwrap();
        let cands = extract_candidates(&p);
        let ann = annotate(&p, &cands, &AnnotateOptions::profiling()).unwrap();
        assert_eq!(ann.functions[0].code, p.functions[0].code);
        assert_eq!(ann.functions[1].code, p.functions[1].code);
    }
}
