//! Static-vs-dynamic dependence **agreement report**.
//!
//! The points-to-sharpened pre-screen (`cfgir::memdep` over
//! `cfgir::pointsto`) makes claims about runtime behavior: a
//! (load, store) pair classified [`PairVerdict::Disjoint`] can *never*
//! touch the same address, and a demoted loop carries a guaranteed
//! cross-iteration RAW on every long-enough entry. This module replays
//! a benchmark and scores those claims against what actually happened:
//!
//! * **soundness invariant** — for every pair the static analysis
//!   proved disjoint, the dynamic address sets observed at the two
//!   access sites must not intersect. A single shared address is a
//!   bug in the analysis, and [`AgreementReport::sound`] goes false
//!   (CI fails the build on it);
//! * **precision/recall** — per benchmark, how the set of statically
//!   demoted loops compares with the set of loops whose traces show a
//!   real cross-iteration RAW. The pre-screen is deliberately
//!   optimistic, so recall below 1.0 is expected (the tracer exists
//!   precisely to catch what static analysis cannot); precision below
//!   1.0 would mean a demotion fired on a loop with no dynamic
//!   dependence, which the differential fuzzer also hunts.
//!
//! Every candidate — demoted or not — is force-annotated
//! ([`AnnotateOptions::only`]) so its loop boundaries are visible in
//! the event stream, and dynamic pcs are translated back to original
//! instruction indices through the [`annotate_mapped`] origin maps.

use crate::annotate::{annotate_mapped, AnnotateOptions};
use cfgir::{
    classify_loop_pairs, extract_candidates, AccessPair, Dominators, PairVerdict, SolverStats,
};
use std::collections::{BTreeSet, HashMap};
use tvm::isa::LoopId;
use tvm::program::Program;
use tvm::record::{Event, Recording, RecordingSink};
use tvm::trace::Addr;
use tvm::Interp;

/// One statically-disjoint pair whose dynamic address sets overlapped:
/// a refuted proof, i.e. an analysis bug.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Loop whose body the pair belongs to.
    pub loop_id: LoopId,
    /// Original instruction index of the load.
    pub load_at: u32,
    /// Original instruction index of the store.
    pub store_at: u32,
    /// Whether the refuted proof needed points-to facts.
    pub via_pointsto: bool,
    /// An address both sites touched.
    pub shared_addr: Addr,
}

/// Per-candidate agreement between the static verdict and the trace.
#[derive(Debug, Clone)]
pub struct LoopAgreement {
    /// The candidate.
    pub id: LoopId,
    /// Statically demoted (predicted serial)?
    pub demoted: bool,
    /// Did any entry's trace show a cross-iteration RAW?
    pub dynamic_cross_raw: bool,
    /// Total iterations observed across all entries.
    pub iters: u64,
    /// Pair counts by verdict for this loop's body.
    pub disjoint: usize,
    /// Disjoint only thanks to points-to facts.
    pub via_pointsto: usize,
    /// Unproven pairs left for the tracer.
    pub may_alias: usize,
    /// Statically guaranteed RAW pairs.
    pub guaranteed: usize,
}

/// The whole-benchmark agreement report.
#[derive(Debug, Clone, Default)]
pub struct AgreementReport {
    /// Per-candidate rows, in id order.
    pub loops: Vec<LoopAgreement>,
    /// Refuted disjointness proofs (must be empty).
    pub violations: Vec<Violation>,
    /// Total (load, store) pairs classified.
    pub pairs: usize,
    /// Pairs proven disjoint with points-to facts available.
    pub disjoint: usize,
    /// Of those, pairs the PR 1 structural rules alone could not prove.
    pub via_pointsto: usize,
    /// Pairs proven disjoint by the structural rules alone (baseline).
    pub baseline_disjoint: usize,
    /// Demoted candidates (predicted serial).
    pub predicted_serial: usize,
    /// Candidates with an observed dynamic cross-iteration RAW.
    pub actual_serial: usize,
    /// Candidates in both sets.
    pub agree_serial: usize,
    /// Events in the replayed recording.
    pub events: usize,
    /// Statistics of the points-to solve behind the verdicts.
    pub pointsto: SolverStats,
    /// Loops the rescue stage transformed before this analysis ran.
    pub rescued: usize,
    /// When anything was rescued: did the original and transformed
    /// programs finish in bit-identical final state (return value and
    /// whole memory image)? Vacuously true when nothing changed.
    pub rescue_state_ok: bool,
}

impl AgreementReport {
    /// True when no statically-disjoint pair aliased dynamically and
    /// every rescue transform preserved the program's final state.
    pub fn sound(&self) -> bool {
        self.violations.is_empty() && self.rescue_state_ok
    }

    /// Of the loops predicted serial, the fraction observed serial.
    /// `None` when nothing was predicted serial.
    pub fn precision(&self) -> Option<f64> {
        (self.predicted_serial > 0).then(|| self.agree_serial as f64 / self.predicted_serial as f64)
    }

    /// Of the loops observed serial, the fraction predicted serial.
    /// `None` when nothing was observed serial.
    pub fn recall(&self) -> Option<f64> {
        (self.actual_serial > 0).then(|| self.agree_serial as f64 / self.actual_serial as f64)
    }
}

struct EntryWalk {
    loop_id: LoopId,
    iter: u64,
    /// addr -> iteration of the last store within this entry
    last_store: HashMap<Addr, u64>,
    found_cross_raw: bool,
}

/// Runs the full agreement check on one program.
///
/// # Errors
///
/// Forwards interpreter or annotation failures as [`tvm::VmError`].
pub fn agreement_report(program: &Program) -> Result<AgreementReport, tvm::VmError> {
    // rescue first: the report scores the program the pipeline
    // actually profiles, and the state comparison double-checks the
    // legality proofs dynamically — a transform that slipped past the
    // verifier with changed semantics flips `sound()` here
    let rescue = cfgir::rescue_program(program);
    let rescue_state_ok = if rescue.changed() {
        let a = Interp::run_state(program, &mut tvm::NullSink)?;
        let b = Interp::run_state(&rescue.program, &mut tvm::NullSink)?;
        a.result.ret == b.result.ret && a.memory.words() == b.memory.words()
    } else {
        true
    };
    let program = &rescue.program;
    let cands = extract_candidates(program);
    let pt = cfgir::PointsTo::analyze(program);

    // classify every candidate's pairs, sharpened and baseline
    let mut per_loop: HashMap<LoopId, Vec<AccessPair>> = HashMap::new();
    let mut report = AgreementReport {
        pointsto: cands.pointsto,
        rescued: rescue.rescued.len(),
        rescue_state_ok,
        ..AgreementReport::default()
    };
    for c in &cands.candidates {
        let fa = &cands.functions[c.func.0 as usize];
        let f = &program.functions[c.func.0 as usize];
        let dom = Dominators::compute(&fa.cfg);
        let lp = &fa.forest.loops[c.loop_idx];
        let view = pt.view(c.func);
        let pairs = classify_loop_pairs(program, f, &fa.cfg, &dom, lp, Some(&view));
        let base = classify_loop_pairs(program, f, &fa.cfg, &dom, lp, None);
        report.pairs += pairs.len();
        report.baseline_disjoint += base
            .iter()
            .filter(|p| p.verdict == PairVerdict::Disjoint)
            .count();
        report.disjoint += pairs
            .iter()
            .filter(|p| p.verdict == PairVerdict::Disjoint)
            .count();
        report.via_pointsto += pairs.iter().filter(|p| p.via_pointsto).count();
        per_loop.insert(c.id, pairs);
    }

    // force-annotate every candidate so demoted loops are traced too
    let all_ids: Vec<LoopId> = cands.candidates.iter().map(|c| c.id).collect();
    let (ann, maps) = annotate_mapped(program, &cands, &AnnotateOptions::only(all_ids))?;
    let mut sink = RecordingSink::default();
    Interp::run(&ann, &mut sink)?;
    let rec = sink.into_recording();
    report.events = rec.len();

    // dynamic profile: per-site address sets (original pcs) and
    // per-loop cross-iteration RAW detection
    let (addrs_at, loop_dyn) = profile(&rec, &maps);

    for c in &cands.candidates {
        let pairs = &per_loop[&c.id];
        let (iters, dynamic_cross_raw) = loop_dyn.get(&c.id).copied().unwrap_or((0, false));
        for p in pairs {
            if p.verdict != PairVerdict::Disjoint || p.opaque_store {
                // opaque pairs are vacuous here: a call instruction
                // emits no heap events at its own pc
                continue;
            }
            let empty = BTreeSet::new();
            let la = addrs_at.get(&(c.func.0, p.load_at)).unwrap_or(&empty);
            let sa = addrs_at.get(&(c.func.0, p.store_at)).unwrap_or(&empty);
            if let Some(shared) = la.iter().find(|a| sa.contains(a)) {
                report.violations.push(Violation {
                    loop_id: c.id,
                    load_at: p.load_at,
                    store_at: p.store_at,
                    via_pointsto: p.via_pointsto,
                    shared_addr: *shared,
                });
            }
        }
        let count = |v: PairVerdict| pairs.iter().filter(|p| p.verdict == v).count();
        report.loops.push(LoopAgreement {
            id: c.id,
            demoted: c.is_demoted(),
            dynamic_cross_raw,
            iters,
            disjoint: count(PairVerdict::Disjoint),
            via_pointsto: pairs.iter().filter(|p| p.via_pointsto).count(),
            may_alias: count(PairVerdict::MayAlias),
            guaranteed: count(PairVerdict::GuaranteedRaw),
        });
        if c.is_demoted() {
            report.predicted_serial += 1;
        }
        if dynamic_cross_raw {
            report.actual_serial += 1;
            if c.is_demoted() {
                report.agree_serial += 1;
            }
        }
    }
    Ok(report)
}

type SiteAddrs = HashMap<(u16, u32), BTreeSet<Addr>>;
type LoopDyn = HashMap<LoopId, (u64, bool)>;

/// One pass over the recording: address sets per original access site,
/// and (iterations, saw-cross-iteration-RAW) per loop id.
fn profile(rec: &Recording, maps: &[Vec<Option<u32>>]) -> (SiteAddrs, LoopDyn) {
    let mut addrs_at: SiteAddrs = HashMap::new();
    let mut loop_dyn: LoopDyn = HashMap::new();
    let mut stack: Vec<EntryWalk> = Vec::new();
    let orig_pc = |pc: tvm::isa::Pc| -> Option<(u16, u32)> {
        let f = pc.func.0;
        maps.get(f as usize)
            .and_then(|m| m.get(pc.idx as usize))
            .copied()
            .flatten()
            .map(|o| (f, o))
    };
    let close = |st: EntryWalk, loop_dyn: &mut LoopDyn| {
        let e = loop_dyn.entry(st.loop_id).or_insert((0, false));
        e.0 += st.iter;
        e.1 |= st.found_cross_raw;
    };
    for e in &rec.events {
        match *e {
            Event::LoopEnter(l, _, _, _) => stack.push(EntryWalk {
                loop_id: l,
                iter: 0,
                last_store: HashMap::new(),
                found_cross_raw: false,
            }),
            Event::LoopIter(l, _) => {
                if let Some(st) = stack.iter_mut().rev().find(|s| s.loop_id == l) {
                    st.iter += 1;
                }
            }
            Event::LoopExit(l, _) => {
                // inner entries abandoned by an early return unwind
                // together with the exiting loop
                while let Some(st) = stack.pop() {
                    let done = st.loop_id == l;
                    close(st, &mut loop_dyn);
                    if done {
                        break;
                    }
                }
            }
            Event::HeapLoad(a, _, pc) => {
                if let Some(key) = orig_pc(pc) {
                    addrs_at.entry(key).or_default().insert(a);
                }
                for st in &mut stack {
                    if !st.found_cross_raw {
                        if let Some(&it) = st.last_store.get(&a) {
                            if it < st.iter {
                                st.found_cross_raw = true;
                            }
                        }
                    }
                }
            }
            Event::HeapStore(a, _, pc) => {
                if let Some(key) = orig_pc(pc) {
                    addrs_at.entry(key).or_default().insert(a);
                }
                for st in &mut stack {
                    st.last_store.insert(a, st.iter);
                }
            }
            _ => {}
        }
    }
    while let Some(st) = stack.pop() {
        close(st, &mut loop_dyn);
    }
    (addrs_at, loop_dyn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{ElemKind, ProgramBuilder};

    /// A recurrence loop next to a provably-parallel one, with a
    /// points-to-separated second array in the mix.
    fn mixed_program() -> Program {
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, false, |f| {
            let (a, c, i, j) = (f.local(), f.local(), f.local(), f.local());
            f.ci(64).newarray(ElemKind::Int).st(a);
            f.ci(64).newarray(ElemKind::Int).st(c);
            // loop 0: serial static recurrence -> demoted (g = g*5+1
            // mixes two operators, so loop rescue cannot lift it)
            f.for_in(i, 0.into(), 16.into(), |f| {
                f.getstatic(g).ci(5).imul().ci(1).iadd().putstatic(g);
            });
            // loop 1: a[j] = c[j] * 2 — reads one array, writes the
            // other; only points-to can separate the two bases
            f.for_in(j, 0.into(), 16.into(), |f| {
                f.ld(a).ld(j);
                f.ld(c).ld(j).aload();
                f.ci(2).imul();
                f.astore();
            });
            f.ret_void();
        });
        b.finish(main).unwrap()
    }

    #[test]
    fn mixed_program_report_is_sound_and_agrees() {
        let p = mixed_program();
        let r = agreement_report(&p).unwrap();
        assert!(r.sound(), "violations: {:?}", r.violations);
        assert_eq!(r.loops.len(), 2);
        assert_eq!(r.predicted_serial, 1);
        assert_eq!(r.actual_serial, 1, "the recurrence loop must show a RAW");
        assert_eq!(r.agree_serial, 1);
        assert_eq!(r.precision(), Some(1.0));
        assert_eq!(r.recall(), Some(1.0));
        assert!(r.events > 0);
        assert!(r.pointsto.abstract_objects >= 2);
        // the two distinct arrays in loop 1 need points-to to separate
        assert!(
            r.via_pointsto > 0,
            "expected a points-to-only disjoint pair: {r:?}"
        );
        assert!(r.disjoint >= r.baseline_disjoint + r.via_pointsto);
    }

    #[test]
    fn rescued_reduction_is_scored_on_the_transformed_program() {
        // g += a[i] is demoted as written; after rescue the report
        // sees the delta-rewritten loop, which carries no recurrence,
        // and the state cross-check confirms identical semantics
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, false, |f| {
            let (a, i) = (f.local(), f.local());
            f.ci(32).newarray(ElemKind::Int).st(a);
            f.for_in(i, 0.into(), 32.into(), |f| {
                f.arr_set(
                    a,
                    |f| {
                        f.ld(i);
                    },
                    |f| {
                        f.ld(i).ci(3).imul();
                    },
                );
            });
            f.for_in(i, 0.into(), 32.into(), |f| {
                f.getstatic(g).ld(a).ld(i).aload().iadd().putstatic(g);
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let r = agreement_report(&p).unwrap();
        assert_eq!(r.rescued, 1);
        assert!(r.rescue_state_ok);
        assert!(r.sound(), "violations: {:?}", r.violations);
        assert_eq!(r.predicted_serial, 0, "the rescued loop is clean");
        assert_eq!(r.actual_serial, 0, "the recurrence is gone dynamically too");
    }

    #[test]
    fn optimistic_miss_shows_up_in_recall_not_soundness() {
        // a[b[i]] += 1 with b[i] all equal: dynamically serial, but no
        // static proof — recall drops below 1, soundness holds
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            let (a, idx, i) = (f.local(), f.local(), f.local());
            f.ci(8).newarray(ElemKind::Int).st(a);
            f.ci(16).newarray(ElemKind::Int).st(idx);
            f.for_in(i, 0.into(), 16.into(), |f| {
                // a[idx[i]] = a[idx[i]] + 1, idx[i] == 0 always
                f.ld(a).ld(idx).ld(i).aload();
                f.ld(a).ld(idx).ld(i).aload().aload();
                f.ci(1).iadd();
                f.astore();
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let r = agreement_report(&p).unwrap();
        assert!(r.sound(), "violations: {:?}", r.violations);
        assert_eq!(r.predicted_serial, 0, "no static proof exists");
        assert_eq!(r.actual_serial, 1, "but the trace shows the RAW");
        assert_eq!(r.recall(), Some(0.0));
        assert_eq!(r.precision(), None);
    }
}
