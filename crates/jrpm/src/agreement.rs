//! Static-vs-dynamic dependence **agreement report**.
//!
//! The points-to-sharpened pre-screen (`cfgir::memdep` over
//! `cfgir::pointsto`) makes claims about runtime behavior: a
//! (load, store) pair classified [`PairVerdict::Disjoint`] can *never*
//! touch the same address, and a demoted loop carries a guaranteed
//! cross-iteration RAW on every long-enough entry. This module replays
//! a benchmark and scores those claims against what actually happened:
//!
//! * **soundness invariant** — for every pair the static analysis
//!   proved disjoint, the dynamic address sets observed at the two
//!   access sites must not intersect. A single shared address is a
//!   bug in the analysis, and [`AgreementReport::sound`] goes false
//!   (CI fails the build on it);
//! * **precision/recall** — per benchmark, how the set of statically
//!   demoted loops compares with the set of loops whose traces show a
//!   real cross-iteration RAW. The pre-screen is deliberately
//!   optimistic, so recall below 1.0 is expected (the tracer exists
//!   precisely to catch what static analysis cannot); precision below
//!   1.0 would mean a demotion fired on a loop with no dynamic
//!   dependence, which the differential fuzzer also hunts.
//!
//! Every candidate — demoted or not — is force-annotated
//! ([`AnnotateOptions::only`]) so its loop boundaries are visible in
//! the event stream, and dynamic pcs are translated back to original
//! instruction indices through the [`annotate_mapped`] origin maps.
//!
//! # Value agreement
//!
//! The scalar-evolution analysis (`cfgir::scev`) and the certified
//! pre-computation slices built on it (`cfgir::slice`) make *stronger*
//! claims than disjointness, and this module checks those dynamically
//! too:
//!
//! * **slice values** — every certified slice over a static scalar
//!   predicts the scalar's exact value at each iteration boundary
//!   (`v_k = step^k(v_0)` under the certified [`Evolution`]); a value
//!   tap on `putstatic` ([`tvm::trace::TraceSink::static_store`])
//!   records what was actually written, and every `eoi` boundary
//!   compares the two. Any mismatch is a [`SliceViolation`];
//! * **slice addresses** — a certified inductor slice predicts the
//!   per-iteration address step of every affine access site driven by
//!   that inductor (`scale * stride * WORD_BYTES` bytes); the replayed
//!   heap events must advance exactly that much per iteration;
//! * **dependence distances** — a [`PairVerdict::DistanceAtLeast`]
//!   verdict claims any address both sites touch is touched exactly
//!   `d` iterations apart; the replay cross-checks every shared
//!   address ([`DistanceViolation`] otherwise).
//!
//! All three feed [`AgreementReport::sound`], so the `scev-gate` CI
//! binary fails the build on a single unsound prediction.

use crate::annotate::{annotate_mapped, AnnotateOptions};
use cfgir::extract_candidates;
use cfgir::{
    classify_loop_pairs, classify_loop_pairs_evo, extract_slices, scev, AccessPair, Dominators,
    Evolution, PairVerdict, SliceScalar, SolverStats,
};
use std::collections::{BTreeSet, HashMap};
use tvm::isa::{LoopId, Pc};
use tvm::program::Program;
use tvm::record::{Event, Recording, RecordingSink};
use tvm::trace::{Addr, Cycles, TraceSink};
use tvm::{Interp, WORD_BYTES};

/// One statically-disjoint pair whose dynamic address sets overlapped:
/// a refuted proof, i.e. an analysis bug.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Loop whose body the pair belongs to.
    pub loop_id: LoopId,
    /// Original instruction index of the load.
    pub load_at: u32,
    /// Original instruction index of the store.
    pub store_at: u32,
    /// Whether the refuted proof needed points-to facts.
    pub via_pointsto: bool,
    /// An address both sites touched.
    pub shared_addr: Addr,
}

/// A certified slice whose predicted per-iteration value (or address
/// step) disagreed with the recorded stream: a refuted certificate,
/// i.e. a bug in `cfgir::scev`/`cfgir::slice`.
#[derive(Debug, Clone)]
pub struct SliceViolation {
    /// Loop the slice belongs to.
    pub loop_id: LoopId,
    /// The loop-carried scalar the slice pre-computes.
    pub scalar: SliceScalar,
    /// Iteration boundary (number of completed iterations) at which
    /// the disagreement surfaced.
    pub iter: u64,
    /// What the certificate's evolution predicted — a scalar value for
    /// static slices, a byte address for inductor slices.
    pub predicted: i64,
    /// What the recorded stream actually held.
    pub observed: i64,
}

/// A `DistanceAtLeast(d)` pair whose dynamic traces touched a shared
/// address at an iteration distance other than the claimed one.
#[derive(Debug, Clone)]
pub struct DistanceViolation {
    /// Loop whose body the pair belongs to.
    pub loop_id: LoopId,
    /// Original instruction index of the load.
    pub load_at: u32,
    /// Original instruction index of the store.
    pub store_at: u32,
    /// The shared address.
    pub addr: Addr,
    /// Iteration (within one entry) the load touched it.
    pub load_iter: u64,
    /// Iteration (within one entry) the store touched it.
    pub store_iter: u64,
    /// The signed distance the static analysis claimed.
    pub claimed: i64,
}

/// Per-candidate agreement between the static verdict and the trace.
#[derive(Debug, Clone)]
pub struct LoopAgreement {
    /// The candidate.
    pub id: LoopId,
    /// Statically demoted (predicted serial)?
    pub demoted: bool,
    /// Did any entry's trace show a cross-iteration RAW?
    pub dynamic_cross_raw: bool,
    /// Total iterations observed across all entries.
    pub iters: u64,
    /// Pair counts by verdict for this loop's body.
    pub disjoint: usize,
    /// Disjoint only thanks to points-to facts.
    pub via_pointsto: usize,
    /// Unproven pairs left for the tracer.
    pub may_alias: usize,
    /// Statically guaranteed RAW pairs.
    pub guaranteed: usize,
    /// Pairs scalar evolution sharpened to a dependence distance.
    pub distance: usize,
    /// Certified pre-computation slices extracted for this loop.
    pub slices: usize,
}

/// The whole-benchmark agreement report.
#[derive(Debug, Clone, Default)]
pub struct AgreementReport {
    /// Per-candidate rows, in id order.
    pub loops: Vec<LoopAgreement>,
    /// Refuted disjointness proofs (must be empty).
    pub violations: Vec<Violation>,
    /// Total (load, store) pairs classified.
    pub pairs: usize,
    /// Pairs proven disjoint with points-to facts available.
    pub disjoint: usize,
    /// Of those, pairs the PR 1 structural rules alone could not prove.
    pub via_pointsto: usize,
    /// Pairs proven disjoint by the structural rules alone (baseline).
    pub baseline_disjoint: usize,
    /// Demoted candidates (predicted serial).
    pub predicted_serial: usize,
    /// Candidates with an observed dynamic cross-iteration RAW.
    pub actual_serial: usize,
    /// Candidates in both sets.
    pub agree_serial: usize,
    /// Events in the replayed recording.
    pub events: usize,
    /// Statistics of the points-to solve behind the verdicts.
    pub pointsto: SolverStats,
    /// Loops the rescue stage transformed before this analysis ran.
    pub rescued: usize,
    /// When anything was rescued: did the original and transformed
    /// programs finish in bit-identical final state (return value and
    /// whole memory image)? Vacuously true when nothing changed.
    pub rescue_state_ok: bool,
    /// Certified pre-computation slices extracted across all loops.
    /// Every one passed the independent verifier.
    pub slices: usize,
    /// Slice candidates the independent verifier rejected.
    pub slices_rejected: usize,
    /// Per-iteration slice predictions compared against the recorded
    /// stream (values for static slices, addresses for inductor
    /// slices).
    pub slice_checks: u64,
    /// Slice predictions the recorded stream refuted (must be empty).
    pub slice_violations: Vec<SliceViolation>,
    /// Pairs carrying a `DistanceAtLeast` verdict.
    pub distance_pairs: usize,
    /// Shared addresses cross-checked against a claimed distance.
    pub distance_checks: u64,
    /// Distance claims the replay refuted (must be empty).
    pub distance_violations: Vec<DistanceViolation>,
}

impl AgreementReport {
    /// True when no statically-disjoint pair aliased dynamically,
    /// every slice prediction and distance claim matched the recorded
    /// stream, and every rescue transform preserved the program's
    /// final state.
    pub fn sound(&self) -> bool {
        self.violations.is_empty()
            && self.slice_violations.is_empty()
            && self.distance_violations.is_empty()
            && self.rescue_state_ok
    }

    /// Of the loops predicted serial, the fraction observed serial.
    /// `None` when nothing was predicted serial.
    pub fn precision(&self) -> Option<f64> {
        (self.predicted_serial > 0).then(|| self.agree_serial as f64 / self.predicted_serial as f64)
    }

    /// Of the loops observed serial, the fraction predicted serial.
    /// `None` when nothing was observed serial.
    pub fn recall(&self) -> Option<f64> {
        (self.actual_serial > 0).then(|| self.agree_serial as f64 / self.actual_serial as f64)
    }
}

struct EntryWalk {
    loop_id: LoopId,
    iter: u64,
    /// addr -> iteration of the last store within this entry
    last_store: HashMap<Addr, u64>,
    found_cross_raw: bool,
}

/// Runs the full agreement check on one program.
///
/// # Errors
///
/// Forwards interpreter or annotation failures as [`tvm::VmError`].
pub fn agreement_report(program: &Program) -> Result<AgreementReport, tvm::VmError> {
    // rescue first: the report scores the program the pipeline
    // actually profiles, and the state comparison double-checks the
    // legality proofs dynamically — a transform that slipped past the
    // verifier with changed semantics flips `sound()` here
    let rescue = cfgir::rescue_program(program);
    let rescue_state_ok = if rescue.changed() {
        let a = Interp::run_state(program, &mut tvm::NullSink)?;
        let b = Interp::run_state(&rescue.program, &mut tvm::NullSink)?;
        a.result.ret == b.result.ret && a.memory.words() == b.memory.words()
    } else {
        true
    };
    let program = &rescue.program;
    let cands = extract_candidates(program);
    let pt = cfgir::PointsTo::analyze(program);

    // classify every candidate's pairs, sharpened and baseline
    let mut per_loop: HashMap<LoopId, Vec<AccessPair>> = HashMap::new();
    let mut report = AgreementReport {
        pointsto: cands.pointsto,
        rescued: rescue.rescued.len(),
        rescue_state_ok,
        ..AgreementReport::default()
    };
    let mut value_plans: HashMap<LoopId, ValuePlan> = HashMap::new();
    let mut addr_plans: HashMap<LoopId, AddrPlan> = HashMap::new();
    let mut slice_counts: HashMap<LoopId, usize> = HashMap::new();
    for c in &cands.candidates {
        let fa = &cands.functions[c.func.0 as usize];
        let f = &program.functions[c.func.0 as usize];
        let dom = Dominators::compute(&fa.cfg);
        let lp = &fa.forest.loops[c.loop_idx];
        let view = pt.view(c.func);
        let evo = scev::analyze_loop(program, f, &fa.cfg, lp);
        let pairs = classify_loop_pairs_evo(program, f, &fa.cfg, &dom, lp, Some(&view), &evo);
        let base = classify_loop_pairs(program, f, &fa.cfg, &dom, lp, None);
        report.pairs += pairs.len();
        report.baseline_disjoint += base
            .iter()
            .filter(|p| p.verdict == PairVerdict::Disjoint)
            .count();
        report.disjoint += pairs
            .iter()
            .filter(|p| p.verdict == PairVerdict::Disjoint)
            .count();
        report.via_pointsto += pairs.iter().filter(|p| p.via_pointsto).count();
        report.distance_pairs += pairs
            .iter()
            .filter(|p| matches!(p.verdict, PairVerdict::DistanceAtLeast(_)))
            .count();

        // every certified slice becomes a dynamic check: static
        // scalars by value, inductors by address progression
        let slices = extract_slices(program, f, &fa.cfg, &fa.forest, c.loop_idx, &evo);
        report.slices += slices.slices.len();
        report.slices_rejected += slices.rejected;
        let mut vplan = ValuePlan::default();
        let mut aplan = AddrPlan::default();
        for s in &slices.slices {
            match s.scalar {
                SliceScalar::Static(g) => {
                    vplan.statics.push((g.0, s.cert.evolution));
                }
                SliceScalar::Local(l) => {
                    let Evolution::Affine { stride } = s.cert.evolution else {
                        continue;
                    };
                    // every affine access site driven by this inductor
                    // advances scale*stride words per iteration
                    for (instr, ind, scale) in cfgir::affine_sites(program, f, &fa.cfg, &dom, lp) {
                        if ind == l {
                            let per_iter = scale
                                .wrapping_mul(stride)
                                .wrapping_mul(i64::from(WORD_BYTES));
                            aplan.sites.push(((c.func.0, instr), per_iter));
                        }
                    }
                }
            }
        }
        for p in &pairs {
            if let (PairVerdict::DistanceAtLeast(_), Some(q)) = (&p.verdict, p.scev_distance) {
                aplan
                    .pairs
                    .push(((c.func.0, p.load_at), (c.func.0, p.store_at), q));
            }
        }
        if !vplan.statics.is_empty() {
            value_plans.insert(c.id, vplan);
        }
        if !aplan.sites.is_empty() || !aplan.pairs.is_empty() {
            addr_plans.insert(c.id, aplan);
        }
        slice_counts.insert(c.id, slices.slices.len());
        per_loop.insert(c.id, pairs);
    }

    // force-annotate every candidate so demoted loops are traced too
    let all_ids: Vec<LoopId> = cands.candidates.iter().map(|c| c.id).collect();
    let (ann, maps) = annotate_mapped(program, &cands, &AnnotateOptions::only(all_ids))?;
    let mut sink = TapSink::default();
    Interp::run(&ann, &mut sink)?;
    let taps = sink.taps;
    let rec = sink.inner.into_recording();
    report.events = rec.len();

    // dynamic profile: per-site address sets (original pcs) and
    // per-loop cross-iteration RAW detection
    let (addrs_at, loop_dyn) = profile(&rec, &maps);

    // value agreement: replay the tap stream against every static
    // slice's predicted per-iteration value ...
    let (vchecks, vviol) = check_static_slices(&taps, &value_plans);
    report.slice_checks += vchecks;
    report.slice_violations.extend(vviol);
    // ... and the heap events against inductor address progressions
    // and claimed dependence distances
    check_addresses(&rec, &maps, &addr_plans, &mut report);

    for c in &cands.candidates {
        let pairs = &per_loop[&c.id];
        let (iters, dynamic_cross_raw) = loop_dyn.get(&c.id).copied().unwrap_or((0, false));
        for p in pairs {
            if p.verdict != PairVerdict::Disjoint || p.opaque_store {
                // opaque pairs are vacuous here: a call instruction
                // emits no heap events at its own pc
                continue;
            }
            let empty = BTreeSet::new();
            let la = addrs_at.get(&(c.func.0, p.load_at)).unwrap_or(&empty);
            let sa = addrs_at.get(&(c.func.0, p.store_at)).unwrap_or(&empty);
            if let Some(shared) = la.iter().find(|a| sa.contains(a)) {
                report.violations.push(Violation {
                    loop_id: c.id,
                    load_at: p.load_at,
                    store_at: p.store_at,
                    via_pointsto: p.via_pointsto,
                    shared_addr: *shared,
                });
            }
        }
        let count = |v: PairVerdict| pairs.iter().filter(|p| p.verdict == v).count();
        report.loops.push(LoopAgreement {
            id: c.id,
            demoted: c.is_demoted(),
            dynamic_cross_raw,
            iters,
            disjoint: count(PairVerdict::Disjoint),
            via_pointsto: pairs.iter().filter(|p| p.via_pointsto).count(),
            may_alias: count(PairVerdict::MayAlias),
            guaranteed: count(PairVerdict::GuaranteedRaw),
            distance: pairs
                .iter()
                .filter(|p| matches!(p.verdict, PairVerdict::DistanceAtLeast(_)))
                .count(),
            slices: slice_counts.get(&c.id).copied().unwrap_or(0),
        });
        if c.is_demoted() {
            report.predicted_serial += 1;
        }
        if dynamic_cross_raw {
            report.actual_serial += 1;
            if c.is_demoted() {
                report.agree_serial += 1;
            }
        }
    }
    Ok(report)
}

type SiteAddrs = HashMap<(u16, u32), BTreeSet<Addr>>;
type LoopDyn = HashMap<LoopId, (u64, bool)>;

/// One pass over the recording: address sets per original access site,
/// and (iterations, saw-cross-iteration-RAW) per loop id.
fn profile(rec: &Recording, maps: &[Vec<Option<u32>>]) -> (SiteAddrs, LoopDyn) {
    let mut addrs_at: SiteAddrs = HashMap::new();
    let mut loop_dyn: LoopDyn = HashMap::new();
    let mut stack: Vec<EntryWalk> = Vec::new();
    let orig_pc = |pc: tvm::isa::Pc| -> Option<(u16, u32)> {
        let f = pc.func.0;
        maps.get(f as usize)
            .and_then(|m| m.get(pc.idx as usize))
            .copied()
            .flatten()
            .map(|o| (f, o))
    };
    let close = |st: EntryWalk, loop_dyn: &mut LoopDyn| {
        let e = loop_dyn.entry(st.loop_id).or_insert((0, false));
        e.0 += st.iter;
        e.1 |= st.found_cross_raw;
    };
    for e in &rec.events {
        match *e {
            Event::LoopEnter(l, _, _, _) => stack.push(EntryWalk {
                loop_id: l,
                iter: 0,
                last_store: HashMap::new(),
                found_cross_raw: false,
            }),
            Event::LoopIter(l, _) => {
                if let Some(st) = stack.iter_mut().rev().find(|s| s.loop_id == l) {
                    st.iter += 1;
                }
            }
            Event::LoopExit(l, _) => {
                // inner entries abandoned by an early return unwind
                // together with the exiting loop
                while let Some(st) = stack.pop() {
                    let done = st.loop_id == l;
                    close(st, &mut loop_dyn);
                    if done {
                        break;
                    }
                }
            }
            Event::HeapLoad(a, _, pc) => {
                if let Some(key) = orig_pc(pc) {
                    addrs_at.entry(key).or_default().insert(a);
                }
                for st in &mut stack {
                    if !st.found_cross_raw {
                        if let Some(&it) = st.last_store.get(&a) {
                            if it < st.iter {
                                st.found_cross_raw = true;
                            }
                        }
                    }
                }
            }
            Event::HeapStore(a, _, pc) => {
                if let Some(key) = orig_pc(pc) {
                    addrs_at.entry(key).or_default().insert(a);
                }
                for st in &mut stack {
                    st.last_store.insert(a, st.iter);
                }
            }
            _ => {}
        }
    }
    while let Some(st) = stack.pop() {
        close(st, &mut loop_dyn);
    }
    (addrs_at, loop_dyn)
}

/// One event of the value-tap side stream: loop boundaries interleaved
/// with `putstatic` value taps, in execution order.
#[derive(Debug, Clone, Copy)]
enum VEvent {
    Enter(LoopId),
    Iter(LoopId),
    Exit(LoopId),
    Store(u16, i64),
}

/// A [`RecordingSink`] wrapper that additionally captures the
/// `putstatic` value taps the recording itself does not carry (the
/// event stream is value-free by design), interleaved with loop
/// boundaries so per-iteration predictions line up.
#[derive(Default)]
struct TapSink {
    inner: RecordingSink,
    taps: Vec<VEvent>,
}

impl TraceSink for TapSink {
    fn heap_load(&mut self, addr: Addr, now: Cycles, pc: Pc) {
        self.inner.heap_load(addr, now, pc);
    }
    fn heap_store(&mut self, addr: Addr, now: Cycles, pc: Pc) {
        self.inner.heap_store(addr, now, pc);
    }
    fn static_store(&mut self, global: u16, value: i64, now: Cycles, pc: Pc) {
        self.taps.push(VEvent::Store(global, value));
        self.inner.static_store(global, value, now, pc);
    }
    fn local_load(&mut self, var: u16, activation: u32, now: Cycles, pc: Pc) {
        self.inner.local_load(var, activation, now, pc);
    }
    fn local_store(&mut self, var: u16, activation: u32, now: Cycles, pc: Pc) {
        self.inner.local_store(var, activation, now, pc);
    }
    fn loop_enter(&mut self, loop_id: LoopId, n_locals: u16, activation: u32, now: Cycles) {
        self.taps.push(VEvent::Enter(loop_id));
        self.inner.loop_enter(loop_id, n_locals, activation, now);
    }
    fn loop_iter(&mut self, loop_id: LoopId, now: Cycles) {
        self.taps.push(VEvent::Iter(loop_id));
        self.inner.loop_iter(loop_id, now);
    }
    fn loop_exit(&mut self, loop_id: LoopId, now: Cycles) {
        self.taps.push(VEvent::Exit(loop_id));
        self.inner.loop_exit(loop_id, now);
    }
    fn stats_read(&mut self, loop_id: LoopId, now: Cycles) {
        self.inner.stats_read(loop_id, now);
    }
    fn call_enter(&mut self, site: Pc, activation: u32, now: Cycles) {
        self.inner.call_enter(site, activation, now);
    }
    fn call_exit(&mut self, site: Pc, now: Cycles) {
        self.inner.call_exit(site, now);
    }
    fn call_result_use(&mut self, site: Pc, now: Cycles) {
        self.inner.call_result_use(site, now);
    }
}

/// Static slices of one loop: (global index, certified evolution).
#[derive(Debug, Clone, Default)]
struct ValuePlan {
    statics: Vec<(u16, Evolution)>,
}

/// A `DistanceAtLeast` pair to replay: (load site, store site, signed
/// claimed distance).
type DistancePair = ((u16, u32), (u16, u32), i64);

/// Address-level checks of one loop.
#[derive(Debug, Clone, Default)]
struct AddrPlan {
    /// Affine sites covered by an inductor slice: (site key, expected
    /// per-iteration byte delta).
    sites: Vec<((u16, u32), i64)>,
    /// `DistanceAtLeast` pairs: (load site, store site, signed claimed
    /// distance).
    pairs: Vec<DistancePair>,
}

/// Walks the value-tap stream and checks, at every `eoi` boundary of
/// every entry of a planned loop, that each static slice's tracked
/// value equals its certificate's prediction (`step` applied once per
/// completed iteration to the value at entry). `eoi` fires on the back
/// edge, after the iteration's stores, so at the k-th boundary exactly
/// k full updates have been applied.
fn check_static_slices(
    taps: &[VEvent],
    plans: &HashMap<LoopId, ValuePlan>,
) -> (u64, Vec<SliceViolation>) {
    struct Frame {
        loop_id: LoopId,
        iter: u64,
        /// (global, evolution, predicted current value)
        tracked: Vec<(u16, Evolution, i64)>,
    }
    // statics are zero-initialized; only Int stores tap, which is
    // exactly the set scev reasons about
    let mut cur: HashMap<u16, i64> = HashMap::new();
    let mut stack: Vec<Frame> = Vec::new();
    let mut checks = 0u64;
    let mut violations = Vec::new();
    for e in taps {
        match *e {
            VEvent::Store(g, v) => {
                cur.insert(g, v);
            }
            VEvent::Enter(l) => {
                let tracked = plans
                    .get(&l)
                    .map(|p| {
                        p.statics
                            .iter()
                            .map(|(g, evo)| (*g, *evo, cur.get(g).copied().unwrap_or(0)))
                            .collect()
                    })
                    .unwrap_or_default();
                stack.push(Frame {
                    loop_id: l,
                    iter: 0,
                    tracked,
                });
            }
            VEvent::Iter(l) => {
                if let Some(fr) = stack.iter_mut().rev().find(|f| f.loop_id == l) {
                    fr.iter += 1;
                    for (g, evo, pred) in &mut fr.tracked {
                        let Some(next) = evo.step(*pred) else {
                            continue;
                        };
                        *pred = next;
                        let observed = cur.get(g).copied().unwrap_or(0);
                        checks += 1;
                        if observed != *pred {
                            violations.push(SliceViolation {
                                loop_id: l,
                                scalar: SliceScalar::Static(tvm::isa::GlobalId(*g)),
                                iter: fr.iter,
                                predicted: *pred,
                                observed,
                            });
                        }
                    }
                }
            }
            VEvent::Exit(l) => {
                // inner entries abandoned by an early unwind close
                // together with the exiting loop, as in `profile`
                while let Some(fr) = stack.pop() {
                    if fr.loop_id == l {
                        break;
                    }
                }
            }
        }
    }
    (checks, violations)
}

/// Walks the recording and checks, per entry of every planned loop,
/// (a) that each slice-covered affine site's addresses advance by the
/// expected per-iteration byte delta, and (b) that every address
/// shared by a `DistanceAtLeast(d)` pair was touched exactly the
/// claimed (signed) number of iterations apart.
fn check_addresses(
    rec: &Recording,
    maps: &[Vec<Option<u32>>],
    plans: &HashMap<LoopId, AddrPlan>,
    report: &mut AgreementReport,
) {
    struct Frame<'p> {
        loop_id: LoopId,
        iter: u64,
        /// `None` for loops with nothing to check — still stacked so
        /// unwind-abandoned entries close like in `profile`
        plan: Option<&'p AddrPlan>,
        /// site key -> (iteration, address) in observation order
        seen: HashMap<(u16, u32), Vec<(u64, Addr)>>,
    }
    let orig_pc = |pc: Pc| -> Option<(u16, u32)> {
        let f = pc.func.0;
        maps.get(f as usize)
            .and_then(|m| m.get(pc.idx as usize))
            .copied()
            .flatten()
            .map(|o| (f, o))
    };
    let mut stack: Vec<Frame<'_>> = Vec::new();
    let close = |fr: Frame<'_>, report: &mut AgreementReport| {
        let Some(plan) = fr.plan else { return };
        // (a) inductor slice address progressions
        for &(key, per_iter) in &plan.sites {
            let Some(obs) = fr.seen.get(&key) else {
                continue;
            };
            for w in obs.windows(2) {
                let ((i1, a1), (i2, a2)) = (w[0], w[1]);
                if i2 == i1 {
                    continue; // same iteration (e.g. inner-loop repeat)
                }
                let gap = i64::try_from(i2 - i1).unwrap_or(i64::MAX);
                let predicted = i64::from(a1).wrapping_add(per_iter.wrapping_mul(gap));
                report.slice_checks += 1;
                if i64::from(a2) != predicted {
                    report.slice_violations.push(SliceViolation {
                        loop_id: fr.loop_id,
                        scalar: SliceScalar::Local(tvm::program::Local(u16::MAX)),
                        iter: i2,
                        predicted,
                        observed: i64::from(a2),
                    });
                }
            }
        }
        // (b) claimed dependence distances
        for &(lkey, skey, q) in &plan.pairs {
            let empty = Vec::new();
            let loads = fr.seen.get(&lkey).unwrap_or(&empty);
            let stores = fr.seen.get(&skey).unwrap_or(&empty);
            let stored: HashMap<Addr, u64> = stores.iter().map(|&(i, a)| (a, i)).collect();
            for &(li, la) in loads {
                let Some(&si) = stored.get(&la) else { continue };
                report.distance_checks += 1;
                if li as i64 - si as i64 != q {
                    report.distance_violations.push(DistanceViolation {
                        loop_id: fr.loop_id,
                        load_at: lkey.1,
                        store_at: skey.1,
                        addr: la,
                        load_iter: li,
                        store_iter: si,
                        claimed: q,
                    });
                }
            }
        }
    };
    for e in &rec.events {
        match *e {
            Event::LoopEnter(l, _, _, _) => {
                stack.push(Frame {
                    loop_id: l,
                    iter: 0,
                    plan: plans.get(&l),
                    seen: HashMap::new(),
                });
            }
            Event::LoopIter(l, _) => {
                if let Some(fr) = stack.iter_mut().rev().find(|f| f.loop_id == l) {
                    fr.iter += 1;
                }
            }
            Event::LoopExit(l, _) => {
                // inner entries abandoned by an early return unwind
                // together with the exiting loop
                while let Some(fr) = stack.pop() {
                    let done = fr.loop_id == l;
                    close(fr, report);
                    if done {
                        break;
                    }
                }
            }
            Event::HeapLoad(a, _, pc) | Event::HeapStore(a, _, pc) => {
                if let Some(key) = orig_pc(pc) {
                    for fr in &mut stack {
                        let Some(plan) = fr.plan else { continue };
                        let relevant = plan.sites.iter().any(|&(k, _)| k == key)
                            || plan.pairs.iter().any(|&(lk, sk, _)| lk == key || sk == key);
                        if relevant {
                            fr.seen.entry(key).or_default().push((fr.iter, a));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    while let Some(fr) = stack.pop() {
        close(fr, report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{ElemKind, ProgramBuilder};

    /// A recurrence loop next to a provably-parallel one, with a
    /// points-to-separated second array in the mix.
    fn mixed_program() -> Program {
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, false, |f| {
            let (a, c, i, j) = (f.local(), f.local(), f.local(), f.local());
            f.ci(64).newarray(ElemKind::Int).st(a);
            f.ci(64).newarray(ElemKind::Int).st(c);
            // loop 0: serial static recurrence -> demoted (g = g*5+1
            // mixes two operators, so loop rescue cannot lift it)
            f.for_in(i, 0.into(), 16.into(), |f| {
                f.getstatic(g).ci(5).imul().ci(1).iadd().putstatic(g);
            });
            // loop 1: a[j] = c[j] * 2 — reads one array, writes the
            // other; only points-to can separate the two bases
            f.for_in(j, 0.into(), 16.into(), |f| {
                f.ld(a).ld(j);
                f.ld(c).ld(j).aload();
                f.ci(2).imul();
                f.astore();
            });
            f.ret_void();
        });
        b.finish(main).unwrap()
    }

    #[test]
    fn mixed_program_report_is_sound_and_agrees() {
        let p = mixed_program();
        let r = agreement_report(&p).unwrap();
        assert!(r.sound(), "violations: {:?}", r.violations);
        assert_eq!(r.loops.len(), 2);
        assert_eq!(r.predicted_serial, 1);
        assert_eq!(r.actual_serial, 1, "the recurrence loop must show a RAW");
        assert_eq!(r.agree_serial, 1);
        assert_eq!(r.precision(), Some(1.0));
        assert_eq!(r.recall(), Some(1.0));
        assert!(r.events > 0);
        assert!(r.pointsto.abstract_objects >= 2);
        // the two distinct arrays in loop 1 need points-to to separate
        assert!(
            r.via_pointsto > 0,
            "expected a points-to-only disjoint pair: {r:?}"
        );
        assert!(r.disjoint >= r.baseline_disjoint + r.via_pointsto);
    }

    #[test]
    fn rescued_reduction_is_scored_on_the_transformed_program() {
        // g += a[i] is demoted as written; after rescue the report
        // sees the delta-rewritten loop, which carries no recurrence,
        // and the state cross-check confirms identical semantics
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, false, |f| {
            let (a, i) = (f.local(), f.local());
            f.ci(32).newarray(ElemKind::Int).st(a);
            f.for_in(i, 0.into(), 32.into(), |f| {
                f.arr_set(
                    a,
                    |f| {
                        f.ld(i);
                    },
                    |f| {
                        f.ld(i).ci(3).imul();
                    },
                );
            });
            f.for_in(i, 0.into(), 32.into(), |f| {
                f.getstatic(g).ld(a).ld(i).aload().iadd().putstatic(g);
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let r = agreement_report(&p).unwrap();
        assert_eq!(r.rescued, 1);
        assert!(r.rescue_state_ok);
        assert!(r.sound(), "violations: {:?}", r.violations);
        assert_eq!(r.predicted_serial, 0, "the rescued loop is clean");
        assert_eq!(r.actual_serial, 0, "the recurrence is gone dynamically too");
    }

    #[test]
    fn slice_values_and_distances_are_checked_dynamically() {
        // loop 0: g += 3 — certified Affine slice, value-checked at
        // every eoi. loop 1: guarded a[i] = a[i-1] — a DistanceAtLeast
        // pair whose shared addresses the replay cross-checks.
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, false, |f| {
            let (a, i, j) = (f.local(), f.local(), f.local());
            f.ci(64).newarray(ElemKind::Int).st(a);
            f.for_in(i, 0.into(), 16.into(), |f| {
                f.getstatic(g).ci(3).iadd().putstatic(g);
            });
            f.for_in(j, 2.into(), 62.into(), |f| {
                f.if_icmp(
                    tvm::isa::Cond::Lt,
                    |f| {
                        f.ld(j).ci(32);
                    },
                    |f| {
                        f.ld(a).ld(j);
                        f.ld(a).ld(j).ci(-1).iadd().aload();
                        f.astore();
                    },
                );
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let r = agreement_report(&p).unwrap();
        assert!(r.sound(), "violations: {:?}", r.slice_violations);
        assert!(r.slices >= 2, "accumulator + both inductors: {r:?}");
        assert!(r.slice_checks > 0, "value/address predictions compared");
        assert!(r.slice_violations.is_empty());
        assert!(r.distance_pairs >= 1, "the stencil pair gains a distance");
        assert!(r.distance_checks > 0, "shared addresses cross-checked");
        assert!(r.distance_violations.is_empty());
    }

    #[test]
    fn a_lying_certificate_would_be_caught() {
        // the checker itself must have teeth: feed it a tap stream
        // from g += 3 but a plan claiming stride 4
        let taps = vec![
            VEvent::Enter(LoopId(0)),
            VEvent::Store(0, 3),
            VEvent::Iter(LoopId(0)),
            VEvent::Store(0, 6),
            VEvent::Iter(LoopId(0)),
            VEvent::Exit(LoopId(0)),
        ];
        let mut plans = HashMap::new();
        plans.insert(
            LoopId(0),
            ValuePlan {
                statics: vec![(0, Evolution::Affine { stride: 4 })],
            },
        );
        let (checks, violations) = check_static_slices(&taps, &plans);
        assert_eq!(checks, 2);
        assert_eq!(violations.len(), 2, "every boundary disagrees");
        assert_eq!(violations[0].predicted, 4);
        assert_eq!(violations[0].observed, 3);

        // and the honest claim passes the same stream
        plans.insert(
            LoopId(0),
            ValuePlan {
                statics: vec![(0, Evolution::Affine { stride: 3 })],
            },
        );
        let (checks, violations) = check_static_slices(&taps, &plans);
        assert_eq!(checks, 2);
        assert!(violations.is_empty());
    }

    #[test]
    fn optimistic_miss_shows_up_in_recall_not_soundness() {
        // a[b[i]] += 1 with b[i] all equal: dynamically serial, but no
        // static proof — recall drops below 1, soundness holds
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            let (a, idx, i) = (f.local(), f.local(), f.local());
            f.ci(8).newarray(ElemKind::Int).st(a);
            f.ci(16).newarray(ElemKind::Int).st(idx);
            f.for_in(i, 0.into(), 16.into(), |f| {
                // a[idx[i]] = a[idx[i]] + 1, idx[i] == 0 always
                f.ld(a).ld(idx).ld(i).aload();
                f.ld(a).ld(idx).ld(i).aload().aload();
                f.ci(1).iadd();
                f.astore();
            });
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let r = agreement_report(&p).unwrap();
        assert!(r.sound(), "violations: {:?}", r.violations);
        assert_eq!(r.predicted_serial, 0, "no static proof exists");
        assert_eq!(r.actual_serial, 1, "but the trace shows the RAW");
        assert_eq!(r.recall(), Some(0.0));
        assert_eq!(r.precision(), None);
    }
}
