//! Profiling-overhead measurement (paper Figure 6) and the
//! software-only comparison (§5).

use crate::annotate::{annotate, AnnotateOptions};
use cfgir::ProgramCandidates;
use test_tracer::{SoftwareTracer, TestTracer, TracerConfig};
use tvm::bus::Tee;
use tvm::interp::AnnotationCycles;
use tvm::program::Program;
use tvm::{Interp, VmError};

/// Slowdown of one annotation mode, with the component breakdown of
/// Figure 6's stacked bars.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeSlowdown {
    /// Annotated-run cycles / plain-run cycles.
    pub slowdown: f64,
    /// Total cycles of the annotated run.
    pub cycles: u64,
    /// Cycle breakdown of the annotation overhead.
    pub breakdown: AnnotationCycles,
}

/// The Figure 6 measurement for one program: base vs optimized
/// annotations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlowdownReport {
    /// Plain sequential cycles.
    pub seq_cycles: u64,
    /// Base (unoptimized) annotations.
    pub base: ModeSlowdown,
    /// Optimized annotations.
    pub optimized: ModeSlowdown,
}

/// Measures profiling slowdown for both annotation modes.
///
/// The plain baseline is derived, not executed: annotation passes
/// only insert annotation instructions, whose cycles the interpreter
/// tallies separately, so `annotated − annotation = plain` exactly
/// and two runs (base + optimized) suffice.
///
/// # Errors
///
/// Any [`VmError`] raised by the two runs.
pub fn profile_slowdown(
    program: &Program,
    cands: &ProgramCandidates,
) -> Result<SlowdownReport, VmError> {
    let run_mode = |opts: &AnnotateOptions| -> Result<(u64, AnnotationCycles), VmError> {
        let ann = annotate(program, cands, opts)?;
        let mut tracer = TestTracer::new(TracerConfig::default());
        tracer.set_local_masks(cands.tracked_masks());
        let r = Interp::run(&ann, &mut tracer)?;
        Ok((r.cycles, r.annotation_cycles))
    };

    let (base_cycles, base_ann) = run_mode(&AnnotateOptions::base())?;
    let (opt_cycles, opt_ann) = run_mode(&AnnotateOptions::profiling())?;
    let seq_cycles = base_cycles - base_ann.total();
    debug_assert_eq!(seq_cycles, opt_cycles - opt_ann.total());
    let slowdown = |cycles: u64| {
        if seq_cycles == 0 {
            1.0
        } else {
            cycles as f64 / seq_cycles as f64
        }
    };

    Ok(SlowdownReport {
        seq_cycles,
        base: ModeSlowdown {
            slowdown: slowdown(base_cycles),
            cycles: base_cycles,
            breakdown: base_ann,
        },
        optimized: ModeSlowdown {
            slowdown: slowdown(opt_cycles),
            cycles: opt_cycles,
            breakdown: opt_ann,
        },
    })
}

/// Hardware-vs-software profiling comparison (paper §5): the modelled
/// slowdown of the software-only implementation, plus an agreement
/// check between the hardware model and the exact software oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftwareComparison {
    /// Slowdown of hardware-assisted profiling (optimized
    /// annotations) — the paper's 3–25 %.
    pub hw_slowdown: f64,
    /// Modelled slowdown of software-only profiling — the paper's
    /// >100×.
    pub sw_slowdown: f64,
    /// Loops on which hardware and oracle found identical
    /// critical-arc counts in both bins.
    pub loops_agreeing: usize,
    /// Loops traced at all.
    pub loops_total: usize,
}

/// Runs the same annotated program through the hardware model and the
/// software oracle and compares costs and findings.
///
/// One interpretation serves both consumers: the annotated program
/// runs once with a [`Tee`] fanning the event stream out to the
/// hardware model and the oracle (both observe exactly the stream a
/// dedicated run would have fed them), and the plain baseline is
/// derived from the separately tallied annotation cycles.
///
/// # Errors
///
/// Any [`VmError`] raised by the run.
pub fn software_comparison(
    program: &Program,
    cands: &ProgramCandidates,
) -> Result<SoftwareComparison, VmError> {
    let ann = annotate(program, cands, &AnnotateOptions::profiling())?;

    let mut hw = TestTracer::with_masks(TracerConfig::default(), cands.tracked_masks());
    let mut sw = SoftwareTracer::with_masks(cands.tracked_masks());
    let run = {
        let mut tee = Tee::new().sink(&mut hw).sink(&mut sw);
        Interp::run(&ann, &mut tee)?
    };
    let seq_cycles = run.cycles - run.annotation_cycles.total();
    let hw_profile = hw.into_profile();
    let sw_cost = sw.modeled_cost();
    let sw_profile = sw.into_profile();

    let mut agree = 0;
    let mut total = 0;
    for (l, hs) in &hw_profile.stl {
        if hs.threads == 0 {
            continue;
        }
        total += 1;
        if let Some(ss) = sw_profile.stl.get(l) {
            if ss.arcs_t1 == hs.arcs_t1 && ss.arcs_lt == hs.arcs_lt {
                agree += 1;
            }
        }
    }

    Ok(SoftwareComparison {
        hw_slowdown: if seq_cycles == 0 {
            1.0
        } else {
            run.cycles as f64 / seq_cycles as f64
        },
        sw_slowdown: if seq_cycles == 0 {
            1.0
        } else {
            (run.cycles + sw_cost) as f64 / seq_cycles as f64
        },
        loops_agreeing: agree,
        loops_total: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfgir::extract_candidates;
    use tvm::{ElemKind, ProgramBuilder};

    fn memory_loop() -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            let (a, i, prev) = (f.local(), f.local(), f.local());
            f.ci(1024).newarray(ElemKind::Int).st(a);
            f.ci(0).st(prev);
            f.for_in(i, 0.into(), 1000.into(), |f| {
                f.arr_set(
                    a,
                    |f| {
                        f.ld(i).ci(1023).iand();
                    },
                    |f| {
                        f.ld(prev).ld(i).iadd();
                    },
                );
                f.arr_get(a, |f| {
                    f.ld(i).ci(1023).iand();
                })
                .st(prev);
            });
            f.ret_void();
        });
        b.finish(main).unwrap()
    }

    #[test]
    fn slowdown_is_small_and_optimized_is_smaller() {
        let p = memory_loop();
        let cands = extract_candidates(&p);
        let r = profile_slowdown(&p, &cands).unwrap();
        assert!(r.base.slowdown > 1.0);
        assert!(r.optimized.slowdown > 1.0);
        assert!(r.optimized.slowdown <= r.base.slowdown);
        // the paper's headline: minor slowdown (3-25%) for optimized
        assert!(
            r.optimized.slowdown < 1.30,
            "got {:.3}",
            r.optimized.slowdown
        );
    }

    #[test]
    fn software_profiling_is_orders_of_magnitude_slower() {
        let p = memory_loop();
        let cands = extract_candidates(&p);
        let c = software_comparison(&p, &cands).unwrap();
        assert!(c.hw_slowdown < 1.5, "hw {:.2}", c.hw_slowdown);
        assert!(c.sw_slowdown > 50.0, "sw {:.1}", c.sw_slowdown);
        assert!(c.sw_slowdown / c.hw_slowdown > 40.0);
        assert_eq!(c.loops_agreeing, c.loops_total);
    }
}
