//! The online tiered runtime: per-loop hot-location state machine,
//! incremental annotation, and continuous re-selection.
//!
//! The offline batch ([`crate::pipeline::run_pipeline`]) analyzes and
//! annotates the whole program up front, profiles it once, and selects
//! once. A real Jrpm runtime cannot afford that: dependence analysis
//! and annotation overhead must be spent only on loops that prove hot.
//! This module restructures the pipeline as a *tier controller* that
//! drives every candidate loop through a small state machine:
//!
//! ```text
//!            count > 0            hot / budget        entries > 0
//!   Cold ───────────────▶ Counting ───────────▶ Tracing ─────────▶ Profiled
//!                             │ prescreen proves      │ banks starved          │ Eq 2 (windowed,
//!                             │ a serial dep          │ past trace_budget      │ hysteresis)
//!                             ▼                       ▼  [TI001]               ▼
//!                          Demoted ◀──────────────────┘              Selected ◀──▶ Revised
//!                          (static)                                      (re-selection flaps
//!                                                                        past flap_limit: TI002)
//! ```
//!
//! * **Counting** — a [`tvm::HotLocations`] probe on the loop's header
//!   pc, maintained by the interpreter itself ([`tvm::LocationHook`]).
//!   This is yk's `Location`/`MT` division of labour: the location
//!   holds a counter until the hot threshold trips, then the controller
//!   (yk's `MT`) takes over. The probe costs zero *simulated* cycles
//!   and a couple of array loads of real time, so it can stay on
//!   forever (the `tier-gate` CI binary pins its wall-clock overhead).
//! * **Tracing** — the loop is promoted: the static memory-dependence
//!   pre-screen runs *now* (it was deferred at extraction —
//!   [`cfgir::Prescreen::Deferred`]), and if clean, the loop alone is
//!   patched into the running image ([`crate::annotate::PatchState`]).
//! * **Profiled / Selected / Revised** — each subsequent *epoch* (one
//!   deterministic execution of the current image) feeds a windowed
//!   profile ([`test_tracer::SelectionWindow`]); Equation 1+2 re-runs
//!   over the aggregate, and verdict flips commit only after
//!   [`TierConfig::hysteresis`] consecutive agreeing epochs.
//!
//! Patching invalidates the window (profiles across different
//! annotation sets are not comparable), so every patch bumps the
//! window *generation*.
//!
//! **Online ≡ offline.** Finalization completes the pre-screen for
//! every candidate, patches every remaining clean loop, and runs one
//! last epoch of the now-complete image. Because the incremental image
//! is exactly `annotate(original, only(all clean loops))` (the
//! [`PatchState`] invariant) and that equals the offline profiling
//! image, the final epoch's profile, derived sequential baseline,
//! selection, and actual-TLS numbers are bit-identical to the offline
//! batch — the property the `tier_equivalence` suite pins across every
//! benchmark. [`run_pipeline`](crate::pipeline::run_pipeline) itself
//! is now a thin wrapper over [`run_tiered`] with
//! [`TierConfig::immediate`].

use crate::annotate::{AnnotateOptions, PatchState};
use crate::pipeline::{
    collect_and_simulate, record_bus_report, record_tracer_profile, PipelineConfig,
    PipelineObservability, PipelineReport, RescueSummary, StageRecorder,
};
use cfgir::{
    distance_floors, extract_candidates, extract_candidates_with,
    prescreen_candidate_with_distance, rescue_program, PointsTo, Prescreen, StaticVerdict,
};
use obs::Telemetry;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use test_tracer::{select_with_distances, SelectionWindow, TestTracer};
use tvm::bus::{record_batches, record_batches_hooked, TraceBus};
use tvm::interp::FinalState;
use tvm::isa::LoopId;
use tvm::program::Program;
use tvm::{CostModel, HotLocations, Interp, NoHook, NullSink, VmError};

/// How the tier controller schedules promotion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierSchedule {
    /// Promote every candidate at once and run the classic two-pass
    /// offline batch. Stage structure, counters, and results are those
    /// of the original `run_pipeline` — this is what `run_pipeline`
    /// delegates to.
    Immediate,
    /// Drive loops through the counting/tracing/profiled tiers across
    /// repeated execution epochs, promoting on hot-location evidence.
    Online,
}

/// Tier-controller thresholds (see DESIGN.md §14 for the rationale
/// behind each default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierConfig {
    /// Promotion schedule.
    pub schedule: TierSchedule,
    /// Cumulative header-execution count that promotes a Counting loop.
    pub hot_threshold: u64,
    /// Epochs a loop may sit in Counting before it is force-promoted
    /// anyway (it executed, so it will eventually be judged; waiting
    /// longer only delays convergence on our deterministic epochs).
    pub counting_epoch_budget: u32,
    /// Epochs a promoted loop may spend in Tracing without a single
    /// successfully banked entry before TI001 demotes it.
    pub trace_budget: u32,
    /// Consecutive agreeing re-selection epochs required to commit a
    /// verdict flip (promotion to Selected or revision out of it).
    pub hysteresis: u32,
    /// Committed verdict flips tolerated before TI002 fires.
    pub flap_limit: u32,
    /// Windowed-profile capacity, in epochs.
    pub window: usize,
    /// Hard cap on execution epochs before finalization.
    pub max_epochs: u32,
}

impl Default for TierConfig {
    fn default() -> TierConfig {
        TierConfig {
            schedule: TierSchedule::Online,
            hot_threshold: 256,
            counting_epoch_budget: 2,
            trace_budget: 3,
            hysteresis: 2,
            flap_limit: 3,
            window: 4,
            max_epochs: 32,
        }
    }
}

impl TierConfig {
    /// The offline batch as a degenerate schedule.
    pub fn immediate() -> TierConfig {
        TierConfig {
            schedule: TierSchedule::Immediate,
            ..TierConfig::default()
        }
    }
}

/// One loop's position in the tier state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoopTier {
    /// Never observed executing.
    Cold,
    /// Executing; hot-location counter accumulating evidence.
    Counting,
    /// Promoted and patched in; waiting for a banked tracer entry.
    Tracing,
    /// Traced at least once; participating in windowed re-selection.
    Profiled,
    /// Committed by Equation 2 (terminal once the controller
    /// finalizes).
    Selected,
    /// Was Selected, revised out by a later committed re-selection;
    /// still eligible to return.
    Revised,
    /// Out of the running (terminal). `dynamic` distinguishes runtime
    /// demotions (tracer starvation, Equation 2 rejection, never
    /// executed) from static pre-screen proofs.
    Demoted {
        /// Why the loop was demoted.
        reason: String,
        /// True when demoted on runtime evidence rather than a static
        /// dependence proof.
        dynamic: bool,
    },
}

impl LoopTier {
    /// Short state name (diagram vocabulary).
    pub fn name(&self) -> &'static str {
        match self {
            LoopTier::Cold => "Cold",
            LoopTier::Counting => "Counting",
            LoopTier::Tracing => "Tracing",
            LoopTier::Profiled => "Profiled",
            LoopTier::Selected => "Selected",
            LoopTier::Revised => "Revised",
            LoopTier::Demoted { .. } => "Demoted",
        }
    }

    /// True for the two states the controller may finish in.
    pub fn is_terminal(&self) -> bool {
        matches!(self, LoopTier::Selected | LoopTier::Demoted { .. })
    }

    /// Stable numeric code carried in flight-recorder
    /// [`obs::LiveEventKind::TierTransition`] payloads.
    pub fn code(&self) -> u64 {
        match self {
            LoopTier::Cold => 0,
            LoopTier::Counting => 1,
            LoopTier::Tracing => 2,
            LoopTier::Profiled => 3,
            LoopTier::Selected => 4,
            LoopTier::Revised => 5,
            LoopTier::Demoted { .. } => 6,
        }
    }
}

/// A tier-controller diagnostic (surfaced by `jrpm-lint` as TI001 and
/// TI002).
#[derive(Debug, Clone)]
pub struct TierDiagnostic {
    /// `"TI001"` (stuck in Tracing past budget) or `"TI002"` (verdict
    /// flapped past the flap limit).
    pub code: &'static str,
    /// The loop concerned.
    pub loop_id: LoopId,
    /// One-line description.
    pub message: String,
    /// Per-epoch evidence lines (windowed-profile estimates, bank
    /// starvation counts).
    pub witness: Vec<String>,
}

/// One loop's full tier history.
#[derive(Debug, Clone)]
pub struct LoopTierSummary {
    /// The loop.
    pub loop_id: LoopId,
    /// Final tier (terminal after finalization).
    pub tier: LoopTier,
    /// Cumulative hot-location count while the probe was live.
    pub hot_count: u64,
    /// Committed selection-verdict flips.
    pub flips: u32,
    /// `(epoch, state)` transition log, in order.
    pub transitions: Vec<(u32, String)>,
}

/// What the tier controller did, alongside the pipeline's numbers.
#[derive(Debug, Clone)]
pub struct TierReport {
    /// The schedule that ran.
    pub schedule: TierSchedule,
    /// Execution epochs driven (1 for Immediate).
    pub epochs: u32,
    /// Epochs that ran with *no* loop annotated (pure counting tier).
    pub counting_epochs: u32,
    /// Annotation generations (window invalidations by patching).
    pub generations: u64,
    /// Committed Selected → Revised transitions.
    pub revisions: u32,
    /// Per-loop tier histories, by loop id.
    pub loops: Vec<LoopTierSummary>,
    /// TI001/TI002 diagnostics raised while driving.
    pub diagnostics: Vec<TierDiagnostic>,
}

impl TierReport {
    /// True when every loop ended in a terminal tier.
    pub fn all_terminal(&self) -> bool {
        self.loops.iter().all(|l| l.tier.is_terminal())
    }

    /// Ids of loops that ended Selected.
    pub fn selected_ids(&self) -> BTreeSet<LoopId> {
        self.loops
            .iter()
            .filter(|l| l.tier == LoopTier::Selected)
            .map(|l| l.loop_id)
            .collect()
    }

    /// The final tier of `id`, if it is a candidate.
    pub fn tier_of(&self, id: LoopId) -> Option<&LoopTier> {
        self.loops.iter().find(|l| l.loop_id == id).map(|l| &l.tier)
    }
}

/// A pipeline run driven by the tier controller.
#[derive(Debug)]
pub struct TieredOutcome {
    /// The ordinary pipeline report (bit-identical to the offline
    /// batch once the controller reaches all-terminal).
    pub report: PipelineReport,
    /// Tier-controller history.
    pub tiers: TierReport,
    /// Final program state of the last online epoch (`None` for
    /// Immediate). Lets oracles check online execution changed nothing
    /// observable.
    pub final_state: Option<FinalState>,
}

/// Internal per-loop controller state.
struct LoopState {
    loop_id: u64,
    tier: LoopTier,
    hot_count: u64,
    counting_epochs: u32,
    tracing_epochs: u32,
    committed_selected: bool,
    /// `(proposal, consecutive epochs proposing it)`.
    pending: Option<(bool, u32)>,
    flips: u32,
    transitions: Vec<(u32, String)>,
    witness: Vec<String>,
}

impl LoopState {
    fn new(loop_id: u64) -> LoopState {
        LoopState {
            loop_id,
            tier: LoopTier::Cold,
            hot_count: 0,
            counting_epochs: 0,
            tracing_epochs: 0,
            committed_selected: false,
            pending: None,
            flips: 0,
            transitions: Vec::new(),
            witness: Vec::new(),
        }
    }

    fn set_tier(&mut self, epoch: u32, tier: LoopTier) {
        self.transitions.push((epoch, tier.name().to_string()));
        // when a flight recorder is installed on this thread (the
        // profiling server's workers), every transition also lands in
        // its ring for crash forensics
        obs::live::emit(
            obs::LiveEventKind::TierTransition,
            self.loop_id,
            u64::from(epoch),
            tier.code(),
        );
        self.tier = tier;
    }
}

/// Runs the Jrpm pipeline under the tier controller.
///
/// With [`TierSchedule::Immediate`] this *is* the offline batch; with
/// [`TierSchedule::Online`] loops are promoted on hot-location
/// evidence across repeated execution epochs and the controller drives
/// every loop to a terminal tier before producing the report.
///
/// # Errors
///
/// Any [`VmError`] from interpretation or annotation verification.
pub fn run_tiered(
    program: &Program,
    cfg: &PipelineConfig,
    tier: &TierConfig,
) -> Result<TieredOutcome, VmError> {
    match tier.schedule {
        TierSchedule::Immediate => drive_immediate(program, cfg),
        TierSchedule::Online => drive_online(program, cfg, tier),
    }
}

/// The classic offline batch, expressed as the degenerate schedule:
/// every candidate is promoted at once, one profiling epoch runs, and
/// selection is final. Stage names, counters, and the two-pass
/// structure are exactly the historical `run_pipeline` behaviour (the
/// committed observability baseline pins them).
fn drive_immediate(program: &Program, cfg: &PipelineConfig) -> Result<TieredOutcome, VmError> {
    let telemetry = Telemetry::new();
    let registry = Arc::clone(&telemetry.registry);
    registry
        .counter("pipeline.batch_capacity")
        .record_max(cfg.bus.batch_capacity.max(1) as u64);
    let trace = cfg.obs.trace.then(|| Arc::clone(&telemetry.trace));
    let ptrack = trace.as_ref().map(|tr| tr.track("pipeline"));
    let mut stages = StageRecorder {
        registry: &registry,
        trace: trace.as_deref().zip(ptrack),
        seq: 0,
    };
    if let Some((tr, t)) = stages.trace {
        tr.begin(t, "run");
    }

    // 1. identify candidate STLs (includes the whole-program points-to
    //    solve that sharpens the memory-dependence pre-screen; its
    //    statistics ride along inside this stage so the committed obs
    //    baseline keeps its stage list)
    let t = stages.begin("extract");
    let candidates = extract_candidates(program);
    stages.end("extract", t);
    let ps = candidates.pointsto;
    for (name, v) in [
        ("pointsto.abstract_objects", ps.abstract_objects as u64),
        ("pointsto.variables", ps.variables as u64),
        ("pointsto.constraint_edges", ps.constraint_edges as u64),
        ("pointsto.iterations", ps.iterations as u64),
        ("pointsto.wall_nanos", ps.wall_nanos),
    ] {
        registry.counter(name).add(v);
        if let Some((tr, track)) = stages.trace {
            tr.counter(track, name, v);
        }
    }

    // 1b. loop rescue: try to transform demoted loops (reduction
    //     delta-rewrite, scalar privatization, loop distribution)
    //     into provably parallelizable variants. Every applied
    //     transform carries a legality proof re-checked by the
    //     independent verifier; when anything changes, candidates are
    //     re-extracted on the transformed program.
    let t = stages.begin("rescue");
    let (candidates, rescue) = if cfg.no_rescue {
        (candidates, RescueSummary::default())
    } else {
        let out = rescue_program(program);
        let changed = !out.rescued.is_empty();
        let rescue = RescueSummary {
            rescued: out.rescued,
            rejected: out.rejected,
            program: changed.then_some(out.program),
        };
        let candidates = match &rescue.program {
            Some(p) => extract_candidates(p),
            None => candidates,
        };
        (candidates, rescue)
    };
    stages.end("rescue", t);
    registry
        .counter("rescue.applied")
        .add(rescue.rescued.len() as u64);
    registry
        .counter("rescue.rejections")
        .add(rescue.rejected.len() as u64);
    let program: &Program = rescue.program_for(program);

    // 2. annotate every candidate for profiling (loops the static
    //    pre-screen demoted are left unannotated, so the tracer
    //    spends no banks on them)
    let t = stages.begin("annotate");
    let annotated = crate::annotate::annotate(program, &candidates, &AnnotateOptions::profiling())?;
    stages.end("annotate", t);

    // 3. interpret the annotated program ONCE — execution pass 1 —
    //    capturing its event stream as batches, and feed TEST from
    //    the bus. Threaded mode drains the tracer concurrently with
    //    interpretation; otherwise record fully, then replay.
    let mut tracer = TestTracer::with_masks(cfg.tracer, candidates.tracked_masks());
    if let Some(tr) = &trace {
        tracer.set_obs(Arc::clone(tr), cfg.obs.sample_every);
    }
    registry.counter("pipeline.interpreter_passes").inc();
    let prof_run = if cfg.bus.threaded {
        let t = stages.begin("record+profile");
        let mut bus = TraceBus::new()
            .channel_depth(cfg.bus.channel_depth)
            .sink("test-tracer", &mut tracer);
        if let Some(tr) = &trace {
            bus = bus.observe(Arc::clone(tr));
        }
        let (run, report) = bus.run_threaded(&annotated, cfg.bus.batch_capacity)?;
        stages.end("record+profile", t);
        record_bus_report(&registry, &report);
        run
    } else {
        let t = stages.begin("record");
        let (run, batches) = record_batches(&annotated, cfg.bus.batch_capacity)?;
        stages.end("record", t);
        let t = stages.begin("replay-profile");
        let mut bus = TraceBus::new().sink("test-tracer", &mut tracer);
        if let Some(tr) = &trace {
            bus = bus.observe(Arc::clone(tr));
        }
        let report = bus.replay(&batches);
        stages.end("replay-profile", t);
        record_bus_report(&registry, &report);
        run
    };
    let profile = tracer.into_profile();
    record_tracer_profile(&registry, &profile);

    // the plain sequential baseline, exactly: the annotation pass
    // only inserts annotation instructions, and the interpreter
    // tallies their cycles separately while charging them
    let seq_cycles = prof_run.cycles - prof_run.annotation_cycles.total();

    // 4. select decompositions (Equations 1 and 2), with the static
    //    verdicts as priors and scev distance floors bounding the
    //    speculative overlap of proven RAW chains
    let t = stages.begin("select");
    let floors = distance_floors(program, &candidates);
    let selection = select_with_distances(
        &profile,
        &cfg.tls.estimator_params(),
        prof_run.cycles,
        &candidates.demoted_ids(),
        &floors,
    );
    stages.end("select", t);

    // 5.–6. collect TLS traces for the chosen loops and simulate them
    let chosen: Vec<LoopId> = selection.chosen.iter().map(|c| c.loop_id).collect();
    let chosen_set: BTreeSet<LoopId> = chosen.iter().copied().collect();
    let actual = collect_and_simulate(
        program,
        &candidates,
        chosen,
        seq_cycles,
        cfg,
        &registry,
        &mut stages,
    )?;

    if let Some((tr, t)) = stages.trace {
        tr.end(t, "run");
    }
    let obs = PipelineObservability::from_snapshot(&registry.snapshot());

    // the degenerate tier history: everything promoted at epoch 0,
    // terminal by epoch 1
    let loops = candidates
        .candidates
        .iter()
        .map(|c| {
            let tier = if chosen_set.contains(&c.id) {
                LoopTier::Selected
            } else {
                match &c.static_verdict {
                    StaticVerdict::Demoted { reason } => LoopTier::Demoted {
                        reason: reason.clone(),
                        dynamic: false,
                    },
                    StaticVerdict::Clean => {
                        let executed = profile
                            .stl
                            .get(&c.id)
                            .is_some_and(|s| s.entries + s.untraced_entries > 0);
                        LoopTier::Demoted {
                            reason: if executed {
                                "not chosen by Equation 2".to_string()
                            } else {
                                "never executed".to_string()
                            },
                            dynamic: true,
                        }
                    }
                }
            };
            LoopTierSummary {
                loop_id: c.id,
                transitions: vec![(0, tier.name().to_string())],
                tier,
                hot_count: 0,
                flips: 0,
            }
        })
        .collect();
    let tiers = TierReport {
        schedule: TierSchedule::Immediate,
        epochs: 1,
        counting_epochs: 0,
        generations: 0,
        revisions: 0,
        loops,
        diagnostics: Vec::new(),
    };

    Ok(TieredOutcome {
        report: PipelineReport {
            seq_cycles,
            profile_cycles: prof_run.cycles,
            annotation: prof_run.annotation_cycles,
            candidates,
            rescue,
            profile,
            selection,
            actual,
            obs,
            telemetry,
        },
        tiers,
        final_state: None,
    })
}

/// The online schedule: repeated execution epochs of an incrementally
/// patched image, hot-location promotion, deferred pre-screening, and
/// windowed re-selection with hysteresis — then a finalization pass
/// that completes the pre-screen, patches every remaining clean loop,
/// and runs one authoritative epoch whose numbers match the offline
/// batch bit for bit.
fn drive_online(
    program: &Program,
    cfg: &PipelineConfig,
    tcfg: &TierConfig,
) -> Result<TieredOutcome, VmError> {
    let telemetry = Telemetry::new();
    let registry = Arc::clone(&telemetry.registry);
    registry
        .counter("pipeline.batch_capacity")
        .record_max(cfg.bus.batch_capacity.max(1) as u64);
    let trace = cfg.obs.trace.then(|| Arc::clone(&telemetry.trace));
    let ptrack = trace.as_ref().map(|tr| tr.track("pipeline"));
    let ttrack = trace.as_ref().map(|tr| tr.track("tier"));
    let mut stages = StageRecorder {
        registry: &registry,
        trace: trace.as_deref().zip(ptrack),
        seq: 0,
    };
    if let Some((tr, t)) = stages.trace {
        tr.begin(t, "run");
    }

    // extraction with the pre-screen deferred: candidate ids, nesting,
    // and rejections are identical to the eager form; per-loop
    // dependence analysis is paid only at promotion time
    let t = stages.begin("extract");
    let candidates = extract_candidates_with(program, Prescreen::Deferred);
    stages.end("extract", t);
    let ps = candidates.pointsto;
    for (name, v) in [
        ("pointsto.abstract_objects", ps.abstract_objects as u64),
        ("pointsto.variables", ps.variables as u64),
        ("pointsto.constraint_edges", ps.constraint_edges as u64),
        ("pointsto.iterations", ps.iterations as u64),
        ("pointsto.wall_nanos", ps.wall_nanos),
    ] {
        registry.counter(name).add(v);
        if let Some((tr, track)) = stages.trace {
            tr.counter(track, name, v);
        }
    }

    // rescue runs eagerly at startup: it rewrites loop bodies, and
    // patching must target stable post-rescue loop ids (this also
    // keeps online loop ids equal to offline ones)
    let t = stages.begin("rescue");
    let (candidates, rescue) = if cfg.no_rescue {
        (candidates, RescueSummary::default())
    } else {
        let out = rescue_program(program);
        let changed = !out.rescued.is_empty();
        let rescue = RescueSummary {
            rescued: out.rescued,
            rejected: out.rejected,
            program: changed.then_some(out.program),
        };
        let candidates = match &rescue.program {
            Some(p) => extract_candidates_with(p, Prescreen::Deferred),
            None => candidates,
        };
        (candidates, rescue)
    };
    stages.end("rescue", t);
    registry
        .counter("rescue.applied")
        .add(rescue.rescued.len() as u64);
    registry
        .counter("rescue.rejections")
        .add(rescue.rejected.len() as u64);
    let program: &Program = rescue.program_for(program);
    let mut candidates = candidates;

    // the same alias view the eager pre-screen would have used, so
    // deferred verdicts are identical to eager ones
    let pt = PointsTo::analyze(program);
    let params = cfg.tls.estimator_params();
    let masks = candidates.tracked_masks();
    let n = candidates.candidates.len();

    // original (pre-annotation) header pc of every candidate: the
    // probe anchor, translated into the live image via origin maps
    let header_pcs: Vec<(u16, u32)> = candidates
        .candidates
        .iter()
        .map(|c| {
            let fa = &candidates.functions[c.func.0 as usize];
            let header = fa.forest.loops[c.loop_idx].header;
            (c.func.0, fa.cfg.blocks[header.0 as usize].start)
        })
        .collect();

    let mut states: Vec<LoopState> = candidates
        .candidates
        .iter()
        .map(|c| LoopState::new(u64::from(c.id.0)))
        .collect();
    let mut screened: Vec<Option<StaticVerdict>> = vec![None; n];
    // scev distance floors, accumulated alongside the deferred
    // pre-screen; finalization completes the map so the authoritative
    // selection sees exactly what the eager offline path computes
    let mut floors: BTreeMap<LoopId, u32> = BTreeMap::new();
    let mut diagnostics: Vec<TierDiagnostic> = Vec::new();
    let mut dynamic_demoted: BTreeSet<LoopId> = BTreeSet::new();
    let mut window = SelectionWindow::new(tcfg.window);
    let mut patch = PatchState::new(program);
    let mut counting_epochs = 0u32;
    let mut revisions = 0u32;
    let mut epoch = 0u32;

    let t = stages.begin("epochs");
    loop {
        if let (Some(tr), Some(tt)) = (trace.as_deref(), ttrack) {
            tr.begin(tt, "epoch");
        }

        // arm hot-location probes for every loop still proving heat,
        // translating original header pcs through the live image's
        // origin maps (identity for un-patched functions)
        let mut hot = HotLocations::for_program(patch.program());
        let mut slots: Vec<Option<usize>> = vec![None; n];
        for (i, s) in states.iter().enumerate() {
            if matches!(s.tier, LoopTier::Cold | LoopTier::Counting) {
                let (func, orig_pc) = header_pcs[i];
                let map = &patch.maps()[func as usize];
                let pc = map
                    .iter()
                    .position(|&o| o == Some(orig_pc))
                    .unwrap_or(orig_pc as usize);
                slots[i] = Some(hot.register(func, pc as u32));
            }
        }

        // one deterministic execution epoch of the current image.
        // With nothing patched in yet this is a pure counting-tier run
        // (no event stream, no tracer); otherwise the epoch records
        // and replays into a fresh tracer exactly like the offline
        // profiling pass.
        registry.counter("pipeline.interpreter_passes").inc();
        let profile = if patch.annotated().is_empty() {
            counting_epochs += 1;
            Interp::run_to_state_hooked(
                patch.program(),
                &mut NullSink,
                CostModel::default(),
                Interp::DEFAULT_FUEL,
                &mut hot,
            )?;
            None
        } else {
            let (state, batches) =
                record_batches_hooked(patch.program(), cfg.bus.batch_capacity, &mut hot)?;
            let mut tracer = TestTracer::with_masks(cfg.tracer, masks.clone());
            let bus = TraceBus::new().sink("test-tracer", &mut tracer);
            bus.replay(&batches);
            Some((tracer.into_profile(), state.result.cycles))
        };

        if let Some((profile, cycles)) = profile {
            // Tracing → Profiled on the first banked entry; TI001
            // demotion when the comparator banks starve the loop past
            // its budget
            for (i, state) in states.iter_mut().enumerate() {
                if state.tier != LoopTier::Tracing {
                    continue;
                }
                let id = LoopId(i as u32);
                let stats = profile.stl.get(&id);
                if stats.is_some_and(|s| s.entries > 0) {
                    state.set_tier(epoch, LoopTier::Profiled);
                } else {
                    let untraced = stats.map_or(0, |s| s.untraced_entries);
                    state.witness.push(format!(
                        "epoch {epoch}: 0 banked entries, {untraced} untraced entries \
                         ({} comparator banks)",
                        cfg.tracer.n_banks
                    ));
                    state.tracing_epochs += 1;
                    if state.tracing_epochs > tcfg.trace_budget {
                        diagnostics.push(TierDiagnostic {
                            code: "TI001",
                            loop_id: id,
                            message: format!(
                                "loop {} stuck in Tracing for {} epochs (budget {}): every entry \
                                 found the comparator banks exhausted",
                                id.0, state.tracing_epochs, tcfg.trace_budget
                            ),
                            witness: state.witness.clone(),
                        });
                        registry.counter("tier.demotions_dynamic").inc();
                        dynamic_demoted.insert(id);
                        state.set_tier(
                            epoch,
                            LoopTier::Demoted {
                                reason: "comparator banks exhausted while tracing".to_string(),
                                dynamic: true,
                            },
                        );
                    }
                }
            }

            // windowed re-selection with hysteresis over Profiled /
            // Selected / Revised loops
            window.push(profile, cycles);
            let mut demoted = candidates.demoted_ids();
            demoted.extend(dynamic_demoted.iter().copied());
            if let Some(sel) = window.reselect_with_distances(&params, &demoted, &floors) {
                let chosen: BTreeSet<LoopId> = sel.chosen.iter().map(|c| c.loop_id).collect();
                for (i, state) in states.iter_mut().enumerate() {
                    if !matches!(
                        state.tier,
                        LoopTier::Profiled | LoopTier::Selected | LoopTier::Revised
                    ) {
                        continue;
                    }
                    let id = LoopId(i as u32);
                    let proposal = chosen.contains(&id);
                    if proposal == state.committed_selected {
                        state.pending = None;
                        continue;
                    }
                    let streak = match state.pending {
                        Some((p, k)) if p == proposal => k + 1,
                        _ => 1,
                    };
                    if streak < tcfg.hysteresis {
                        state.pending = Some((proposal, streak));
                        continue;
                    }
                    // committed flip
                    state.pending = None;
                    state.committed_selected = proposal;
                    state.flips += 1;
                    state.witness.push(format!(
                        "epoch {epoch} gen {}: windowed verdict committed to {} \
                         (window of {} epochs, predicted {} of {} cycles)",
                        window.generation(),
                        if proposal { "selected" } else { "not selected" },
                        window.len(),
                        sel.predicted_cycles,
                        sel.total_cycles,
                    ));
                    if proposal {
                        state.set_tier(epoch, LoopTier::Selected);
                    } else {
                        revisions += 1;
                        registry.counter("tier.revisions").inc();
                        state.set_tier(epoch, LoopTier::Revised);
                    }
                    if state.flips > tcfg.flap_limit
                        && !diagnostics
                            .iter()
                            .any(|d| d.code == "TI002" && d.loop_id == id)
                    {
                        diagnostics.push(TierDiagnostic {
                            code: "TI002",
                            loop_id: id,
                            message: format!(
                                "loop {} selection verdict flapped {} times (limit {})",
                                id.0, state.flips, tcfg.flap_limit
                            ),
                            witness: state.witness.clone(),
                        });
                    }
                }
            }
        }

        // counting-tier updates and promotion on this epoch's counts
        let mut patched_any = false;
        for i in 0..n {
            let Some(slot) = slots[i] else { continue };
            let c = hot.count(slot);
            states[i].hot_count += c;
            if states[i].tier == LoopTier::Cold && c > 0 {
                states[i].set_tier(epoch, LoopTier::Counting);
            }
            if states[i].tier != LoopTier::Counting {
                continue;
            }
            states[i].counting_epochs += 1;
            let hot_enough = states[i].hot_count >= tcfg.hot_threshold;
            let out_of_patience =
                states[i].counting_epochs >= tcfg.counting_epoch_budget && states[i].hot_count > 0;
            if !(hot_enough || out_of_patience) {
                continue;
            }

            // promotion: run the deferred pre-screen now, and patch
            // the loop into the live image only if it comes back clean
            let id = LoopId(i as u32);
            registry.counter("tier.promotions").inc();
            let verdict = match &screened[i] {
                Some(v) => v.clone(),
                None => {
                    let c = &candidates.candidates[i];
                    let fa = &candidates.functions[c.func.0 as usize];
                    let view = pt.view(c.func);
                    let (v, floor) =
                        prescreen_candidate_with_distance(program, fa, c.loop_idx, Some(&view));
                    if let Some(d) = floor {
                        floors.insert(id, d);
                    }
                    screened[i] = Some(v.clone());
                    v
                }
            };
            candidates.candidates[i].static_verdict = verdict.clone();
            match verdict {
                StaticVerdict::Demoted { reason } => {
                    registry.counter("tier.demotions_static").inc();
                    states[i].set_tier(
                        epoch,
                        LoopTier::Demoted {
                            reason,
                            dynamic: false,
                        },
                    );
                }
                StaticVerdict::Clean => {
                    patch.patch_loop(&candidates, id)?;
                    patched_any = true;
                    registry.counter("tier.patches").inc();
                    states[i].set_tier(epoch, LoopTier::Tracing);
                }
            }
        }
        if patched_any {
            // profiles across different annotation sets are not
            // comparable: invalidate the window
            window.advance_generation();
        }

        if let (Some(tr), Some(tt)) = (trace.as_deref(), ttrack) {
            for (name, pred) in [
                ("tier.counting", LoopTier::Counting),
                ("tier.tracing", LoopTier::Tracing),
                ("tier.profiled", LoopTier::Profiled),
                ("tier.selected", LoopTier::Selected),
            ] {
                let v = states.iter().filter(|s| s.tier == pred).count() as u64;
                tr.counter(tt, name, v);
            }
            tr.end(tt, "epoch");
        }

        epoch += 1;
        let active = states.iter().any(|s| {
            matches!(s.tier, LoopTier::Counting | LoopTier::Tracing) || s.pending.is_some()
        });
        if !active || epoch >= tcfg.max_epochs {
            break;
        }
    }
    stages.end("epochs", t);
    registry.counter("tier.epochs").add(u64::from(epoch));
    registry
        .counter("tier.counting_epochs")
        .add(u64::from(counting_epochs));
    registry
        .counter("tier.generations")
        .add(window.generation());

    // ---- finalization: drive every loop to a terminal tier ----
    //
    // Complete the pre-screen (so the demotion set equals the eager,
    // offline one), patch every remaining clean loop (so the image
    // equals the offline profiling image), and run one authoritative
    // epoch of the complete image. Everything downstream — profile,
    // derived baseline, selection, actual TLS — is then bit-identical
    // to the offline batch.
    let t = stages.begin("annotate");
    for (i, slot) in screened.iter_mut().enumerate() {
        let verdict = match &*slot {
            Some(v) => v.clone(),
            None => {
                let c = &candidates.candidates[i];
                let fa = &candidates.functions[c.func.0 as usize];
                let view = pt.view(c.func);
                let (v, floor) =
                    prescreen_candidate_with_distance(program, fa, c.loop_idx, Some(&view));
                if let Some(d) = floor {
                    floors.insert(LoopId(i as u32), d);
                }
                *slot = Some(v.clone());
                v
            }
        };
        candidates.candidates[i].static_verdict = verdict.clone();
        if verdict == StaticVerdict::Clean && !patch.annotated().contains(&LoopId(i as u32)) {
            patch.patch_loop(&candidates, LoopId(i as u32))?;
            registry.counter("tier.patches").inc();
        }
    }
    stages.end("annotate", t);

    // the authoritative epoch: the full image, probes off
    registry.counter("pipeline.interpreter_passes").inc();
    let t = stages.begin("record");
    let (final_state, batches) =
        record_batches_hooked(patch.program(), cfg.bus.batch_capacity, &mut NoHook)?;
    stages.end("record", t);
    let mut tracer = TestTracer::with_masks(cfg.tracer, masks);
    if let Some(tr) = &trace {
        tracer.set_obs(Arc::clone(tr), cfg.obs.sample_every);
    }
    let t = stages.begin("replay-profile");
    let mut bus = TraceBus::new().sink("test-tracer", &mut tracer);
    if let Some(tr) = &trace {
        bus = bus.observe(Arc::clone(tr));
    }
    let report = bus.replay(&batches);
    stages.end("replay-profile", t);
    record_bus_report(&registry, &report);
    let profile = tracer.into_profile();
    record_tracer_profile(&registry, &profile);
    let prof_run = final_state.result.clone();
    let seq_cycles = prof_run.cycles - prof_run.annotation_cycles.total();

    let t = stages.begin("select");
    let mut priors = candidates.demoted_ids();
    priors.extend(dynamic_demoted.iter().copied());
    let selection = select_with_distances(&profile, &params, prof_run.cycles, &priors, &floors);
    stages.end("select", t);

    // terminal commit: the full-image selection is authoritative
    let chosen: Vec<LoopId> = selection.chosen.iter().map(|c| c.loop_id).collect();
    let chosen_set: BTreeSet<LoopId> = chosen.iter().copied().collect();
    for (i, state) in states.iter_mut().enumerate() {
        let id = LoopId(i as u32);
        if chosen_set.contains(&id) {
            if state.tier != LoopTier::Selected {
                state.set_tier(epoch, LoopTier::Selected);
            }
            state.committed_selected = true;
        } else if !matches!(state.tier, LoopTier::Demoted { .. }) {
            let (reason, dynamic) = match &candidates.candidates[i].static_verdict {
                StaticVerdict::Demoted { reason } => (reason.clone(), false),
                StaticVerdict::Clean => {
                    let executed = state.hot_count > 0 || state.tier != LoopTier::Cold;
                    if executed {
                        ("not chosen by Equation 2".to_string(), true)
                    } else {
                        ("never executed".to_string(), true)
                    }
                }
            };
            state.set_tier(epoch, LoopTier::Demoted { reason, dynamic });
        }
    }
    registry.counter("tier.selected").add(chosen.len() as u64);

    let actual = collect_and_simulate(
        program,
        &candidates,
        chosen,
        seq_cycles,
        cfg,
        &registry,
        &mut stages,
    )?;

    if let Some((tr, t)) = stages.trace {
        tr.end(t, "run");
    }
    let obs = PipelineObservability::from_snapshot(&registry.snapshot());
    let loops = states
        .iter()
        .enumerate()
        .map(|(i, s)| LoopTierSummary {
            loop_id: LoopId(i as u32),
            tier: s.tier.clone(),
            hot_count: s.hot_count,
            flips: s.flips,
            transitions: s.transitions.clone(),
        })
        .collect();
    let tiers = TierReport {
        schedule: TierSchedule::Online,
        epochs: epoch + 1, // the finalization epoch counts
        counting_epochs,
        generations: window.generation(),
        revisions,
        loops,
        diagnostics,
    };
    Ok(TieredOutcome {
        report: PipelineReport {
            seq_cycles,
            profile_cycles: prof_run.cycles,
            annotation: prof_run.annotation_cycles,
            candidates,
            rescue,
            profile,
            selection,
            actual,
            obs,
            telemetry,
        },
        tiers,
        final_state: Some(final_state),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use test_tracer::TracerConfig;
    use tvm::{ElemKind, ProgramBuilder};

    fn parallel_program(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            let (a, i, k) = (f.local(), f.local(), f.local());
            f.ci(256).newarray(ElemKind::Int).st(a);
            f.for_in(i, 0.into(), iters.into(), |f| {
                f.for_in(k, 0.into(), 20.into(), |f| {
                    f.arr_set(
                        a,
                        |f| {
                            f.ld(i)
                                .ci(8)
                                .imul()
                                .ld(k)
                                .ci(7)
                                .iand()
                                .iadd()
                                .ci(255)
                                .iand();
                        },
                        |f| {
                            f.ld(i).ld(k).imul();
                        },
                    );
                });
            });
            f.ret_void();
        });
        b.finish(main).unwrap()
    }

    fn serial_program(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, false, |f| {
            let i = f.local();
            f.for_in(i, 0.into(), iters.into(), |f| {
                f.getstatic(g).ci(5).imul().ci(1).iadd().putstatic(g);
            });
            f.ret_void();
        });
        b.finish(main).unwrap()
    }

    /// Online and offline must agree exactly once the controller
    /// reaches all-terminal: same derived baseline, same profile, same
    /// selection, same actual TLS numbers, same demotion set.
    fn assert_equivalent(program: &Program, cfg: &PipelineConfig, tcfg: &TierConfig) {
        let offline = run_tiered(program, cfg, &TierConfig::immediate()).unwrap();
        let online = run_tiered(program, cfg, tcfg).unwrap();
        assert!(
            online.tiers.all_terminal(),
            "online must reach all-terminal"
        );
        let (a, b) = (&offline.report, &online.report);
        assert_eq!(a.seq_cycles, b.seq_cycles);
        assert_eq!(a.profile_cycles, b.profile_cycles);
        assert_eq!(a.annotation, b.annotation);
        assert_eq!(a.profile, b.profile, "final-epoch profile differs");
        assert_eq!(a.selection.chosen, b.selection.chosen);
        assert_eq!(a.selection.predicted_cycles, b.selection.predicted_cycles);
        assert_eq!(a.selection.total_cycles, b.selection.total_cycles);
        assert_eq!(a.actual.baseline_cycles, b.actual.baseline_cycles);
        assert_eq!(a.actual.tls_cycles, b.actual.tls_cycles);
        assert_eq!(a.actual.per_loop, b.actual.per_loop);
        assert_eq!(
            a.candidates.demoted_ids(),
            b.candidates.demoted_ids(),
            "completed deferred pre-screen must equal the eager one"
        );
        assert_eq!(
            online.tiers.selected_ids(),
            b.selection.chosen.iter().map(|c| c.loop_id).collect(),
            "terminal Selected tier mirrors the final selection"
        );
    }

    #[test]
    fn online_matches_offline_on_a_parallel_nest() {
        assert_equivalent(
            &parallel_program(200),
            &PipelineConfig::default(),
            &TierConfig::default(),
        );
    }

    #[test]
    fn online_matches_offline_on_a_serial_program() {
        assert_equivalent(
            &serial_program(400),
            &PipelineConfig::default(),
            &TierConfig::default(),
        );
    }

    #[test]
    fn online_matches_offline_under_odd_thresholds() {
        for (hot, budget, hyst) in [(1, 1, 1), (100_000, 1, 3), (64, 4, 2)] {
            let tcfg = TierConfig {
                hot_threshold: hot,
                counting_epoch_budget: budget,
                hysteresis: hyst,
                ..TierConfig::default()
            };
            assert_equivalent(&parallel_program(120), &PipelineConfig::default(), &tcfg);
        }
    }

    #[test]
    fn serial_loop_is_demoted_statically_at_promotion() {
        let out = run_tiered(
            &serial_program(400),
            &PipelineConfig::default(),
            &TierConfig::default(),
        )
        .unwrap();
        let t = out.tiers.tier_of(LoopId(0)).unwrap();
        assert!(
            matches!(t, LoopTier::Demoted { dynamic: false, .. }),
            "static recurrence must demote at promotion, got {t:?}"
        );
        assert!(out.tiers.diagnostics.is_empty());
        // the deferred screen was actually deferred: promotion happened
        let s = &out.tiers.loops[0];
        assert!(s.hot_count > 0, "the loop counted before being screened");
    }

    #[test]
    fn immediate_schedule_is_the_offline_batch() {
        let p = parallel_program(200);
        let out = run_tiered(&p, &PipelineConfig::default(), &TierConfig::immediate()).unwrap();
        assert_eq!(out.tiers.epochs, 1);
        assert!(out.tiers.all_terminal());
        assert!(out.final_state.is_none());
        assert_eq!(out.report.obs.interpreter_passes, 2);
        assert_eq!(
            out.tiers.selected_ids(),
            out.report
                .selection
                .chosen
                .iter()
                .map(|c| c.loop_id)
                .collect::<BTreeSet<_>>()
        );
    }

    #[test]
    fn ti001_fires_when_comparator_banks_starve_a_loop() {
        // one comparator bank and a two-deep nest, with a threshold
        // that promotes both loops in the same epoch: the inner
        // loop's sloop always finds the bank held by the outer loop,
        // so its entries are all untraced and it can never reach
        // Profiled
        let cfg = PipelineConfig {
            tracer: TracerConfig {
                n_banks: 1,
                ..TracerConfig::default()
            },
            ..PipelineConfig::default()
        };
        let tcfg = TierConfig {
            hot_threshold: 1,
            ..TierConfig::default()
        };
        let out = run_tiered(&parallel_program(200), &cfg, &tcfg).unwrap();
        assert!(out.tiers.all_terminal());
        let ti001: Vec<_> = out
            .tiers
            .diagnostics
            .iter()
            .filter(|d| d.code == "TI001")
            .collect();
        assert!(!ti001.is_empty(), "bank starvation must raise TI001");
        for d in &ti001 {
            assert!(!d.witness.is_empty(), "TI001 carries per-epoch witnesses");
            assert!(
                matches!(
                    out.tiers.tier_of(d.loop_id),
                    Some(LoopTier::Demoted { dynamic: true, .. })
                ),
                "TI001 demotes dynamically"
            );
        }
    }

    #[test]
    fn staggered_promotion_revises_the_inner_loop_and_flags_flapping() {
        // the inner loop trips the hot threshold in the very first
        // epoch (its header runs ~20x per outer iteration); the outer
        // loop is only force-promoted after the counting budget. With
        // no hysteresis the inner loop commits Selected while it is
        // the only annotated loop, then the outer loop lands, Eq 2
        // prefers it, and the inner verdict is revised — flapping past
        // a flap limit of 1 raises TI002 with the windowed witness.
        let tcfg = TierConfig {
            hot_threshold: 256,
            counting_epoch_budget: 2,
            hysteresis: 1,
            flap_limit: 1,
            ..TierConfig::default()
        };
        let out = run_tiered(&parallel_program(200), &PipelineConfig::default(), &tcfg).unwrap();
        assert!(out.tiers.all_terminal());
        assert!(out.tiers.revisions > 0, "inner loop must be revised out");
        let ti002: Vec<_> = out
            .tiers
            .diagnostics
            .iter()
            .filter(|d| d.code == "TI002")
            .collect();
        assert!(!ti002.is_empty(), "flapping past the limit raises TI002");
        assert!(
            ti002[0].witness.iter().any(|w| w.contains("windowed")),
            "TI002 witness quotes the windowed estimates"
        );
        // and the terminal outcome still matches offline exactly
        assert_equivalent(&parallel_program(200), &PipelineConfig::default(), &tcfg);
    }

    #[test]
    fn counting_epochs_run_without_a_tracer() {
        // a program whose single loop never gets hot enough to promote
        // within one epoch still terminates (force-promotion), and the
        // first epoch is a pure counting run
        let out = run_tiered(
            &parallel_program(50),
            &PipelineConfig::default(),
            &TierConfig::default(),
        )
        .unwrap();
        assert!(out.tiers.counting_epochs >= 1);
        assert!(out.tiers.epochs >= 2);
        assert!(out.final_state.is_some());
    }
}
