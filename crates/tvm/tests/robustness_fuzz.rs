//! Robustness fuzzing at the raw instruction level: for *arbitrary*
//! instruction vectors, verification must never panic; and whenever
//! verification accepts a program, the interpreter must complete with
//! `Ok` or a clean `VmError` — never a panic — under bounded fuel.

use proptest::prelude::*;
use tvm::isa::{ClassId, Cond, ElemKind, FuncId, GlobalId, Instr, Local, LoopId};
use tvm::program::{ClassDef, Function, Program};
use tvm::{CostModel, Interp, NullSink};

const CODE_LEN: u32 = 24;
const N_LOCALS: u16 = 4;

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Lt),
        Just(Cond::Ge),
        Just(Cond::Gt),
        Just(Cond::Le),
    ]
}

fn arb_kind() -> impl Strategy<Value = ElemKind> {
    prop_oneof![
        Just(ElemKind::Int),
        Just(ElemKind::Float),
        Just(ElemKind::Ref)
    ]
}

/// Any instruction, with operands that may or may not be valid.
fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        any::<i8>().prop_map(|v| Instr::IConst(i64::from(v))),
        (-4.0f64..4.0).prop_map(Instr::FConst),
        Just(Instr::NullConst),
        (0..N_LOCALS + 1).prop_map(|l| Instr::Load(Local(l))),
        (0..N_LOCALS + 1).prop_map(|l| Instr::Store(Local(l))),
        ((0..N_LOCALS), any::<i8>()).prop_map(|(l, by)| Instr::IInc(Local(l), i32::from(by))),
        Just(Instr::Dup),
        Just(Instr::Pop),
        Just(Instr::Swap),
        prop_oneof![
            Just(Instr::IAdd),
            Just(Instr::ISub),
            Just(Instr::IMul),
            Just(Instr::IDiv),
            Just(Instr::IRem),
            Just(Instr::INeg),
            Just(Instr::IAnd),
            Just(Instr::IOr),
            Just(Instr::IXor),
            Just(Instr::IShl),
            Just(Instr::IShr),
            Just(Instr::IUShr),
            Just(Instr::IMin),
            Just(Instr::IMax),
            Just(Instr::ICmp),
        ],
        prop_oneof![
            Just(Instr::FAdd),
            Just(Instr::FSub),
            Just(Instr::FMul),
            Just(Instr::FDiv),
            Just(Instr::FNeg),
            Just(Instr::FMin),
            Just(Instr::FMax),
            Just(Instr::FAbs),
            Just(Instr::FSqrt),
            Just(Instr::FSin),
            Just(Instr::FCos),
            Just(Instr::FExp),
            Just(Instr::FLog),
            Just(Instr::I2F),
            Just(Instr::F2I),
        ],
        (0..CODE_LEN + 2).prop_map(Instr::Goto),
        (arb_cond(), 0..CODE_LEN + 2).prop_map(|(c, t)| Instr::If(c, t)),
        (arb_cond(), 0..CODE_LEN + 2).prop_map(|(c, t)| Instr::IfICmp(c, t)),
        (arb_cond(), 0..CODE_LEN + 2).prop_map(|(c, t)| Instr::IfFCmp(c, t)),
        arb_kind().prop_map(Instr::NewArray),
        Just(Instr::ALoad),
        Just(Instr::AStore),
        Just(Instr::ArrayLen),
        (0u16..2).prop_map(|c| Instr::NewObject(ClassId(c))),
        (0u16..4).prop_map(Instr::GetField),
        (0u16..4).prop_map(Instr::PutField),
        (0u16..3).prop_map(|g| Instr::GetStatic(GlobalId(g))),
        (0u16..3).prop_map(|g| Instr::PutStatic(GlobalId(g))),
        (0u16..3).prop_map(|f| Instr::Call(FuncId(f))),
        Just(Instr::Return),
        Just(Instr::ReturnVoid),
        Just(Instr::Halt),
        (0u32..3, 0u16..3).prop_map(|(l, n)| Instr::SLoop(LoopId(l), n)),
        (0u32..3).prop_map(|l| Instr::Eoi(LoopId(l))),
        (0u32..3, 0u16..3).prop_map(|(l, n)| Instr::ELoop(LoopId(l), n)),
        (0u16..4).prop_map(Instr::Lwl),
        (0u16..4).prop_map(Instr::Swl),
        (0u32..3).prop_map(|l| Instr::ReadStats(LoopId(l))),
    ]
}

fn program_of(code: Vec<Instr>, helper_code: Vec<Instr>) -> Program {
    Program {
        functions: vec![
            Function {
                name: "main".into(),
                n_params: 0,
                n_locals: N_LOCALS,
                returns: false,
                code,
            },
            Function {
                name: "helper".into(),
                n_params: 1,
                n_locals: N_LOCALS,
                returns: true,
                code: helper_code,
            },
        ],
        classes: vec![
            ClassDef {
                fields: vec![ElemKind::Int, ElemKind::Float],
            },
            ClassDef {
                fields: vec![ElemKind::Ref],
            },
        ],
        globals: vec![ElemKind::Int, ElemKind::Float, ElemKind::Ref],
        entry: tvm::FuncId(0),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn verify_never_panics_and_accepted_programs_never_crash(
        mut code in prop::collection::vec(arb_instr(), 1..(CODE_LEN as usize)),
        mut helper in prop::collection::vec(arb_instr(), 1..(CODE_LEN as usize)),
    ) {
        code.push(Instr::ReturnVoid);
        helper.push(Instr::IConst(0));
        helper.push(Instr::Return);
        let p = program_of(code, helper);
        // verification must be a total function
        let verdict = tvm::verify::verify(&p);
        if verdict.is_ok() {
            // accepted programs run to Ok or a clean error
            let result = Interp::run_with(&p, &mut NullSink, CostModel::default(), 50_000);
            match result {
                Ok(_) | Err(_) => {}
            }
        }
    }

    #[test]
    fn accepted_programs_are_deterministic(
        mut code in prop::collection::vec(arb_instr(), 1..(CODE_LEN as usize)),
    ) {
        code.push(Instr::ReturnVoid);
        let p = program_of(code, vec![Instr::IConst(0), Instr::Return]);
        if tvm::verify::verify(&p).is_ok() {
            let a = Interp::run_with(&p, &mut NullSink, CostModel::default(), 50_000);
            let b = Interp::run_with(&p, &mut NullSink, CostModel::default(), 50_000);
            match (a, b) {
                (Ok(x), Ok(y)) => {
                    prop_assert_eq!(x.cycles, y.cycles);
                    prop_assert_eq!(x.instructions, y.instructions);
                }
                (Err(x), Err(y)) => prop_assert_eq!(x, y),
                (x, y) => prop_assert!(false, "nondeterministic outcome: {x:?} vs {y:?}"),
            }
        }
    }

    #[test]
    fn tracer_survives_arbitrary_accepted_programs(
        mut code in prop::collection::vec(arb_instr(), 1..(CODE_LEN as usize)),
    ) {
        // annotation instructions appear in random (ill-nested!)
        // order; the tracer must tolerate the stream without panicking
        code.push(Instr::ReturnVoid);
        let p = program_of(code, vec![Instr::IConst(0), Instr::Return]);
        if tvm::verify::verify(&p).is_ok() {
            let mut tracer =
                test_tracer::TestTracer::new(test_tracer::TracerConfig::default());
            let _ = Interp::run_with(&p, &mut tracer, CostModel::default(), 50_000);
            let _ = tracer.into_profile();
        }
    }
}
