//! Systematic instruction-semantics tests: every opcode's behaviour,
//! wrapping/saturation edges, and runtime error paths.

use tvm::isa::{Cond, ElemKind, Instr, Local};
use tvm::{FnBuilder, Interp, NullSink, Program, ProgramBuilder, Value, VmError};

/// Builds `main` returning an int from `body`.
fn int_main(body: impl FnOnce(&mut FnBuilder)) -> Program {
    let mut b = ProgramBuilder::new();
    let main = b.function("main", 0, true, |f| {
        body(f);
        f.ret();
    });
    b.finish(main).expect("test program verifies")
}

fn eval_int(body: impl FnOnce(&mut FnBuilder)) -> i64 {
    let p = int_main(body);
    Interp::run(&p, &mut NullSink)
        .expect("runs")
        .ret
        .expect("returns")
        .as_int()
        .expect("int result")
}

fn eval_err(body: impl FnOnce(&mut FnBuilder)) -> VmError {
    let p = int_main(body);
    Interp::run(&p, &mut NullSink).expect_err("must fail")
}

type Case = (fn(&mut FnBuilder), i64);

#[test]
fn integer_arithmetic_table() {
    let cases: Vec<Case> = vec![
        (
            |f| {
                f.ci(7).ci(3).iadd();
            },
            10,
        ),
        (
            |f| {
                f.ci(7).ci(3).isub();
            },
            4,
        ),
        (
            |f| {
                f.ci(7).ci(3).imul();
            },
            21,
        ),
        (
            |f| {
                f.ci(7).ci(3).idiv();
            },
            2,
        ),
        (
            |f| {
                f.ci(-7).ci(3).idiv();
            },
            -2,
        ), // truncating
        (
            |f| {
                f.ci(7).ci(3).irem();
            },
            1,
        ),
        (
            |f| {
                f.ci(-7).ci(3).irem();
            },
            -1,
        ),
        (
            |f| {
                f.ci(7).ineg();
            },
            -7,
        ),
        (
            |f| {
                f.ci(0b1100).ci(0b1010).iand();
            },
            0b1000,
        ),
        (
            |f| {
                f.ci(0b1100).ci(0b1010).ior();
            },
            0b1110,
        ),
        (
            |f| {
                f.ci(0b1100).ci(0b1010).ixor();
            },
            0b0110,
        ),
        (
            |f| {
                f.ci(3).ci(4).ishl();
            },
            48,
        ),
        (
            |f| {
                f.ci(-16).ci(2).ishr();
            },
            -4,
        ),
        (
            |f| {
                f.ci(-1).ci(60).iushr();
            },
            15,
        ),
        (
            |f| {
                f.ci(5).ci(9).imin();
            },
            5,
        ),
        (
            |f| {
                f.ci(5).ci(9).imax();
            },
            9,
        ),
        (
            |f| {
                f.ci(5).ci(9).icmp3();
            },
            -1,
        ),
        (
            |f| {
                f.ci(9).ci(9).icmp3();
            },
            0,
        ),
        (
            |f| {
                f.ci(10).ci(9).icmp3();
            },
            1,
        ),
    ];
    for (i, (body, expect)) in cases.into_iter().enumerate() {
        assert_eq!(eval_int(body), expect, "case {i}");
    }
}

#[test]
fn wrapping_and_shift_masking() {
    assert_eq!(
        eval_int(|f| {
            f.ci(i64::MAX).ci(1).iadd();
        }),
        i64::MIN
    );
    assert_eq!(
        eval_int(|f| {
            f.ci(i64::MIN).ci(1).isub();
        }),
        i64::MAX
    );
    assert_eq!(
        eval_int(|f| {
            f.ci(i64::MIN).ci(-1).imul();
        }),
        i64::MIN // two's complement wrap
    );
    // shift counts are masked to 6 bits, like JVM longs
    assert_eq!(
        eval_int(|f| {
            f.ci(1).ci(64).ishl();
        }),
        1
    );
    assert_eq!(
        eval_int(|f| {
            f.ci(1).ci(65).ishl();
        }),
        2
    );
    // MIN / -1 wraps rather than trapping
    assert_eq!(
        eval_int(|f| {
            f.ci(i64::MIN).ci(-1).idiv();
        }),
        i64::MIN
    );
}

#[test]
fn float_arithmetic_and_conversions() {
    let near = |body: fn(&mut FnBuilder), expect: f64| {
        let p = int_main(|f| {
            body(f);
            f.cf(1000.0).fmul().f2i();
        });
        let got = Interp::run(&p, &mut NullSink)
            .unwrap()
            .ret
            .unwrap()
            .as_int()
            .unwrap();
        assert!(
            (got - (expect * 1000.0) as i64).abs() <= 1,
            "expected ~{expect}, got {}",
            got as f64 / 1000.0
        );
    };
    near(
        |f| {
            f.cf(1.5).cf(2.25).fadd();
        },
        3.75,
    );
    near(
        |f| {
            f.cf(1.5).cf(2.25).fsub();
        },
        -0.75,
    );
    near(
        |f| {
            f.cf(1.5).cf(2.0).fmul();
        },
        3.0,
    );
    near(
        |f| {
            f.cf(1.5).cf(2.0).fdiv();
        },
        0.75,
    );
    near(
        |f| {
            f.cf(-1.5).fneg();
        },
        1.5,
    );
    near(
        |f| {
            f.cf(-1.5).fabs();
        },
        1.5,
    );
    near(
        |f| {
            f.cf(2.25).fsqrt();
        },
        1.5,
    );
    near(
        |f| {
            f.cf(0.0).fsin();
        },
        0.0,
    );
    near(
        |f| {
            f.cf(0.0).fcos();
        },
        1.0,
    );
    near(
        |f| {
            f.cf(0.0).fexp();
        },
        1.0,
    );
    near(
        |f| {
            f.cf(1.0).flog();
        },
        0.0,
    );
    near(
        |f| {
            f.cf(1.5).cf(2.5).fmin();
        },
        1.5,
    );
    near(
        |f| {
            f.cf(1.5).cf(2.5).fmax();
        },
        2.5,
    );
    near(
        |f| {
            f.ci(3).i2f();
        },
        3.0,
    );
}

#[test]
fn f2i_saturates() {
    assert_eq!(
        eval_int(|f| {
            f.cf(1e300).f2i();
        }),
        i64::MAX
    );
    assert_eq!(
        eval_int(|f| {
            f.cf(-1e300).f2i();
        }),
        i64::MIN
    );
    assert_eq!(
        eval_int(|f| {
            f.cf(f64::NAN).f2i();
        }),
        0
    );
    assert_eq!(
        eval_int(|f| {
            f.cf(-2.9).f2i();
        }),
        -2
    ); // truncation
}

#[test]
fn stack_manipulation() {
    assert_eq!(
        eval_int(|f| {
            f.ci(6).dup().imul();
        }),
        36
    );
    assert_eq!(
        eval_int(|f| {
            f.ci(1).ci(2).drop_top();
        }),
        1
    );
    assert_eq!(
        eval_int(|f| {
            f.ci(1).ci(2).swap().isub();
        }),
        1
    ); // 2 - 1
}

#[test]
fn branch_conditions_each_direction() {
    for (cond, a, b, expect) in [
        (Cond::Eq, 5, 5, 1),
        (Cond::Eq, 5, 6, 0),
        (Cond::Ne, 5, 6, 1),
        (Cond::Lt, 5, 6, 1),
        (Cond::Lt, 6, 6, 0),
        (Cond::Le, 6, 6, 1),
        (Cond::Gt, 7, 6, 1),
        (Cond::Ge, 6, 6, 1),
        (Cond::Ge, 5, 6, 0),
    ] {
        let got = eval_int(|f| {
            f.if_else_icmp(
                cond,
                |f| {
                    f.ci(a).ci(b);
                },
                |f| {
                    f.ci(1);
                },
                |f| {
                    f.ci(0);
                },
            );
        });
        assert_eq!(got, expect, "{cond:?} {a} {b}");
    }
}

#[test]
fn float_branches_and_nan() {
    let lt = eval_int(|f| {
        f.if_else_fcmp(
            Cond::Lt,
            |f| {
                f.cf(1.0).cf(2.0);
            },
            |f| {
                f.ci(1);
            },
            |f| {
                f.ci(0);
            },
        );
    });
    assert_eq!(lt, 1);
    // all comparisons with NaN are false except Ne
    for (cond, expect) in [(Cond::Lt, 0), (Cond::Ge, 0), (Cond::Eq, 0), (Cond::Ne, 1)] {
        let got = eval_int(|f| {
            f.if_else_fcmp(
                cond,
                |f| {
                    f.cf(f64::NAN).cf(1.0);
                },
                |f| {
                    f.ci(1);
                },
                |f| {
                    f.ci(0);
                },
            );
        });
        assert_eq!(got, expect, "NaN {cond:?}");
    }
}

#[test]
fn iinc_handles_negative_and_large_steps() {
    let got = eval_int(|f| {
        let v = f.local();
        f.ci(10).st(v);
        f.inc(v, -3);
        f.inc(v, i32::MAX);
        f.ld(v);
    });
    assert_eq!(got, 10 - 3 + i64::from(i32::MAX));
}

#[test]
fn arrays_of_each_kind() {
    // float array
    let p = int_main(|f| {
        let a = f.local();
        f.ci(4).newarray(ElemKind::Float).st(a);
        f.arr_set(
            a,
            |f| {
                f.ci(2);
            },
            |f| {
                f.cf(2.5);
            },
        );
        f.arr_get(a, |f| {
            f.ci(2);
        })
        .cf(2.0)
        .fmul()
        .f2i();
    });
    assert_eq!(
        Interp::run(&p, &mut NullSink).unwrap().ret.unwrap(),
        Value::Int(5)
    );
    // ref array holding another array
    let got = eval_int(|f| {
        let (outer, inner) = (f.local(), f.local());
        f.ci(2).newarray(ElemKind::Ref).st(outer);
        f.ci(3).newarray(ElemKind::Int).st(inner);
        f.arr_set(
            inner,
            |f| {
                f.ci(1);
            },
            |f| {
                f.ci(77);
            },
        );
        f.arr_set(
            outer,
            |f| {
                f.ci(0);
            },
            |f| {
                f.ld(inner);
            },
        );
        // outer[0][1]
        f.arr_get(outer, |f| {
            f.ci(0);
        });
        f.ci(1).aload();
    });
    assert_eq!(got, 77);
}

#[test]
fn arraylen_and_bounds() {
    assert_eq!(
        eval_int(|f| {
            let a = f.local();
            f.ci(9).newarray(ElemKind::Int).st(a);
            f.ld(a).arraylen();
        }),
        9
    );
    assert!(matches!(
        eval_err(|f| {
            let a = f.local();
            f.ci(2).newarray(ElemKind::Int).st(a);
            f.arr_get(a, |f| {
                f.ci(-1);
            });
        }),
        VmError::IndexOutOfBounds { index: -1, len: 2 }
    ));
    assert!(matches!(
        eval_err(|f| {
            f.ci(-3).newarray(ElemKind::Int).drop_top().ci(0);
        }),
        VmError::BadArrayLength(-3)
    ));
}

#[test]
fn runtime_type_errors_are_reported() {
    assert!(matches!(
        eval_err(|f| {
            f.ci(1).cf(2.0).iadd();
        }),
        VmError::TypeMismatch {
            expected: "int",
            ..
        }
    ));
    assert!(matches!(
        eval_err(|f| {
            f.cnull().ci(0).aload();
        }),
        VmError::NullDeref
    ));
    assert!(matches!(
        eval_err(|f| {
            f.ci(1).ci(0).irem();
        }),
        VmError::DivisionByZero
    ));
}

#[test]
fn object_field_bounds_are_checked() {
    let mut b = ProgramBuilder::new();
    let cls = b.class(&[ElemKind::Int]);
    let main = b.function("main", 0, true, |f| {
        let o = f.local();
        f.newobject(cls).st(o);
        f.ld(o).getfield(5).ret(); // out of range
    });
    let p = b.finish(main).unwrap();
    assert!(matches!(
        Interp::run(&p, &mut NullSink).unwrap_err(),
        VmError::IndexOutOfBounds { index: 5, len: 1 }
    ));
}

#[test]
fn halt_stops_without_a_result() {
    let mut b = ProgramBuilder::new();
    let main = b.function("main", 0, true, |f| {
        f.ci(1).drop_top();
        f.halt();
        f.ci(9).ret(); // unreachable
    });
    let p = b.finish(main).unwrap();
    let r = Interp::run(&p, &mut NullSink).unwrap();
    assert_eq!(r.ret, None);
}

#[test]
fn deep_recursion_and_mutual_calls() {
    let mut b = ProgramBuilder::new();
    let is_even = b.declare("is_even", 1, true);
    let is_odd = b.declare("is_odd", 1, true);
    b.define(is_even, |f| {
        let n = f.param(0);
        f.if_else_icmp(
            Cond::Eq,
            |f| {
                f.ld(n).ci(0);
            },
            |f| {
                f.ci(1);
            },
            |f| {
                f.ld(n).ci(1).isub().call(is_odd);
            },
        );
        f.ret();
    });
    b.define(is_odd, |f| {
        let n = f.param(0);
        f.if_else_icmp(
            Cond::Eq,
            |f| {
                f.ld(n).ci(0);
            },
            |f| {
                f.ci(0);
            },
            |f| {
                f.ld(n).ci(1).isub().call(is_even);
            },
        );
        f.ret();
    });
    let main = b.function("main", 0, true, |f| {
        f.ci(101).call(is_odd).ret();
    });
    let p = b.finish(main).unwrap();
    let r = Interp::run(&p, &mut NullSink).unwrap();
    assert_eq!(r.ret.unwrap(), Value::Int(1));
}

#[test]
fn statics_persist_across_calls() {
    let mut b = ProgramBuilder::new();
    let g = b.global(ElemKind::Int);
    let bump = b.function("bump", 0, false, |f| {
        f.getstatic(g).ci(1).iadd().putstatic(g);
        f.ret_void();
    });
    let main = b.function("main", 0, true, |f| {
        let i = f.local();
        f.for_in(i, 0.into(), 5.into(), |f| {
            f.call(bump);
        });
        f.getstatic(g).ret();
    });
    let p = b.finish(main).unwrap();
    assert_eq!(
        Interp::run(&p, &mut NullSink).unwrap().ret.unwrap(),
        Value::Int(5)
    );
}

#[test]
fn raw_annotation_instructions_are_inert_without_a_tracer() {
    let got = eval_int(|f| {
        f.raw(Instr::SLoop(tvm::LoopId(0), 1));
        f.raw(Instr::Lwl(0));
        f.ci(40);
        f.raw(Instr::Swl(0));
        f.raw(Instr::Eoi(tvm::LoopId(0)));
        f.ci(2).iadd();
        f.raw(Instr::ELoop(tvm::LoopId(0), 1));
        f.raw(Instr::ReadStats(tvm::LoopId(0)));
    });
    assert_eq!(got, 42);
}

#[test]
fn locals_default_to_integer_zero() {
    let got = eval_int(|f| {
        let v = f.local();
        let _unused = Local(0);
        f.ld(v).ci(100).iadd();
    });
    assert_eq!(got, 100);
}
