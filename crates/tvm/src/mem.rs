//! Byte-addressed heap with word-sized cells.
//!
//! The analyses in this workspace are address-driven: the overflow
//! analysis works at 32-byte cache-line granularity and the dependency
//! analysis at word granularity, exactly as the hardware would see them.
//! The heap is therefore a flat 32-bit byte address space. Statics
//! occupy a segment at the bottom (they are heap data in Java);
//! allocations are bump-allocated and line-aligned so that distinct
//! objects do not false-share analysis lines.

use crate::error::VmError;
use crate::isa::ElemKind;
use crate::trace::Addr;
use crate::value::Value;
use crate::{LINE_BYTES, WORD_BYTES};

/// Address of the first allocatable byte: address 0 is reserved so that
/// a `Ref(0)` can never be confused with `Null` data written by zeroing.
const HEAP_BASE: Addr = LINE_BYTES;

/// The flat program memory: statics segment plus bump-allocated heap.
#[derive(Debug, Clone)]
pub struct Memory {
    words: Vec<Value>,
    globals_base: Addr,
    limit_words: usize,
}

impl Memory {
    /// Default heap limit: 64 Mwords (512 MB modelled), far above any
    /// benchmark's needs but a guard against runaway allocation.
    pub const DEFAULT_LIMIT_WORDS: usize = 64 << 20;

    /// Creates a memory with a statics segment holding `globals`
    /// variables, zero-initialized by kind.
    pub fn new(globals: &[ElemKind]) -> Memory {
        let mut mem = Memory {
            words: Vec::with_capacity(1024),
            globals_base: 0,
            limit_words: Self::DEFAULT_LIMIT_WORDS,
        };
        // reserve the null line
        mem.words
            .resize((HEAP_BASE / WORD_BYTES) as usize, Value::Int(0));
        mem.globals_base = HEAP_BASE;
        for &kind in globals {
            mem.words.push(zero_of(kind));
        }
        mem.align_to_line();
        mem
    }

    /// Byte address of static variable `idx`.
    #[inline]
    pub fn global_addr(&self, idx: u16) -> Addr {
        self.globals_base + u32::from(idx) * WORD_BYTES
    }

    fn align_to_line(&mut self) {
        let words_per_line = (LINE_BYTES / WORD_BYTES) as usize;
        let rem = self.words.len() % words_per_line;
        if rem != 0 {
            self.words
                .resize(self.words.len() + words_per_line - rem, Value::Int(0));
        }
    }

    /// Allocates `n_words` zero-initialized (by `kind`) words, aligned
    /// to a cache line, and returns the base byte address.
    ///
    /// # Errors
    ///
    /// [`VmError::HeapExhausted`] if the allocation would exceed the
    /// heap limit.
    pub fn alloc(&mut self, n_words: u32, kind: ElemKind) -> Result<Addr, VmError> {
        self.align_to_line();
        let base_word = self.words.len();
        let new_len = base_word
            .checked_add(n_words as usize)
            .ok_or(VmError::HeapExhausted)?;
        if new_len > self.limit_words {
            return Err(VmError::HeapExhausted);
        }
        let base_addr = (base_word as u64) * u64::from(WORD_BYTES);
        if base_addr + u64::from(n_words) * u64::from(WORD_BYTES) > u64::from(Addr::MAX) {
            return Err(VmError::HeapExhausted);
        }
        self.words.resize(new_len, zero_of(kind));
        Ok(base_addr as Addr)
    }

    /// Reads the word at a byte address (must be word-aligned by
    /// construction; unaligned addresses round down).
    ///
    /// # Errors
    ///
    /// [`VmError::BadAddress`] for addresses outside allocated memory.
    #[inline]
    pub fn read(&self, addr: Addr) -> Result<Value, VmError> {
        self.words
            .get((addr / WORD_BYTES) as usize)
            .copied()
            .ok_or(VmError::BadAddress(addr))
    }

    /// Writes the word at a byte address.
    ///
    /// # Errors
    ///
    /// [`VmError::BadAddress`] for addresses outside allocated memory.
    #[inline]
    pub fn write(&mut self, addr: Addr, v: Value) -> Result<(), VmError> {
        match self.words.get_mut((addr / WORD_BYTES) as usize) {
            Some(slot) => {
                *slot = v;
                Ok(())
            }
            None => Err(VmError::BadAddress(addr)),
        }
    }

    /// Currently allocated size in words (diagnostics).
    pub fn len_words(&self) -> usize {
        self.words.len()
    }

    /// The whole memory image, word by word (statics segment and heap).
    /// Exposed so state-equivalence checks can compare two runs
    /// bit-for-bit.
    pub fn words(&self) -> &[Value] {
        &self.words
    }

    /// Overrides the heap limit (tests exercising exhaustion).
    pub fn set_limit_words(&mut self, limit: usize) {
        self.limit_words = limit;
    }
}

fn zero_of(kind: ElemKind) -> Value {
    match kind {
        ElemKind::Int => Value::Int(0),
        ElemKind::Float => Value::Float(0.0),
        ElemKind::Ref => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globals_get_addresses_and_defaults() {
        let mem = Memory::new(&[ElemKind::Int, ElemKind::Float, ElemKind::Ref]);
        let a0 = mem.global_addr(0);
        assert_eq!(mem.read(a0).unwrap(), Value::Int(0));
        assert_eq!(mem.read(mem.global_addr(1)).unwrap(), Value::Float(0.0));
        assert_eq!(mem.read(mem.global_addr(2)).unwrap(), Value::Null);
        assert!(a0 >= LINE_BYTES, "null line is reserved");
    }

    #[test]
    fn alloc_is_line_aligned_and_disjoint() {
        let mut mem = Memory::new(&[]);
        let a = mem.alloc(3, ElemKind::Int).unwrap();
        let b = mem.alloc(5, ElemKind::Float).unwrap();
        assert_eq!(a % LINE_BYTES, 0);
        assert_eq!(b % LINE_BYTES, 0);
        assert!(b >= a + 3 * WORD_BYTES);
        assert_eq!(mem.read(b).unwrap(), Value::Float(0.0));
    }

    #[test]
    fn read_write_roundtrip() {
        let mut mem = Memory::new(&[]);
        let a = mem.alloc(4, ElemKind::Int).unwrap();
        mem.write(a + 8, Value::Int(42)).unwrap();
        assert_eq!(mem.read(a + 8).unwrap(), Value::Int(42));
        assert_eq!(mem.read(a).unwrap(), Value::Int(0));
    }

    #[test]
    fn out_of_range_access_errors() {
        let mem = Memory::new(&[]);
        assert!(matches!(
            mem.read(0xFFFF_0000).unwrap_err(),
            VmError::BadAddress(_)
        ));
    }

    #[test]
    fn heap_limit_is_enforced() {
        let mut mem = Memory::new(&[]);
        mem.set_limit_words(64);
        assert!(mem.alloc(1 << 20, ElemKind::Int).is_err());
        assert!(mem.alloc(8, ElemKind::Int).is_ok());
    }
}
